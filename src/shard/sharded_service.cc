#include "shard/sharded_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "shard/exchange.h"
#include "sql/parser.h"

namespace cq::shard {

namespace {
constexpr uint32_t kMetaVersion = 1;
}  // namespace

// --- ShardedSubscription ----------------------------------------------------

bool ShardedSubscription::TryPoll(StreamBatch* out) {
  const size_t n = subs_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t r = (cursor_ + k) % n;
    if (subs_[r]->TryPoll(out)) {
      cursor_ = r + 1;
      return true;
    }
  }
  return false;
}

bool ShardedSubscription::Poll(StreamBatch* out) {
  size_t spins = 0;
  while (true) {
    if (TryPoll(out)) return true;
    bool all_closed = true;
    for (const auto& s : subs_) {
      if (!s->closed()) {
        all_closed = false;
        break;
      }
    }
    // Closed channels may still have drained above; one more sweep after
    // observing every channel closed catches the race.
    if (all_closed) return TryPoll(out);
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void ShardedSubscription::Cancel() {
  for (auto& s : subs_) s->Cancel();
}

// --- ShardedQueryService ----------------------------------------------------

ShardedQueryService::ShardedQueryService(size_t nshards, ServiceConfig config)
    : nshards_(nshards == 0 ? 1 : nshards) {
  replicas_.reserve(nshards_);
  for (size_t r = 0; r < nshards_; ++r) {
    replicas_.push_back(std::make_unique<QueryService>(Catalog(), config));
  }
  routed_.assign(nshards_, 0);
  if (config.metrics != nullptr) {
    for (size_t r = 0; r < nshards_; ++r) {
      shard_records_.push_back(config.metrics->GetCounter(
          "cq_shard_records_total", {{"shard", std::to_string(r)}}));
    }
  }
}

Status ShardedQueryService::RegisterStream(const std::string& name,
                                           SchemaPtr schema,
                                           std::vector<size_t> shard_key) {
  if (streams_.count(name) != 0) {
    return Status::AlreadyExists("stream '" + name + "' already registered");
  }
  for (size_t c : shard_key) {
    if (c >= schema->num_fields()) {
      return Status::InvalidArgument("shard key column out of range");
    }
  }
  for (auto& r : replicas_) {
    CQ_RETURN_NOT_OK(r->RegisterStream(name, schema));
  }
  StreamInfo info;
  info.schema = schema;
  info.partitioner = ShardPartitioner(nshards_, shard_key);
  info.shard_key = std::move(shard_key);
  streams_.emplace(name, std::move(info));
  return Status::OK();
}

Status ShardedQueryService::ValidateQueryShape(const std::string& sql) const {
  if (nshards_ <= 1) return Status::OK();
  // Non-single-SELECT text (compound queries) falls through to the replica
  // frontend unvalidated; the header documents the limitation.
  Result<AstSelect> parsed = ParseQuery(sql);
  if (!parsed.ok()) return Status::OK();
  const AstSelect& ast = parsed.value();

  bool any_sharded = false;
  for (const AstTableRef& tr : ast.from) {
    auto it = streams_.find(tr.name);
    if (it != streams_.end() && !it->second.shard_key.empty()) {
      any_sharded = true;
    }
  }
  if (!any_sharded) return Status::OK();
  if (ast.from.size() > 1) {
    return Status::InvalidArgument(
        "multi-stream query over sharded stream(s): co-partitioning is not "
        "guaranteed; register the streams with an empty shard key or run on "
        "a ShardedPipeline with explicit exchanges");
  }

  bool aggregating = ast.distinct;
  for (const AstSelectItem& item : ast.items) {
    if (item.expr && item.expr->kind == AstExpr::Kind::kAggregate) {
      aggregating = true;
    }
  }
  if (!aggregating) return Status::OK();  // record-wise: decomposes trivially

  const StreamInfo& info = streams_.at(ast.from[0].name);
  for (size_t c : info.shard_key) {
    const std::string& col = info.schema->field(c).name;
    bool grouped = false;
    for (const AstExpr& g : ast.group_by) {
      if (g.kind == AstExpr::Kind::kColumn && g.column == col) {
        grouped = true;
        break;
      }
    }
    if (!grouped) {
      return Status::InvalidArgument(
          "aggregate over sharded stream '" + ast.from[0].name +
          "' must GROUP BY shard key column '" + col +
          "' (or register the stream with an empty shard key)");
    }
  }
  return Status::OK();
}

Result<QueryId> ShardedQueryService::RegisterQuery(const std::string& sql) {
  CQ_RETURN_NOT_OK(ValidateQueryShape(sql));
  QueryId id = 0;
  for (size_t r = 0; r < nshards_; ++r) {
    Result<QueryId> rid = replicas_[r]->RegisterQuery(sql);
    if (!rid.ok()) {
      for (size_t k = 0; k < r; ++k) (void)replicas_[k]->DropQuery(id);
      return rid.status();
    }
    if (r == 0) {
      id = rid.value();
    } else if (rid.value() != id) {
      return Status::Internal("replica query ids diverged");
    }
  }
  return id;
}

Status ShardedQueryService::DropQuery(QueryId id) {
  Status first;
  for (auto& r : replicas_) {
    Status st = r->DropQuery(id);
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  return first;
}

Result<ShardedSubscriptionPtr> ShardedQueryService::Subscribe(QueryId id) {
  std::vector<SubscriptionPtr> subs;
  subs.reserve(nshards_);
  for (auto& r : replicas_) {
    CQ_ASSIGN_OR_RETURN(SubscriptionPtr sub, r->Subscribe(id));
    subs.push_back(std::move(sub));
  }
  return std::make_shared<ShardedSubscription>(std::move(subs));
}

Result<const ShardedQueryService::StreamInfo*> ShardedQueryService::FindStream(
    const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + name + "' not registered");
  }
  return &it->second;
}

Status ShardedQueryService::PushRecord(const std::string& stream, Tuple tuple,
                                       Timestamp ts) {
  CQ_ASSIGN_OR_RETURN(const StreamInfo* info, FindStream(stream));
  const size_t shard = info->partitioner.ShardOfTuple(tuple);
  ++routed_[shard];
  if (!shard_records_.empty()) shard_records_[shard]->Increment();
  return replicas_[shard]->PushRecord(stream, std::move(tuple), ts);
}

Status ShardedQueryService::PushWatermark(const std::string& stream,
                                          Timestamp watermark) {
  for (auto& r : replicas_) {
    CQ_RETURN_NOT_OK(r->PushWatermark(stream, watermark));
  }
  return Status::OK();
}

Status ShardedQueryService::Push(const std::string& stream,
                                 const StreamElement& element) {
  if (element.is_record()) {
    return PushRecord(stream, element.tuple, element.timestamp);
  }
  if (element.is_watermark()) {
    return PushWatermark(stream, element.timestamp);
  }
  return Status::InvalidArgument("barriers enter via InjectBarrier");
}

Status ShardedQueryService::PushBatch(const std::string& stream,
                                      const StreamBatch& batch) {
  if (batch.columnar() != nullptr) {
    return Status::InvalidArgument(
        "service ingest is row-based; push columnar batches through a "
        "ShardedPipeline");
  }
  CQ_ASSIGN_OR_RETURN(const StreamInfo* info, FindStream(stream));
  std::vector<StreamBatch> splits = SplitRowBatch(batch, info->partitioner);
  for (size_t r = 0; r < nshards_; ++r) {
    if (splits[r].empty()) continue;
    const size_t records = splits[r].num_records();
    routed_[r] += records;
    if (!shard_records_.empty() && records > 0) {
      shard_records_[r]->Increment(records);
    }
    CQ_RETURN_NOT_OK(replicas_[r]->PushBatch(stream, splits[r]));
  }
  return Status::OK();
}

// --- durability -------------------------------------------------------------

std::string ShardedQueryService::EncodeMetaSlot() const {
  std::string out;
  EncodeU32(kMetaVersion, &out);
  EncodeU32(static_cast<uint32_t>(nshards_), &out);
  EncodeU32(static_cast<uint32_t>(streams_.size()), &out);
  for (const auto& [name, info] : streams_) {
    EncodeString(name, &out);
    EncodeU32(static_cast<uint32_t>(info.shard_key.size()), &out);
    for (size_t c : info.shard_key) EncodeU32(static_cast<uint32_t>(c), &out);
  }
  return out;
}

Result<std::vector<std::string>> ShardedQueryService::SnapshotSlots() {
  std::vector<std::string> slots;
  slots.reserve(1 + nshards_);
  slots.push_back(EncodeMetaSlot());
  for (auto& r : replicas_) {
    CQ_ASSIGN_OR_RETURN(std::vector<std::string> replica_slots,
                        r->SnapshotSlots());
    std::string blob;
    ft::EncodeBlobList(replica_slots, &blob);
    slots.push_back(std::move(blob));
  }
  return slots;
}

Status ShardedQueryService::RestoreSlots(const std::vector<std::string>& slots) {
  if (slots.size() != 1 + nshards_) {
    // Distinguish the shard-count mismatch for a clear operator error.
    if (!slots.empty()) {
      std::string_view meta = slots[0];
      Result<uint32_t> version = DecodeU32(&meta);
      Result<uint32_t> old_shards =
          version.ok() ? DecodeU32(&meta) : Result<uint32_t>(version.status());
      if (old_shards.ok() && old_shards.value() != nshards_) {
        return Status::InvalidArgument(
            "sharded service image was taken at " +
            std::to_string(old_shards.value()) + " shards, service runs " +
            std::to_string(nshards_) +
            "; service-level re-shard is unsupported (re-scale through "
            "ShardedPipeline N->M restore)");
      }
    }
    return Status::InvalidArgument("sharded service slot count mismatch");
  }
  std::string_view meta = slots[0];
  CQ_ASSIGN_OR_RETURN(uint32_t version, DecodeU32(&meta));
  if (version != kMetaVersion) {
    return Status::InvalidArgument("unknown sharded service image version");
  }
  CQ_ASSIGN_OR_RETURN(uint32_t old_shards, DecodeU32(&meta));
  if (old_shards != nshards_) {
    return Status::InvalidArgument(
        "sharded service image shard count mismatch");
  }
  CQ_ASSIGN_OR_RETURN(uint32_t num_streams, DecodeU32(&meta));
  for (uint32_t i = 0; i < num_streams; ++i) {
    CQ_ASSIGN_OR_RETURN(std::string name, DecodeString(&meta));
    CQ_ASSIGN_OR_RETURN(uint32_t key_len, DecodeU32(&meta));
    std::vector<size_t> key(key_len);
    for (uint32_t k = 0; k < key_len; ++k) {
      CQ_ASSIGN_OR_RETURN(uint32_t c, DecodeU32(&meta));
      key[k] = c;
    }
    auto it = streams_.find(name);
    if (it == streams_.end() || it->second.shard_key != key) {
      return Status::InvalidArgument(
          "sharded service image stream '" + name +
          "' does not match the registered shard key");
    }
  }
  for (size_t r = 0; r < nshards_; ++r) {
    std::string_view blob = slots[1 + r];
    CQ_ASSIGN_OR_RETURN(std::vector<std::string> replica_slots,
                        ft::DecodeBlobList(&blob));
    CQ_RETURN_NOT_OK(replicas_[r]->RestoreSlots(replica_slots));
  }
  return Status::OK();
}

void ShardedQueryService::SetBarrierHandler(
    ft::BarrierInjectable::BarrierHandler handler) {
  barrier_handler_ = std::move(handler);
  for (size_t r = 0; r < nshards_; ++r) {
    // Remap each replica's single slot to 1 + r, wrapped as a one-blob list
    // so barrier-collected epochs decode exactly like SnapshotSlots images.
    replicas_[r]->SetBarrierHandler(
        [this, r](uint64_t epoch, size_t, Result<std::string> snapshot) {
          if (!barrier_handler_) return;
          if (!snapshot.ok()) {
            barrier_handler_(epoch, 1 + r, std::move(snapshot));
            return;
          }
          std::string blob;
          ft::EncodeBlobList({std::move(snapshot).value()}, &blob);
          barrier_handler_(epoch, 1 + r, std::move(blob));
        });
  }
}

Status ShardedQueryService::InjectBarrier(uint64_t epoch) {
  if (barrier_handler_) barrier_handler_(epoch, 0, EncodeMetaSlot());
  for (auto& r : replicas_) {
    CQ_RETURN_NOT_OK(r->InjectBarrier(epoch));
  }
  return Status::OK();
}

}  // namespace cq::shard

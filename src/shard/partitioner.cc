#include "shard/partitioner.h"

namespace cq::shard {

Result<std::vector<std::string>> ReshardKeyedStateBlobs(
    const std::vector<std::string>& old_blobs, size_t new_shards) {
  if (new_shards == 0) {
    return Status::InvalidArgument("re-shard to zero shards");
  }
  std::vector<std::string> out(new_shards);
  for (const std::string& blob : old_blobs) {
    std::string_view in = blob;
    while (!in.empty()) {
      CQ_ASSIGN_OR_RETURN(std::string key, DecodeString(&in));
      CQ_ASSIGN_OR_RETURN(std::string ns, DecodeString(&in));
      CQ_ASSIGN_OR_RETURN(std::string value, DecodeString(&in));
      std::string& dst =
          out[ShardPartitioner::ShardOfKeyBytes(key, new_shards)];
      EncodeString(key, &dst);
      EncodeString(ns, &dst);
      EncodeString(value, &dst);
    }
  }
  return out;
}

}  // namespace cq::shard

#include "shard/planner.h"

#include <utility>

namespace cq::shard {
namespace {

/// Partitioning of one stream edge: nullopt = unknown/unpartitioned.
using Partitioning = std::optional<std::vector<size_t>>;

/// Partitioning of `op`'s output given the partitioning of its (single)
/// input after any exchange the planner placed.
Partitioning Propagate(const Operator& op, const Partitioning& input) {
  std::vector<size_t> guaranteed = op.OutputPartitionColumns();
  if (!guaranteed.empty()) return guaranteed;
  if (op.PreservesPartitioning()) return input;
  return std::nullopt;
}

bool Satisfies(const Partitioning& have, const std::vector<size_t>& need) {
  return have.has_value() && *have == need;
}

}  // namespace

Result<std::vector<ExchangePlacement>> ShardPlanner::AnalyzeGraph(
    const DataflowGraph& graph,
    const std::map<NodeId, std::vector<size_t>>& source_partitioning) {
  CQ_ASSIGN_OR_RETURN(std::vector<NodeId> order, graph.TopologicalOrder());

  // Partitioning of each node's OUTPUT stream, keyed by node id.
  std::map<NodeId, Partitioning> out_part;
  // Partitioning arriving on each (node, port) input, min over upstreams:
  // two upstream edges with different partitioning make the port unknown.
  std::map<std::pair<NodeId, size_t>, std::optional<Partitioning>> in_part;

  std::vector<ExchangePlacement> placements;
  for (NodeId id : order) {
    const Operator* op = graph.node(id);
    const bool is_source = graph.num_inputs(id) == 0;

    // Resolve the partitioning entering each input port.
    const size_t ports = op->num_input_ports() == 0 ? 1 : op->num_input_ports();
    std::vector<Partitioning> port_in(ports, std::nullopt);
    if (is_source) {
      auto it = source_partitioning.find(id);
      if (it != source_partitioning.end()) port_in[0] = it->second;
    } else {
      for (size_t p = 0; p < ports; ++p) {
        auto it = in_part.find({id, p});
        if (it != in_part.end() && it->second.has_value()) {
          port_in[p] = *it->second;
        }
      }
    }

    // Place an exchange on every port whose stream does not satisfy the
    // operator's key requirement there.
    for (size_t p = 0; p < ports; ++p) {
      std::vector<size_t> need = op->PartitionKeyColumns(p);
      if (need.empty()) continue;
      if (!Satisfies(port_in[p], need)) {
        placements.push_back({id, p, need});
        port_in[p] = need;  // post-exchange partitioning
      }
    }

    // Propagate to downstream edges. Multi-input operators destroy
    // partitioning unless they guarantee one themselves.
    Partitioning produced;
    if (ports == 1) {
      produced = Propagate(*op, port_in[0]);
    } else {
      std::vector<size_t> guaranteed = op->OutputPartitionColumns();
      if (!guaranteed.empty()) produced = guaranteed;
    }
    out_part[id] = produced;
    for (const DataflowGraph::Edge& e : graph.outputs(id)) {
      auto key = std::make_pair(e.to, e.port);
      auto it = in_part.find(key);
      if (it == in_part.end()) {
        in_part[key] = produced;
      } else if (!it->second.has_value() || !produced.has_value() ||
                 **it->second != *produced) {
        it->second = Partitioning{};  // conflicting upstreams -> unknown
      }
    }
  }
  return placements;
}

Result<std::vector<ChainStage>> ShardPlanner::PlanChain(
    const std::vector<const Operator*>& ops,
    const std::vector<size_t>& ingest_key) {
  if (ops.empty()) return Status::InvalidArgument("empty operator chain");
  for (const Operator* op : ops) {
    if (op->num_input_ports() > 1) {
      return Status::PlanError(
          "operator '" + op->name() +
          "' has multiple input ports; sharded chains are linear "
          "(shard DAG plans through the service replica path)");
    }
  }

  std::vector<ChainStage> stages;
  stages.push_back({0, 0, ingest_key});
  Partitioning current =
      ingest_key.empty() ? Partitioning{} : Partitioning{ingest_key};
  // While the ingest key is still undecided, a key requirement found behind
  // partition-preserving (record-wise) operators is hoisted to the ingest
  // split instead of costing an exchange.
  bool ingest_open = ingest_key.empty();

  for (size_t i = 0; i < ops.size(); ++i) {
    const Operator& op = *ops[i];
    std::vector<size_t> need = op.PartitionKeyColumns(0);
    if (!need.empty() && !Satisfies(current, need)) {
      if (ingest_open || i == 0) {
        // Nothing runs before this op yet: re-key the ingest split rather
        // than paying an exchange into an empty first stage.
        stages.front().partition_key = need;
      } else {
        stages.back().end = i;
        stages.push_back({i, 0, need});
      }
      current = need;
    }
    if (ingest_open && !op.PreservesPartitioning()) ingest_open = false;
    current = Propagate(op, current);
  }
  stages.back().end = ops.size();
  return stages;
}

}  // namespace cq::shard

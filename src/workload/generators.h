#ifndef CQ_WORKLOAD_GENERATORS_H_
#define CQ_WORKLOAD_GENERATORS_H_

/// \file generators.h
/// \brief Seeded synthetic workload generators for benches and examples.
///
/// Substitutes for the real-world streams the survey motivates (sensor
/// networks, transaction logs, social/graph streams): each generator exposes
/// the parameters the experiments sweep — skew, out-of-orderness, rate,
/// cardinality — and is deterministic under a fixed seed.

#include <random>
#include <string>
#include <vector>

#include "common/time.h"
#include "graph/property_graph.h"
#include "stream/stream.h"
#include "types/schema.h"

namespace cq {

/// \brief Zipf-distributed integer sampler over [0, n).
class ZipfGenerator {
 public:
  /// \brief `s` is the skew exponent (0 = uniform; 1+ = heavy skew).
  ZipfGenerator(size_t n, double s, uint64_t seed);

  size_t Next();

 private:
  std::mt19937_64 rng_;
  std::discrete_distribution<size_t> dist_;
};

/// \brief Event timestamps: mean inter-arrival `step`, out-of-order by up to
/// `max_disorder` (0 = strictly ordered).
class TimestampGenerator {
 public:
  TimestampGenerator(Timestamp start, Duration step, Duration max_disorder,
                     uint64_t seed)
      : rng_(seed), base_(start), step_(step), max_disorder_(max_disorder) {}

  Timestamp Next();

  /// \brief Largest timestamp emitted so far.
  Timestamp MaxEmitted() const { return max_emitted_; }

 private:
  std::mt19937_64 rng_;
  Timestamp base_;
  Duration step_;
  Duration max_disorder_;
  Timestamp max_emitted_ = kMinTimestamp;
};

/// \brief Listing 1 workload: Person and RoomObservation streams.
struct RoomWorkload {
  SchemaPtr person_schema;       // (id INT64, name STRING)
  SchemaPtr observation_schema;  // (id INT64, room STRING)
  BoundedStream persons;
  BoundedStream observations;
};

/// \brief Generates `num_persons` person records at t=0..,
/// `num_observations` observations across `num_rooms` rooms with Zipf person
/// skew and bounded disorder.
RoomWorkload MakeRoomWorkload(size_t num_persons, size_t num_observations,
                              size_t num_rooms, double skew,
                              Duration max_disorder, uint64_t seed);

/// \brief Listing 2 workload: transactions (tid, account, amount).
struct TransactionWorkload {
  SchemaPtr schema;  // (tid INT64, account INT64, amount DOUBLE)
  BoundedStream transactions;
};

TransactionWorkload MakeTransactionWorkload(size_t num_transactions,
                                            size_t num_accounts, double skew,
                                            double max_amount,
                                            Duration max_disorder,
                                            uint64_t seed);

/// \brief Streaming-graph workload: timestamped labeled edges over
/// `num_vertices` vertices; labels drawn uniformly from `labels`.
std::vector<StreamingEdge> MakeGraphStream(size_t num_edges,
                                           size_t num_vertices,
                                           const std::vector<LabelId>& labels,
                                           Duration step, uint64_t seed);

/// \brief Key-value workload for the KV-store bench: `n` (key, value) pairs
/// with keys "key########" drawn uniformly from a space of `key_space`.
std::vector<std::pair<std::string, std::string>> MakeKvWorkload(
    size_t n, size_t key_space, size_t value_size, uint64_t seed);

}  // namespace cq

#endif  // CQ_WORKLOAD_GENERATORS_H_

#include "workload/generators.h"

#include <cmath>
#include <cstdio>

namespace cq {

ZipfGenerator::ZipfGenerator(size_t n, double s, uint64_t seed) : rng_(seed) {
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  dist_ = std::discrete_distribution<size_t>(weights.begin(), weights.end());
}

size_t ZipfGenerator::Next() { return dist_(rng_); }

Timestamp TimestampGenerator::Next() {
  base_ += step_;
  Timestamp ts = base_;
  if (max_disorder_ > 0) {
    std::uniform_int_distribution<Duration> jitter(0, max_disorder_);
    ts -= jitter(rng_);
  }
  if (ts > max_emitted_) max_emitted_ = ts;
  return ts;
}

RoomWorkload MakeRoomWorkload(size_t num_persons, size_t num_observations,
                              size_t num_rooms, double skew,
                              Duration max_disorder, uint64_t seed) {
  RoomWorkload w;
  w.person_schema = Schema::Make(
      {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  w.observation_schema = Schema::Make(
      {{"id", ValueType::kInt64}, {"room", ValueType::kString}});
  w.persons.set_schema(w.person_schema);
  w.observations.set_schema(w.observation_schema);

  for (size_t i = 0; i < num_persons; ++i) {
    w.persons.Append(Tuple({Value(static_cast<int64_t>(i)),
                            Value("person-" + std::to_string(i))}),
                     0);
  }

  ZipfGenerator person_picker(num_persons, skew, seed);
  std::mt19937_64 rng(seed ^ 0x9e3779b9);
  std::uniform_int_distribution<size_t> room_picker(0, num_rooms - 1);
  TimestampGenerator ts_gen(0, 1, max_disorder, seed ^ 0x1234567);
  for (size_t i = 0; i < num_observations; ++i) {
    int64_t pid = static_cast<int64_t>(person_picker.Next());
    std::string room = "room-" + std::to_string(room_picker(rng));
    w.observations.Append(Tuple({Value(pid), Value(std::move(room))}),
                          ts_gen.Next());
  }
  return w;
}

TransactionWorkload MakeTransactionWorkload(size_t num_transactions,
                                            size_t num_accounts, double skew,
                                            double max_amount,
                                            Duration max_disorder,
                                            uint64_t seed) {
  TransactionWorkload w;
  w.schema = Schema::Make({{"tid", ValueType::kInt64},
                           {"account", ValueType::kInt64},
                           {"amount", ValueType::kDouble}});
  w.transactions.set_schema(w.schema);

  ZipfGenerator account_picker(num_accounts, skew, seed);
  std::mt19937_64 rng(seed ^ 0xabcdef);
  std::uniform_real_distribution<double> amount(0.01, max_amount);
  TimestampGenerator ts_gen(0, 1, max_disorder, seed ^ 0x7654321);
  for (size_t i = 0; i < num_transactions; ++i) {
    w.transactions.Append(
        Tuple({Value(static_cast<int64_t>(i)),
               Value(static_cast<int64_t>(account_picker.Next())),
               Value(amount(rng))}),
        ts_gen.Next());
  }
  return w;
}

std::vector<StreamingEdge> MakeGraphStream(size_t num_edges,
                                           size_t num_vertices,
                                           const std::vector<LabelId>& labels,
                                           Duration step, uint64_t seed) {
  std::vector<StreamingEdge> out;
  out.reserve(num_edges);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> vertex(
      0, static_cast<VertexId>(num_vertices) - 1);
  std::uniform_int_distribution<size_t> label(0, labels.size() - 1);
  Timestamp ts = 0;
  for (size_t i = 0; i < num_edges; ++i) {
    ts += step;
    StreamingEdge e;
    e.src = vertex(rng);
    do {
      e.dst = vertex(rng);
    } while (e.dst == e.src && num_vertices > 1);
    e.label = labels[label(rng)];
    e.ts = ts;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> MakeKvWorkload(
    size_t n, size_t key_space, size_t value_size, uint64_t seed) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(n);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<size_t> key(0, key_space - 1);
  std::uniform_int_distribution<int> byte('a', 'z');
  for (size_t i = 0; i < n; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "key%08zu", key(rng));
    std::string value(value_size, 'x');
    for (auto& c : value) c = static_cast<char>(byte(rng));
    out.emplace_back(buf, std::move(value));
  }
  return out;
}

}  // namespace cq

#ifndef CQ_TYPES_SERDE_H_
#define CQ_TYPES_SERDE_H_

/// \file serde.h
/// \brief Binary serialization of Values and Tuples.
///
/// Used wherever engine data crosses a byte boundary: the KV-store state
/// backend, operator checkpoints, and order-preserving state keys.

#include <string>
#include <string_view>

#include "common/status.h"
#include "types/tuple.h"
#include "types/value.h"

namespace cq {

/// \brief Appends a compact binary encoding of `v` to `out`.
void EncodeValue(const Value& v, std::string* out);

/// \brief Decodes one Value from the front of `in`, advancing it.
Result<Value> DecodeValue(std::string_view* in);

/// \brief Appends an encoding of `t` (arity-prefixed) to `out`.
void EncodeTuple(const Tuple& t, std::string* out);

/// \brief Decodes one Tuple from the front of `in`, advancing it.
Result<Tuple> DecodeTuple(std::string_view* in);

/// \brief Convenience: single-buffer round trips.
std::string TupleToBytes(const Tuple& t);
Result<Tuple> TupleFromBytes(std::string_view bytes);

/// \brief Appends fixed-width primitives (little-endian).
void EncodeU32(uint32_t v, std::string* out);
void EncodeU64(uint64_t v, std::string* out);
void EncodeI64(int64_t v, std::string* out);
void EncodeF64(double v, std::string* out);
void EncodeString(std::string_view s, std::string* out);  // u32 len + bytes

Result<uint32_t> DecodeU32(std::string_view* in);
Result<uint64_t> DecodeU64(std::string_view* in);
Result<int64_t> DecodeI64(std::string_view* in);
Result<double> DecodeF64(std::string_view* in);
Result<std::string> DecodeString(std::string_view* in);

}  // namespace cq

#endif  // CQ_TYPES_SERDE_H_

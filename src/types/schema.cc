#include "types/schema.h"
#include <cctype>
#include <string_view>

namespace cq {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  // Exact match first, then case-insensitive (SQL identifiers are
  // case-insensitive by convention), erroring on ambiguity.
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  size_t found = fields_.size();
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) {
      if (found != fields_.size()) {
        return Status::InvalidArgument("ambiguous column reference: " + name);
      }
      found = i;
    }
  }
  if (found != fields_.size()) return found;
  // Last pass: allow unqualified lookup of a qualified field ("P.id" can be
  // found via "id") when it is unambiguous.
  for (size_t i = 0; i < fields_.size(); ++i) {
    const std::string& fname = fields_[i].name;
    auto dot = fname.rfind('.');
    if (dot != std::string::npos &&
        EqualsIgnoreCase(fname.substr(dot + 1), name)) {
      if (found != fields_.size()) {
        return Status::InvalidArgument("ambiguous column reference: " + name);
      }
      found = i;
    }
  }
  if (found != fields_.size()) return found;
  return Status::NotFound("no field named '" + name + "' in schema " +
                          ToString());
}

bool Schema::HasField(const std::string& name) const {
  return FieldIndex(name).ok();
}

std::shared_ptr<Schema> Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> fields = left.fields_;
  fields.insert(fields.end(), right.fields_.begin(), right.fields_.end());
  return Make(std::move(fields));
}

std::shared_ptr<Schema> Schema::Qualified(const std::string& qualifier) const {
  std::vector<Field> fields = fields_;
  for (auto& f : fields) {
    // Re-qualify: strip any existing qualifier first.
    auto dot = f.name.rfind('.');
    std::string base =
        dot == std::string::npos ? f.name : f.name.substr(dot + 1);
    f.name = qualifier + "." + base;
  }
  return Make(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace cq

#ifndef CQ_TYPES_COLUMN_H_
#define CQ_TYPES_COLUMN_H_

/// \file column.h
/// \brief Typed column storage: the building block of columnar batches.
///
/// The survey's substrate story (§5) is that modern engines exchange columnar
/// batches and run vectorized kernels over them instead of dispatching on a
/// per-row tagged union. A Column holds one attribute of a batch in a typed
/// vector — int64/double/bool flat arrays, strings as a shared character
/// buffer with offsets — plus a null bitmap, so operators can run tight
/// typed loops (`data[i] > 10`) with no std::variant dispatch per row.
///
/// A column has one scalar type for all its non-null rows. A column whose
/// rows are all NULL stays "untyped" (ValueType::kNull) and adopts the type
/// of the first non-null value appended; appending a value of a different
/// type fails, which is how the row->column converter detects mixed-type
/// batches and routes them to the row fallback path.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/value.h"

namespace cq {

class Column {
 public:
  /// \brief An untyped (all-NULL so far) column.
  Column() = default;
  /// \brief A column of `type` (kNull = untyped).
  explicit Column(ValueType type) { EnsureType(type); }

  ValueType type() const { return type_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n);
  void Clear();

  /// \brief Appends a value, adopting its type if the column is still
  /// untyped. TypeError when the value's type conflicts with the column's.
  Status Append(const Value& v);

  /// \brief Typed appends. Precondition: the column is untyped or already of
  /// the appended type (they promote an untyped column like Append does).
  void AppendNull() {
    MarkNull(size_);
    AppendPlaceholder();
    ++size_;
  }
  void AppendInt64(int64_t v) {
    EnsureType(ValueType::kInt64);
    GrowNulls();
    i64_.push_back(v);
    ++size_;
  }
  void AppendDouble(double v) {
    EnsureType(ValueType::kDouble);
    GrowNulls();
    f64_.push_back(v);
    ++size_;
  }
  void AppendBool(bool v) {
    EnsureType(ValueType::kBool);
    GrowNulls();
    b8_.push_back(v ? 1 : 0);
    ++size_;
  }
  void AppendString(std::string_view v) {
    EnsureType(ValueType::kString);
    GrowNulls();
    chars_.append(v.data(), v.size());
    offsets_.push_back(static_cast<uint32_t>(chars_.size()));
    ++size_;
  }

  /// \brief Whether row `i` is NULL.
  bool IsNull(size_t i) const {
    return has_nulls_ && ((nulls_[i >> 6] >> (i & 63)) & 1) != 0;
  }
  bool has_nulls() const { return has_nulls_; }

  /// \brief Raw typed storage. Preconditions mirror type(); entries at NULL
  /// rows are unspecified placeholders and must not be interpreted.
  const int64_t* int64_data() const { return i64_.data(); }
  const double* double_data() const { return f64_.data(); }
  /// 0/1 per row.
  const uint8_t* bool_data() const { return b8_.data(); }
  std::string_view string_at(size_t i) const {
    return std::string_view(chars_.data() + offsets_[i],
                            offsets_[i + 1] - offsets_[i]);
  }

  /// \brief Materializes row `i` as a Value (row-fallback conversion).
  Value ValueAt(size_t i) const;

  /// \brief Appends the serde encoding of row `i` to `out`, byte-identical
  /// to `EncodeValue(ValueAt(i), out)` but without materializing the Value —
  /// used for state/join keys built straight from columns.
  void EncodeValueAt(size_t i, std::string* out) const;

  /// \brief Semantic equality: same type, size, null pattern, and non-null
  /// values. Placeholder bytes under NULL rows are ignored.
  bool operator==(const Column& other) const;
  bool operator!=(const Column& other) const { return !(*this == other); }

  /// \brief Approximate resident bytes (storage vectors + null bitmap).
  size_t ApproxBytes() const;

 private:
  friend void EncodeColumn(const Column& col, std::string* out);
  friend Result<Column> DecodeColumn(std::string_view* in);

  /// Adopts `t` for an untyped column, backfilling placeholder storage for
  /// any already-appended NULL rows. Appending a conflicting type is a
  /// precondition violation of the typed appends; Append(Value) checks first.
  void EnsureType(ValueType t);
  /// Keeps the null bitmap covering `size_ + 1` rows when nulls exist.
  void GrowNulls() {
    if (has_nulls_ && (size_ >> 6) == nulls_.size()) nulls_.push_back(0);
  }
  void MarkNull(size_t i);
  /// Appends an unspecified placeholder slot in the typed storage (NULL row).
  void AppendPlaceholder();

  ValueType type_ = ValueType::kNull;
  size_t size_ = 0;
  bool has_nulls_ = false;
  std::vector<uint64_t> nulls_;  // bitmap, bit = 1 -> NULL
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::vector<uint32_t> offsets_;  // strings: size_+1 entries once typed
  std::string chars_;              // strings: shared character buffer
};

/// \brief One column per schema field, typed by the field (schema-driven
/// layout for sources that know their schema up front).
std::vector<Column> ColumnsForSchema(const Schema& schema);

/// \brief Binary codec (checkpoint images, exchange). Encoding is
/// little-endian like the rest of serde.
void EncodeColumn(const Column& col, std::string* out);
Result<Column> DecodeColumn(std::string_view* in);

}  // namespace cq

#endif  // CQ_TYPES_COLUMN_H_

#ifndef CQ_TYPES_SCHEMA_H_
#define CQ_TYPES_SCHEMA_H_

/// \file schema.h
/// \brief Relational schemas for tuples flowing through continuous queries.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace cq {

/// \brief One named, typed column of a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Field& other) const = default;
  std::string ToString() const {
    return name + " " + ValueTypeToString(type);
  }
};

/// \brief An ordered list of named fields (the schema E of Definition 2.2).
///
/// Schemas are immutable once constructed and shared via shared_ptr across
/// operators; plan construction resolves column references to field indexes
/// against them.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// \brief Index of the field with `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  bool HasField(const std::string& name) const;

  /// \brief Concatenation of two schemas (used by joins / cartesian
  /// products); names may be qualified by the caller to avoid collisions.
  static std::shared_ptr<Schema> Concat(const Schema& left, const Schema& right);

  /// \brief A copy with every field name prefixed "qualifier.".
  std::shared_ptr<Schema> Qualified(const std::string& qualifier) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace cq

#endif  // CQ_TYPES_SCHEMA_H_

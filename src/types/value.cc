#include "types/value.h"

#include <cmath>
#include <sstream>

namespace cq {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  // Numeric cross-type comparison: INT64 and DOUBLE compare by value.
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) {
      int64_t a = int64_value(), b = other.int64_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      int a = bool_value(), b = other.bool_value();
      return a - b;
    }
    case ValueType::kString: {
      int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // unreachable: numerics handled above
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kBool:
      return MixU64(bool_value() ? 2 : 1);
    case ValueType::kInt64:
      return MixU64(static_cast<uint64_t>(int64_value()));
    case ValueType::kDouble: {
      // Hash doubles that are exact integers identically to the integer so
      // that Compare-equal values hash equal (required by hash containers).
      double d = double_value();
      if (d == std::floor(d) && d >= -9.2e18 && d <= 9.2e18) {
        return MixU64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixU64(bits);
    }
    case ValueType::kString:
      return Fnv1a64(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(int64_value());
    case ValueType::kDouble: {
      std::ostringstream ss;
      ss << double_value();
      return ss.str();
    }
    case ValueType::kString:
      return "'" + string_value() + "'";
  }
  return "?";
}

namespace {

Status NumericOperandError(const char* op, const Value& a, const Value& b) {
  return Status::TypeError(std::string("operator ") + op +
                           " requires numeric operands, got " +
                           ValueTypeToString(a.type()) + " and " +
                           ValueTypeToString(b.type()));
}

}  // namespace

Result<Value> Value::Add(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.is_string() && b.is_string()) {
    return Value(a.string_value() + b.string_value());
  }
  if (!a.is_numeric() || !b.is_numeric()) return NumericOperandError("+", a, b);
  if (a.is_int64() && b.is_int64()) {
    return Value(a.int64_value() + b.int64_value());
  }
  return Value(a.AsDouble() + b.AsDouble());
}

Result<Value> Value::Subtract(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) return NumericOperandError("-", a, b);
  if (a.is_int64() && b.is_int64()) {
    return Value(a.int64_value() - b.int64_value());
  }
  return Value(a.AsDouble() - b.AsDouble());
}

Result<Value> Value::Multiply(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) return NumericOperandError("*", a, b);
  if (a.is_int64() && b.is_int64()) {
    return Value(a.int64_value() * b.int64_value());
  }
  return Value(a.AsDouble() * b.AsDouble());
}

Result<Value> Value::Divide(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_numeric() || !b.is_numeric()) return NumericOperandError("/", a, b);
  if (b.is_int64() && b.int64_value() == 0) {
    return Status::InvalidArgument("division by zero");
  }
  if (b.is_double() && b.double_value() == 0.0) {
    return Status::InvalidArgument("division by zero");
  }
  if (a.is_int64() && b.is_int64()) {
    return Value(a.int64_value() / b.int64_value());
  }
  return Value(a.AsDouble() / b.AsDouble());
}

Result<Value> Value::Modulo(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!a.is_int64() || !b.is_int64()) {
    return Status::TypeError("operator % requires INT64 operands");
  }
  if (b.int64_value() == 0) {
    return Status::InvalidArgument("modulo by zero");
  }
  return Value(a.int64_value() % b.int64_value());
}

}  // namespace cq

#ifndef CQ_TYPES_TUPLE_H_
#define CQ_TYPES_TUPLE_H_

/// \file tuple.h
/// \brief Relational tuples: the data items carried by streams (the o in the
/// stream elements (o, tau) of Definition 2.2).

#include <initializer_list>
#include <string>
#include <vector>

#include "common/hash.h"
#include "types/schema.h"
#include "types/value.h"

namespace cq {

/// \brief A fixed-arity row of Values. Schema is tracked out-of-band (by the
/// operator / plan), keeping tuples lean on hot paths.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// \brief Concatenation (join output construction).
  static Tuple Concat(const Tuple& left, const Tuple& right) {
    std::vector<Value> vals = left.values_;
    vals.insert(vals.end(), right.values_.begin(), right.values_.end());
    return Tuple(std::move(vals));
  }

  /// \brief Projection onto the given column indexes.
  Tuple Project(const std::vector<size_t>& indexes) const {
    std::vector<Value> vals;
    vals.reserve(indexes.size());
    for (size_t i : indexes) vals.push_back(values_[i]);
    return Tuple(std::move(vals));
  }

  int Compare(const Tuple& other) const {
    size_t n = values_.size() < other.values_.size() ? values_.size()
                                                     : other.values_.size();
    for (size_t i = 0; i < n; ++i) {
      int c = values_[i].Compare(other.values_[i]);
      if (c != 0) return c;
    }
    if (values_.size() != other.values_.size()) {
      return values_.size() < other.values_.size() ? -1 : 1;
    }
    return 0;
  }

  bool operator==(const Tuple& other) const { return Compare(other) == 0; }
  bool operator!=(const Tuple& other) const { return Compare(other) != 0; }
  bool operator<(const Tuple& other) const { return Compare(other) < 0; }

  uint64_t Hash() const {
    size_t h = 0x51ed270b;
    for (const auto& v : values_) h = HashCombine(h, v.Hash());
    return h;
  }

  /// \brief "(v1, v2, ...)".
  std::string ToString() const {
    std::string out = "(";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i) out += ", ";
      out += values_[i].ToString();
    }
    out += ")";
    return out;
  }

 private:
  std::vector<Value> values_;
};

}  // namespace cq

namespace std {
template <>
struct hash<cq::Tuple> {
  size_t operator()(const cq::Tuple& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // CQ_TYPES_TUPLE_H_

#include "types/column.h"

#include "types/serde.h"

namespace cq {

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      b8_.reserve(n);
      break;
    case ValueType::kInt64:
      i64_.reserve(n);
      break;
    case ValueType::kDouble:
      f64_.reserve(n);
      break;
    case ValueType::kString:
      offsets_.reserve(n + 1);
      break;
  }
}

void Column::Clear() {
  size_ = 0;
  has_nulls_ = false;
  nulls_.clear();
  i64_.clear();
  f64_.clear();
  b8_.clear();
  offsets_.clear();
  chars_.clear();
  if (type_ == ValueType::kString) offsets_.push_back(0);
}

Status Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  if (type_ != ValueType::kNull && v.type() != type_) {
    return Status::TypeError(std::string("column of ") +
                             ValueTypeToString(type_) + " cannot hold " +
                             ValueTypeToString(v.type()));
  }
  switch (v.type()) {
    case ValueType::kBool:
      AppendBool(v.bool_value());
      break;
    case ValueType::kInt64:
      AppendInt64(v.int64_value());
      break;
    case ValueType::kDouble:
      AppendDouble(v.double_value());
      break;
    case ValueType::kString:
      AppendString(v.string_value());
      break;
    case ValueType::kNull:
      break;  // unreachable: handled above
  }
  return Status::OK();
}

void Column::EnsureType(ValueType t) {
  if (type_ == t) return;
  type_ = t;
  // Backfill placeholder storage for rows appended while untyped (all NULL).
  switch (t) {
    case ValueType::kBool:
      b8_.assign(size_, 0);
      break;
    case ValueType::kInt64:
      i64_.assign(size_, 0);
      break;
    case ValueType::kDouble:
      f64_.assign(size_, 0.0);
      break;
    case ValueType::kString:
      offsets_.assign(size_ + 1, 0);
      break;
    case ValueType::kNull:
      break;
  }
}

void Column::MarkNull(size_t i) {
  if (!has_nulls_) {
    has_nulls_ = true;
    nulls_.assign((i >> 6) + 1, 0);
  } else if ((i >> 6) >= nulls_.size()) {
    nulls_.resize((i >> 6) + 1, 0);
  }
  nulls_[i >> 6] |= uint64_t{1} << (i & 63);
}

void Column::AppendPlaceholder() {
  switch (type_) {
    case ValueType::kNull:
      break;  // untyped: no storage yet
    case ValueType::kBool:
      b8_.push_back(0);
      break;
    case ValueType::kInt64:
      i64_.push_back(0);
      break;
    case ValueType::kDouble:
      f64_.push_back(0.0);
      break;
    case ValueType::kString:
      // String column starts with offsets_ == {0} (set by EnsureType /
      // Clear); an empty slot repeats the current end offset.
      offsets_.push_back(static_cast<uint32_t>(chars_.size()));
      break;
  }
}

Value Column::ValueAt(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      return Value(b8_[i] != 0);
    case ValueType::kInt64:
      return Value(i64_[i]);
    case ValueType::kDouble:
      return Value(f64_[i]);
    case ValueType::kString:
      return Value(std::string(string_at(i)));
  }
  return Value::Null();
}

void Column::EncodeValueAt(size_t i, std::string* out) const {
  if (IsNull(i) || type_ == ValueType::kNull) {
    out->push_back(static_cast<char>(ValueType::kNull));
    return;
  }
  out->push_back(static_cast<char>(type_));
  switch (type_) {
    case ValueType::kBool:
      out->push_back(b8_[i] != 0 ? 1 : 0);
      break;
    case ValueType::kInt64:
      EncodeI64(i64_[i], out);
      break;
    case ValueType::kDouble:
      EncodeF64(f64_[i], out);
      break;
    case ValueType::kString:
      EncodeString(string_at(i), out);
      break;
    case ValueType::kNull:
      break;  // unreachable
  }
}

bool Column::operator==(const Column& other) const {
  if (size_ != other.size_) return false;
  for (size_t i = 0; i < size_; ++i) {
    bool n = IsNull(i), on = other.IsNull(i);
    if (n != on) return false;
    if (n) continue;
    if (type_ != other.type_) return false;
    switch (type_) {
      case ValueType::kBool:
        if (b8_[i] != other.b8_[i]) return false;
        break;
      case ValueType::kInt64:
        if (i64_[i] != other.i64_[i]) return false;
        break;
      case ValueType::kDouble:
        if (f64_[i] != other.f64_[i]) return false;
        break;
      case ValueType::kString:
        if (string_at(i) != other.string_at(i)) return false;
        break;
      case ValueType::kNull:
        break;
    }
  }
  return true;
}

size_t Column::ApproxBytes() const {
  return nulls_.size() * sizeof(uint64_t) + i64_.size() * sizeof(int64_t) +
         f64_.size() * sizeof(double) + b8_.size() +
         offsets_.size() * sizeof(uint32_t) + chars_.size();
}

std::vector<Column> ColumnsForSchema(const Schema& schema) {
  std::vector<Column> cols;
  cols.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) {
    cols.emplace_back(f.type);
  }
  return cols;
}

void EncodeColumn(const Column& col, std::string* out) {
  out->push_back(static_cast<char>(col.type_));
  EncodeU64(col.size_, out);
  out->push_back(col.has_nulls_ ? 1 : 0);
  if (col.has_nulls_) {
    EncodeU32(static_cast<uint32_t>(col.nulls_.size()), out);
    for (uint64_t w : col.nulls_) EncodeU64(w, out);
  }
  switch (col.type_) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->append(reinterpret_cast<const char*>(col.b8_.data()),
                  col.b8_.size());
      break;
    case ValueType::kInt64:
      for (int64_t v : col.i64_) EncodeI64(v, out);
      break;
    case ValueType::kDouble:
      for (double v : col.f64_) EncodeF64(v, out);
      break;
    case ValueType::kString:
      for (uint32_t o : col.offsets_) EncodeU32(o, out);
      EncodeString(col.chars_, out);
      break;
  }
}

Result<Column> DecodeColumn(std::string_view* in) {
  if (in->empty()) return Status::ParseError("column: buffer underflow");
  auto type = static_cast<ValueType>((*in)[0]);
  in->remove_prefix(1);
  if (type > ValueType::kString) {
    return Status::ParseError("column: unknown type tag");
  }
  Column col;
  col.type_ = type;  // storage vectors are filled directly below
  CQ_ASSIGN_OR_RETURN(uint64_t size, DecodeU64(in));
  col.size_ = size;
  if (in->empty()) return Status::ParseError("column: buffer underflow");
  col.has_nulls_ = (*in)[0] != 0;
  in->remove_prefix(1);
  if (col.has_nulls_) {
    CQ_ASSIGN_OR_RETURN(uint32_t words, DecodeU32(in));
    if (words < (size + 63) / 64) {
      return Status::ParseError("column: null bitmap too short");
    }
    col.nulls_.reserve(words);
    for (uint32_t i = 0; i < words; ++i) {
      CQ_ASSIGN_OR_RETURN(uint64_t w, DecodeU64(in));
      col.nulls_.push_back(w);
    }
  }
  switch (type) {
    case ValueType::kNull:
      break;
    case ValueType::kBool: {
      if (in->size() < size) {
        return Status::ParseError("column: buffer underflow");
      }
      col.b8_.assign(reinterpret_cast<const uint8_t*>(in->data()),
                     reinterpret_cast<const uint8_t*>(in->data()) + size);
      in->remove_prefix(size);
      break;
    }
    case ValueType::kInt64:
      col.i64_.reserve(size);
      for (uint64_t i = 0; i < size; ++i) {
        CQ_ASSIGN_OR_RETURN(int64_t v, DecodeI64(in));
        col.i64_.push_back(v);
      }
      break;
    case ValueType::kDouble:
      col.f64_.reserve(size);
      for (uint64_t i = 0; i < size; ++i) {
        CQ_ASSIGN_OR_RETURN(double v, DecodeF64(in));
        col.f64_.push_back(v);
      }
      break;
    case ValueType::kString: {
      col.offsets_.reserve(size + 1);
      for (uint64_t i = 0; i < size + 1; ++i) {
        CQ_ASSIGN_OR_RETURN(uint32_t o, DecodeU32(in));
        col.offsets_.push_back(o);
      }
      CQ_ASSIGN_OR_RETURN(col.chars_, DecodeString(in));
      if (!col.offsets_.empty() && col.offsets_.back() != col.chars_.size()) {
        return Status::ParseError("column: string offsets inconsistent");
      }
      break;
    }
  }
  return col;
}

}  // namespace cq

#ifndef CQ_TYPES_VALUE_H_
#define CQ_TYPES_VALUE_H_

/// \file value.h
/// \brief Dynamically typed scalar values carried by stream tuples.
///
/// Continuous queries in the paper's lineage (CQL, streaming SQL dialects)
/// operate over relational tuples with late-bound schemas, so the engine
/// uses a compact tagged-union scalar.

#include <cstdint>
#include <string>
#include <variant>

#include "common/hash.h"
#include "common/status.h"

namespace cq {

/// \brief Scalar type tags supported by the engine.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeToString(ValueType type);

/// \brief A dynamically typed scalar: NULL, BOOL, INT64, DOUBLE, or STRING.
///
/// Ordering and equality follow SQL-ish rules with a total order extension:
/// NULL sorts lowest, numeric types compare numerically across INT64/DOUBLE,
/// and cross-type comparisons otherwise order by type tag. This total order
/// makes Value usable as a key in ordered containers and in the KV store.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(int i) : v_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(v_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int64() || is_double(); }

  /// \brief Unchecked accessors; preconditions mirror the type tests above.
  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int64_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }

  /// \brief Numeric value widened to double; precondition: is_numeric().
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64_value()) : double_value();
  }

  /// \brief Three-way total-order comparison (see class comment).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// \brief Stable (cross-process reproducible) hash.
  uint64_t Hash() const;

  /// \brief SQL-style rendering: NULL, true, 42, 3.5, 'text'.
  std::string ToString() const;

  /// \brief Arithmetic with numeric promotion; Status on type mismatch.
  static Result<Value> Add(const Value& a, const Value& b);
  static Result<Value> Subtract(const Value& a, const Value& b);
  static Result<Value> Multiply(const Value& a, const Value& b);
  static Result<Value> Divide(const Value& a, const Value& b);
  static Result<Value> Modulo(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

}  // namespace cq

namespace std {
template <>
struct hash<cq::Value> {
  size_t operator()(const cq::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // CQ_TYPES_VALUE_H_

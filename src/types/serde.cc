#include "types/serde.h"

#include <cstring>

namespace cq {

void EncodeU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void EncodeU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void EncodeI64(int64_t v, std::string* out) {
  EncodeU64(static_cast<uint64_t>(v), out);
}

void EncodeF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  EncodeU64(bits, out);
}

void EncodeString(std::string_view s, std::string* out) {
  EncodeU32(static_cast<uint32_t>(s.size()), out);
  out->append(s.data(), s.size());
}

namespace {
Status Underflow() { return Status::ParseError("serde: buffer underflow"); }
}  // namespace

Result<uint32_t> DecodeU32(std::string_view* in) {
  if (in->size() < 4) return Underflow();
  uint32_t v;
  std::memcpy(&v, in->data(), 4);
  in->remove_prefix(4);
  return v;
}

Result<uint64_t> DecodeU64(std::string_view* in) {
  if (in->size() < 8) return Underflow();
  uint64_t v;
  std::memcpy(&v, in->data(), 8);
  in->remove_prefix(8);
  return v;
}

Result<int64_t> DecodeI64(std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint64_t v, DecodeU64(in));
  return static_cast<int64_t>(v);
}

Result<double> DecodeF64(std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint64_t bits, DecodeU64(in));
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

Result<std::string> DecodeString(std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint32_t len, DecodeU32(in));
  if (in->size() < len) return Underflow();
  std::string out(in->substr(0, len));
  in->remove_prefix(len);
  return out;
}

void EncodeValue(const Value& v, std::string* out) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(v.bool_value() ? 1 : 0);
      break;
    case ValueType::kInt64:
      EncodeI64(v.int64_value(), out);
      break;
    case ValueType::kDouble:
      EncodeF64(v.double_value(), out);
      break;
    case ValueType::kString:
      EncodeString(v.string_value(), out);
      break;
  }
}

Result<Value> DecodeValue(std::string_view* in) {
  if (in->empty()) return Underflow();
  auto type = static_cast<ValueType>((*in)[0]);
  in->remove_prefix(1);
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      if (in->empty()) return Underflow();
      bool b = (*in)[0] != 0;
      in->remove_prefix(1);
      return Value(b);
    }
    case ValueType::kInt64: {
      CQ_ASSIGN_OR_RETURN(int64_t i, DecodeI64(in));
      return Value(i);
    }
    case ValueType::kDouble: {
      CQ_ASSIGN_OR_RETURN(double d, DecodeF64(in));
      return Value(d);
    }
    case ValueType::kString: {
      CQ_ASSIGN_OR_RETURN(std::string s, DecodeString(in));
      return Value(std::move(s));
    }
  }
  return Status::ParseError("serde: unknown value type tag");
}

void EncodeTuple(const Tuple& t, std::string* out) {
  EncodeU32(static_cast<uint32_t>(t.size()), out);
  for (const auto& v : t.values()) EncodeValue(v, out);
}

Result<Tuple> DecodeTuple(std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint32_t arity, DecodeU32(in));
  std::vector<Value> vals;
  vals.reserve(arity);
  for (uint32_t i = 0; i < arity; ++i) {
    CQ_ASSIGN_OR_RETURN(Value v, DecodeValue(in));
    vals.push_back(std::move(v));
  }
  return Tuple(std::move(vals));
}

std::string TupleToBytes(const Tuple& t) {
  std::string out;
  EncodeTuple(t, &out);
  return out;
}

Result<Tuple> TupleFromBytes(std::string_view bytes) {
  std::string_view in = bytes;
  return DecodeTuple(&in);
}

}  // namespace cq

#include "common/time.h"

#include <chrono>

namespace cq {

const char* TimeDomainToString(TimeDomain domain) {
  switch (domain) {
    case TimeDomain::kEventTime:
      return "event-time";
    case TimeDomain::kProcessingTime:
      return "processing-time";
  }
  return "unknown";
}

std::string TimeInterval::ToString() const {
  return "[" + std::to_string(start) + ", " + std::to_string(end) + ")";
}

Timestamp SystemClock::Now() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace cq

#ifndef CQ_COMMON_LOGGING_H_
#define CQ_COMMON_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logging for the library. Off by default at DEBUG;
/// intended for diagnosing runtime behaviour, not for hot paths.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace cq {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide logging configuration.
class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void Log(LogLevel level, const std::string& msg) {
    if (level < level_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::cerr << "[" << Name(level) << "] " << msg << "\n";
  }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarn:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

/// \brief Stream-style log statement: CQ_LOG(kInfo) << "msg " << value;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, ss_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

#define CQ_LOG(level) ::cq::LogMessage(::cq::LogLevel::level)

}  // namespace cq

#endif  // CQ_COMMON_LOGGING_H_

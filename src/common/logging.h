#ifndef CQ_COMMON_LOGGING_H_
#define CQ_COMMON_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logging for the library. Off by default at DEBUG;
/// intended for diagnosing runtime behaviour, not for hot paths.
///
/// The initial level is read from the CQ_LOG_LEVEL environment variable:
/// one of DEBUG/INFO/WARN/ERROR (case-insensitive) or the numeric levels
/// 0-3. Unset or unrecognised values default to WARN. set_level() overrides
/// the environment at runtime.

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace cq {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Parses a CQ_LOG_LEVEL-style spec; `fallback` on no/bad input.
inline LogLevel ParseLogLevel(const char* spec,
                              LogLevel fallback = LogLevel::kWarn) {
  if (spec == nullptr) return fallback;
  std::string s(spec);
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  if (s == "DEBUG" || s == "0") return LogLevel::kDebug;
  if (s == "INFO" || s == "1") return LogLevel::kInfo;
  if (s == "WARN" || s == "WARNING" || s == "2") return LogLevel::kWarn;
  if (s == "ERROR" || s == "3") return LogLevel::kError;
  return fallback;
}

/// \brief Process-wide logging configuration.
class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// \brief True when a message at `level` would be emitted; lets callers
  /// skip building expensive messages.
  bool Enabled(LogLevel level) const { return level >= level_; }

  void Log(LogLevel level, const std::string& msg) {
    if (level < level_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::cerr << "[" << Name(level) << "] " << msg << "\n";
  }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarn:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  Logger() : level_(ParseLogLevel(std::getenv("CQ_LOG_LEVEL"))) {}

  LogLevel level_;
  std::mutex mu_;
};

/// \brief Stream-style log statement: CQ_LOG(kInfo) << "msg " << value;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, ss_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

#define CQ_LOG(level) ::cq::LogMessage(::cq::LogLevel::level)

}  // namespace cq

#endif  // CQ_COMMON_LOGGING_H_

#ifndef CQ_COMMON_TIME_H_
#define CQ_COMMON_TIME_H_

/// \file time.h
/// \brief The time domain of continuous queries (paper Definition 2.1).
///
/// The time domain T is an ordered, infinite set of discrete time instants.
/// We model instants as signed 64-bit integers with millisecond granularity
/// (the unit is by convention only; all algebra is unit-agnostic). Two time
/// domains are relevant in practice (paper §2): *processing time*, assigned
/// by the system on receipt, and *event time*, carried by the data itself.

#include <cstdint>
#include <limits>
#include <string>

namespace cq {

/// \brief A discrete instant in the time domain T.
using Timestamp = int64_t;

/// \brief A length of time, in the same granularity as Timestamp.
using Duration = int64_t;

/// \brief Smallest representable instant; used as the initial watermark.
constexpr Timestamp kMinTimestamp = std::numeric_limits<Timestamp>::min();

/// \brief Largest representable instant; a watermark of kMaxTimestamp means
/// the stream has been exhausted (end-of-stream punctuation).
constexpr Timestamp kMaxTimestamp = std::numeric_limits<Timestamp>::max();

/// \brief Which clock a timestamp refers to (paper §2).
enum class TimeDomain {
  /// When the event happened in the real world; permits out-of-order and
  /// contemporary (equal-timestamp) data.
  kEventTime,
  /// When the system received the event; strictly monotonic by construction.
  kProcessingTime,
};

const char* TimeDomainToString(TimeDomain domain);

/// \brief A half-open time interval [start, end).
///
/// Intervals are the range of a window function W : T -> T x T
/// (paper Definition 2.4) and the validity interval of tuples in the
/// Kramer-Seeger logical stream model (§3.1).
struct TimeInterval {
  Timestamp start = 0;
  Timestamp end = 0;  // exclusive

  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool Overlaps(const TimeInterval& other) const {
    return start < other.end && other.start < end;
  }
  bool Empty() const { return end <= start; }
  Duration Length() const { return end - start; }

  /// \brief The last instant inside the interval (end is exclusive).
  Timestamp MaxTimestamp() const { return end - 1; }

  /// \brief Intersection with another interval (may be empty).
  TimeInterval Intersect(const TimeInterval& other) const {
    return {start > other.start ? start : other.start,
            end < other.end ? end : other.end};
  }

  bool operator==(const TimeInterval& other) const = default;
  /// Ordered by start, then end, so intervals sort chronologically.
  bool operator<(const TimeInterval& other) const {
    if (start != other.start) return start < other.start;
    return end < other.end;
  }

  std::string ToString() const;
};

/// \brief A monotonically advancing clock abstraction.
///
/// The dataflow runtime uses a ProcessingTimeSource for trigger timers; tests
/// substitute a ManualClock for determinism.
class ProcessingTimeSource {
 public:
  virtual ~ProcessingTimeSource() = default;
  /// \brief Current processing time.
  virtual Timestamp Now() const = 0;
};

/// \brief Wall-clock time source (milliseconds since the Unix epoch).
class SystemClock : public ProcessingTimeSource {
 public:
  Timestamp Now() const override;
};

/// \brief Deterministic, manually advanced clock for tests and simulation.
class ManualClock : public ProcessingTimeSource {
 public:
  explicit ManualClock(Timestamp start = 0) : now_(start) {}
  Timestamp Now() const override { return now_; }
  void Advance(Duration d) { now_ += d; }
  void Set(Timestamp t) { now_ = t; }

 private:
  Timestamp now_;
};

}  // namespace cq

#endif  // CQ_COMMON_TIME_H_

#ifndef CQ_COMMON_STATUS_H_
#define CQ_COMMON_STATUS_H_

/// \file status.h
/// \brief Error handling primitives for the cqstream library.
///
/// The library does not throw exceptions across API boundaries. Fallible
/// operations return a `cq::Status`, or a `cq::Result<T>` when they also
/// produce a value, following the conventions of production database
/// codebases (Arrow, RocksDB, LevelDB).

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace cq {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kIOError = 7,
  kParseError = 8,
  kPlanError = 9,
  kTypeError = 10,
  kLateData = 11,
  kClosed = 12,
};

/// \brief Human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// `Status::OK()` carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : state_(nullptr) {}

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      state_ = std::make_unique<State>(State{code, std::move(msg)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// \brief The success status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status LateData(std::string msg) {
    return Status(StatusCode::kLateData, std::move(msg));
  }
  static Status Closed(std::string msg) {
    return Status(StatusCode::kClosed, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsLateData() const { return code() == StatusCode::kLateData; }
  bool IsClosed() const { return code() == StatusCode::kClosed; }

  /// \brief "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from a non-OK status.
  Result(Status status) : v_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// \brief Access the value. Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// \brief The value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// \brief Propagates a non-OK status to the caller.
#define CQ_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::cq::Status _st = (expr);                \
    if (!_st.ok()) return _st;                \
  } while (0)

#define CQ_CONCAT_IMPL(a, b) a##b
#define CQ_CONCAT(a, b) CQ_CONCAT_IMPL(a, b)

/// \brief Evaluates a Result<T>-returning expression; on success binds the
/// value to `lhs`, on failure returns the error status.
#define CQ_ASSIGN_OR_RETURN(lhs, expr)                          \
  CQ_ASSIGN_OR_RETURN_IMPL(CQ_CONCAT(_res_, __LINE__), lhs, expr)

#define CQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();

}  // namespace cq

#endif  // CQ_COMMON_STATUS_H_

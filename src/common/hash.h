#ifndef CQ_COMMON_HASH_H_
#define CQ_COMMON_HASH_H_

/// \file hash.h
/// \brief Hashing utilities shared across modules (keyed partitioning,
/// hash joins, grouped aggregation, KV store bloom filters).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace cq {

/// \brief Combines a new hash into a seed (boost::hash_combine recipe).
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// \brief 64-bit FNV-1a over raw bytes; stable across runs (unlike
/// std::hash) so it is safe for partitioning decisions that must be
/// reproducible in benchmarks and tests.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// \brief Stable 64-bit integer mix (SplitMix64 finalizer).
inline uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace cq

#endif  // CQ_COMMON_HASH_H_

#include "common/status.h"

namespace cq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kLateData:
      return "LateData";
    case StatusCode::kClosed:
      return "Closed";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace cq

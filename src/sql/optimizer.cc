#include "sql/optimizer.h"

#include <algorithm>
#include <set>

namespace cq {

namespace {

// ---- Expression utilities ----

void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*e);
    if (b.op() == BinaryOp::kAnd) {
      CollectConjuncts(b.left(), out);
      CollectConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(e);
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

std::set<size_t> ColumnsOf(const Expr& e) {
  std::vector<size_t> cols;
  e.CollectColumns(&cols);
  return {cols.begin(), cols.end()};
}

/// Rebuilds an expression with column indexes remapped.
Result<ExprPtr> RemapColumns(const ExprPtr& e,
                             const std::function<Result<size_t>(size_t)>& fn) {
  switch (e->kind()) {
    case Expr::Kind::kColumn: {
      const auto& c = static_cast<const ColumnRef&>(*e);
      CQ_ASSIGN_OR_RETURN(size_t idx, fn(c.index()));
      return Col(idx, c.name());
    }
    case Expr::Kind::kLiteral:
      return e;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr l, RemapColumns(b.left(), fn));
      CQ_ASSIGN_OR_RETURN(ExprPtr r, RemapColumns(b.right(), fn));
      return Bin(b.op(), std::move(l), std::move(r));
    }
    case Expr::Kind::kNot: {
      const auto& n = static_cast<const NotExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, RemapColumns(n.inner(), fn));
      return Not(std::move(inner));
    }
    default:
      // IsNull / Neg keep inner structure; conservatively refuse so callers
      // skip the rewrite rather than corrupt it.
      return Status::Unimplemented("remap of this expression kind");
  }
}

// ---- Rule: separate conjunctive selections ----

Result<RelOpPtr> SeparateConjuncts(RelOpPtr plan) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, SeparateConjuncts(c));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect) return node;
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(node->predicate(), &conjuncts);
  if (conjuncts.size() <= 1) return node;
  RelOpPtr acc = node->children()[0];
  // Innermost applies the last conjunct; order preserved overall.
  for (auto it = conjuncts.rbegin(); it != conjuncts.rend(); ++it) {
    CQ_ASSIGN_OR_RETURN(acc, RelOp::Select(acc, *it));
  }
  return acc;
}

// ---- Rule: push selections down ----

Result<RelOpPtr> PushDownOnce(RelOpPtr plan, OptimizerStats* stats,
                              bool* changed) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, PushDownOnce(c, stats, changed));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect) return node;

  RelOpPtr child = node->children()[0];
  const ExprPtr& pred = node->predicate();
  std::set<size_t> cols = ColumnsOf(*pred);

  switch (child->kind()) {
    case RelOpKind::kJoin:
    case RelOpKind::kThetaJoin: {
      size_t nl = child->children()[0]->schema()->num_fields();
      bool left_only = true, right_only = true;
      for (size_t c : cols) {
        if (c >= nl) left_only = false;
        if (c < nl) right_only = false;
      }
      if (left_only && !cols.empty()) {
        CQ_ASSIGN_OR_RETURN(RelOpPtr pushed,
                            RelOp::Select(child->children()[0], pred));
        if (stats) stats->selections_pushed++;
        *changed = true;
        return child->WithChildren({pushed, child->children()[1]});
      }
      if (right_only && !cols.empty()) {
        Result<ExprPtr> remapped = RemapColumns(
            pred, [nl](size_t idx) -> Result<size_t> { return idx - nl; });
        if (remapped.ok()) {
          CQ_ASSIGN_OR_RETURN(
              RelOpPtr pushed,
              RelOp::Select(child->children()[1], std::move(remapped).value()));
          if (stats) stats->selections_pushed++;
          *changed = true;
          return child->WithChildren({child->children()[0], pushed});
        }
      }
      return node;
    }
    case RelOpKind::kUnion: {
      CQ_ASSIGN_OR_RETURN(RelOpPtr l,
                          RelOp::Select(child->children()[0], pred));
      CQ_ASSIGN_OR_RETURN(RelOpPtr r,
                          RelOp::Select(child->children()[1], pred));
      if (stats) stats->selections_pushed++;
      *changed = true;
      return child->WithChildren({l, r});
    }
    case RelOpKind::kProject: {
      // Pushable when every projection the predicate touches is a pure
      // column reference.
      const auto& projections = child->projections();
      Result<ExprPtr> remapped = RemapColumns(
          pred, [&projections](size_t idx) -> Result<size_t> {
            if (idx >= projections.size() ||
                projections[idx]->kind() != Expr::Kind::kColumn) {
              return Status::Unimplemented("projection is not a column");
            }
            return static_cast<const ColumnRef&>(*projections[idx]).index();
          });
      if (!remapped.ok()) return node;
      CQ_ASSIGN_OR_RETURN(
          RelOpPtr pushed,
          RelOp::Select(child->children()[0], std::move(remapped).value()));
      if (stats) stats->selections_pushed++;
      *changed = true;
      return child->WithChildren({pushed});
    }
    default:
      return node;
  }
}

// ---- Rule: extract hash equi-joins ----

bool IsJoinEquality(const Expr& e, size_t nl, size_t* left_col,
                    size_t* right_col) {
  if (e.kind() != Expr::Kind::kBinary) return false;
  const auto& b = static_cast<const BinaryExpr&>(e);
  if (b.op() != BinaryOp::kEq) return false;
  if (b.left()->kind() != Expr::Kind::kColumn ||
      b.right()->kind() != Expr::Kind::kColumn) {
    return false;
  }
  size_t a = static_cast<const ColumnRef&>(*b.left()).index();
  size_t c = static_cast<const ColumnRef&>(*b.right()).index();
  if (a < nl && c >= nl) {
    *left_col = a;
    *right_col = c - nl;
    return true;
  }
  if (c < nl && a >= nl) {
    *left_col = c;
    *right_col = a - nl;
    return true;
  }
  return false;
}

Result<RelOpPtr> ExtractEquiJoins(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, ExtractEquiJoins(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));

  // Case A: a ThetaJoin whose own predicate contains equalities.
  if (node->kind() == RelOpKind::kThetaJoin && node->predicate() != nullptr) {
    size_t nl = node->children()[0]->schema()->num_fields();
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(node->predicate(), &conjuncts);
    std::vector<size_t> lk, rk;
    std::vector<ExprPtr> residual;
    for (const auto& c : conjuncts) {
      size_t l, r;
      if (IsJoinEquality(*c, nl, &l, &r)) {
        lk.push_back(l);
        rk.push_back(r);
      } else {
        residual.push_back(c);
      }
    }
    if (!lk.empty()) {
      ExprPtr res = residual.empty() ? nullptr : AndAll(residual);
      if (stats) stats->equi_joins_extracted++;
      return RelOp::Join(node->children()[0], node->children()[1],
                         std::move(lk), std::move(rk), std::move(res));
    }
    return node;
  }

  // Case B: a selection chain whose bottom sits directly above a cross
  // ThetaJoin — join equalities may be anywhere in the chain (pushdown may
  // be disabled), so the whole chain's conjuncts are inspected.
  if (node->kind() == RelOpKind::kSelect) {
    std::vector<ExprPtr> conjuncts;
    RelOpPtr cursor = node;
    while (cursor->kind() == RelOpKind::kSelect) {
      CollectConjuncts(cursor->predicate(), &conjuncts);
      cursor = cursor->children()[0];
    }
    if (cursor->kind() != RelOpKind::kThetaJoin) return node;
    RelOpPtr join = cursor;
    size_t nl = join->children()[0]->schema()->num_fields();
    std::vector<size_t> lk, rk;
    std::vector<ExprPtr> residual;
    if (join->predicate() != nullptr) residual.push_back(join->predicate());
    for (const auto& c : conjuncts) {
      size_t l, r;
      if (IsJoinEquality(*c, nl, &l, &r)) {
        lk.push_back(l);
        rk.push_back(r);
      } else {
        residual.push_back(c);
      }
    }
    if (!lk.empty()) {
      if (stats) stats->equi_joins_extracted++;
      CQ_ASSIGN_OR_RETURN(
          RelOpPtr out,
          RelOp::Join(join->children()[0], join->children()[1], std::move(lk),
                      std::move(rk), nullptr));
      // Non-equality conjuncts stay as selections above the new join.
      for (auto it = residual.rbegin(); it != residual.rend(); ++it) {
        CQ_ASSIGN_OR_RETURN(out, RelOp::Select(out, *it));
      }
      return out;
    }
    return node;
  }
  return node;
}

// ---- Rule: redundancy elimination ----

Result<RelOpPtr> EliminateRedundancy(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, EliminateRedundancy(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));

  // Duplicate predicate in a selection chain: Select(p, Select(p, x)) ->
  // Select(p, x). Matched on printed form.
  if (node->kind() == RelOpKind::kSelect &&
      node->children()[0]->kind() == RelOpKind::kSelect) {
    if (node->predicate()->ToString() ==
        node->children()[0]->predicate()->ToString()) {
      if (stats) stats->predicates_deduped++;
      return node->children()[0];
    }
  }
  // Identity projection: Project(cols 0..n-1 in order, same arity).
  if (node->kind() == RelOpKind::kProject) {
    const auto& ps = node->projections();
    const auto& child = node->children()[0];
    bool identity = ps.size() == child->schema()->num_fields();
    for (size_t i = 0; identity && i < ps.size(); ++i) {
      identity = ps[i]->kind() == Expr::Kind::kColumn &&
                 static_cast<const ColumnRef&>(*ps[i]).index() == i;
    }
    // Only drop if names also match (otherwise the projection renames).
    if (identity && node->schema()->Equals(*child->schema())) {
      if (stats) stats->predicates_deduped++;
      return child;
    }
  }
  return node;
}

// ---- Rule: reorder selection chains by selectivity ----

Result<RelOpPtr> ReorderSelections(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, ReorderSelections(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect) return node;

  // Gather the maximal selection chain.
  std::vector<ExprPtr> preds;
  RelOpPtr cursor = node;
  while (cursor->kind() == RelOpKind::kSelect) {
    preds.push_back(cursor->predicate());
    cursor = cursor->children()[0];
  }
  if (preds.size() <= 1) return node;
  std::vector<ExprPtr> sorted = preds;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ExprPtr& a, const ExprPtr& b) {
                     return EstimateSelectivity(*a) < EstimateSelectivity(*b);
                   });
  bool same = true;
  for (size_t i = 0; i < preds.size(); ++i) {
    same = same && preds[i].get() == sorted[i].get();
  }
  if (same) return node;
  if (stats) stats->selections_reordered++;
  // Most selective evaluates first == innermost.
  RelOpPtr acc = cursor;
  for (auto it = sorted.begin(); it != sorted.end(); ++it) {
    CQ_ASSIGN_OR_RETURN(acc, RelOp::Select(acc, *it));
  }
  return acc;
}

// ---- Rule: fuse selection chains ----

Result<RelOpPtr> FuseSelections(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, FuseSelections(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect ||
      node->children()[0]->kind() != RelOpKind::kSelect) {
    return node;
  }
  // Fuse the whole chain into one conjunction (outer first => leftmost, so
  // short-circuit order preserves the reordered sequence).
  std::vector<ExprPtr> preds;
  RelOpPtr cursor = node;
  while (cursor->kind() == RelOpKind::kSelect) {
    preds.push_back(cursor->predicate());
    cursor = cursor->children()[0];
  }
  // Innermost executes first: reverse so it leads the conjunction.
  std::reverse(preds.begin(), preds.end());
  if (stats) stats->selections_fused += preds.size() - 1;
  return RelOp::Select(cursor, AndAll(preds));
}

}  // namespace

double EstimateSelectivity(const Expr& predicate) {
  switch (predicate.kind()) {
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(predicate);
      bool has_literal = b.left()->kind() == Expr::Kind::kLiteral ||
                         b.right()->kind() == Expr::Kind::kLiteral;
      switch (b.op()) {
        case BinaryOp::kEq:
          return has_literal ? 0.05 : 0.15;
        case BinaryOp::kNe:
          return 0.9;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 0.33;
        case BinaryOp::kAnd: {
          return EstimateSelectivity(*b.left()) *
                 EstimateSelectivity(*b.right());
        }
        case BinaryOp::kOr: {
          double l = EstimateSelectivity(*b.left());
          double r = EstimateSelectivity(*b.right());
          return l + r - l * r;
        }
        default:
          return 0.5;
      }
    }
    case Expr::Kind::kNot:
      return 1.0 - EstimateSelectivity(
                       *static_cast<const NotExpr&>(predicate).inner());
    case Expr::Kind::kIsNull:
      return 0.1;
    default:
      return 0.5;
  }
}

Result<RelOpPtr> OptimizePlan(RelOpPtr plan, const OptimizerOptions& options,
                              OptimizerStats* stats) {
  if (plan == nullptr) return Status::PlanError("no plan to optimise");
  if (options.separate_conjuncts) {
    CQ_ASSIGN_OR_RETURN(plan, SeparateConjuncts(plan));
  }
  if (options.push_down_selections) {
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 64) {
      changed = false;
      CQ_ASSIGN_OR_RETURN(plan, PushDownOnce(plan, stats, &changed));
    }
  }
  if (options.extract_equi_joins) {
    CQ_ASSIGN_OR_RETURN(plan, ExtractEquiJoins(plan, stats));
  }
  if (options.eliminate_redundancy) {
    CQ_ASSIGN_OR_RETURN(plan, EliminateRedundancy(plan, stats));
  }
  if (options.reorder_selections) {
    CQ_ASSIGN_OR_RETURN(plan, ReorderSelections(plan, stats));
  }
  if (options.fuse_selections) {
    CQ_ASSIGN_OR_RETURN(plan, FuseSelections(plan, stats));
  }
  return plan;
}

}  // namespace cq

#include "sql/optimizer.h"

#include <algorithm>
#include <functional>
#include <set>

#include "sql/plan_serde.h"

namespace cq {

namespace {

// ---- Expression utilities ----

void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*e);
    if (b.op() == BinaryOp::kAnd) {
      CollectConjuncts(b.left(), out);
      CollectConjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(e);
}

void CollectDisjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*e);
    if (b.op() == BinaryOp::kOr) {
      CollectDisjuncts(b.left(), out);
      CollectDisjuncts(b.right(), out);
      return;
    }
  }
  out->push_back(e);
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

ExprPtr OrAll(const std::vector<ExprPtr>& disjuncts) {
  ExprPtr acc = disjuncts[0];
  for (size_t i = 1; i < disjuncts.size(); ++i) {
    acc = Or(acc, disjuncts[i]);
  }
  return acc;
}

std::set<size_t> ColumnsOf(const Expr& e) {
  std::vector<size_t> cols;
  e.CollectColumns(&cols);
  return {cols.begin(), cols.end()};
}

/// Rebuilds an expression with column indexes remapped.
Result<ExprPtr> RemapColumns(const ExprPtr& e,
                             const std::function<Result<size_t>(size_t)>& fn) {
  switch (e->kind()) {
    case Expr::Kind::kColumn: {
      const auto& c = static_cast<const ColumnRef&>(*e);
      CQ_ASSIGN_OR_RETURN(size_t idx, fn(c.index()));
      return Col(idx, c.name());
    }
    case Expr::Kind::kLiteral:
      return e;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr l, RemapColumns(b.left(), fn));
      CQ_ASSIGN_OR_RETURN(ExprPtr r, RemapColumns(b.right(), fn));
      return Bin(b.op(), std::move(l), std::move(r));
    }
    case Expr::Kind::kNot: {
      const auto& n = static_cast<const NotExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, RemapColumns(n.inner(), fn));
      return Not(std::move(inner));
    }
    case Expr::Kind::kNeg: {
      const auto& n = static_cast<const NegExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, RemapColumns(n.inner(), fn));
      return ExprPtr(std::make_shared<NegExpr>(std::move(inner)));
    }
    case Expr::Kind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, RemapColumns(n.inner(), fn));
      return ExprPtr(std::make_shared<IsNullExpr>(std::move(inner), n.negated()));
    }
  }
  return Status::Unimplemented("remap of this expression kind");
}

/// Rebuilds an expression substituting each column reference with a full
/// expression (projection-merge composition).
Result<ExprPtr> SubstituteColumns(const ExprPtr& e,
                                  const std::vector<ExprPtr>& subs) {
  switch (e->kind()) {
    case Expr::Kind::kColumn: {
      const auto& c = static_cast<const ColumnRef&>(*e);
      if (c.index() >= subs.size()) {
        return Status::PlanError("column " + std::to_string(c.index()) +
                                 " out of range for projection merge");
      }
      return subs[c.index()];
    }
    case Expr::Kind::kLiteral:
      return e;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr l, SubstituteColumns(b.left(), subs));
      CQ_ASSIGN_OR_RETURN(ExprPtr r, SubstituteColumns(b.right(), subs));
      return Bin(b.op(), std::move(l), std::move(r));
    }
    case Expr::Kind::kNot: {
      const auto& n = static_cast<const NotExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, SubstituteColumns(n.inner(), subs));
      return Not(std::move(inner));
    }
    case Expr::Kind::kNeg: {
      const auto& n = static_cast<const NegExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, SubstituteColumns(n.inner(), subs));
      return ExprPtr(std::make_shared<NegExpr>(std::move(inner)));
    }
    case Expr::Kind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(*e);
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, SubstituteColumns(n.inner(), subs));
      return ExprPtr(std::make_shared<IsNullExpr>(std::move(inner), n.negated()));
    }
  }
  return Status::Unimplemented("substitute of this expression kind");
}

// ---- Rule: canonicalization ----
//
// A deterministic normal form: semantically-equal predicates serialize to
// identical IR text, so plan-prefix fingerprints collide exactly when the
// NiagaraCQ sharing machinery wants them to. Every rewrite below is exact
// under the engine's evaluation semantics except where noted for predicate
// context (NULL collapses to false at Select/Join boundaries).

bool IsLiteralBool(const Expr& e, bool want) {
  if (e.kind() != Expr::Kind::kLiteral) return false;
  const Value& v = static_cast<const Literal&>(e).value();
  return v.is_bool() && v.bool_value() == want;
}

bool HasColumns(const Expr& e) {
  std::vector<size_t> cols;
  e.CollectColumns(&cols);
  return !cols.empty();
}

/// Folds a column-free expression to a literal when it evaluates cleanly
/// (a column-free Eval is tuple-independent). Expressions that error — e.g.
/// 1/0 — stay unfolded so the runtime error surfaces unchanged.
ExprPtr FoldConstants(ExprPtr e, OptimizerStats* stats) {
  if (e->kind() == Expr::Kind::kLiteral ||
      e->kind() == Expr::Kind::kColumn || HasColumns(*e)) {
    return e;
  }
  Result<Value> v = e->Eval(Tuple{});
  if (!v.ok()) return e;
  if (stats != nullptr) stats->constants_folded++;
  return Lit(std::move(v).value());
}

/// Negation of a comparison operator (NOT (a < b) == a >= b: comparisons
/// yield NULL on NULL operands and NOT preserves NULL, so the rewrite is
/// exact). Returns false for non-comparison ops.
bool NegateComparison(BinaryOp op, BinaryOp* out) {
  switch (op) {
    case BinaryOp::kEq:
      *out = BinaryOp::kNe;
      return true;
    case BinaryOp::kNe:
      *out = BinaryOp::kEq;
      return true;
    case BinaryOp::kLt:
      *out = BinaryOp::kGe;
      return true;
    case BinaryOp::kLe:
      *out = BinaryOp::kGt;
      return true;
    case BinaryOp::kGt:
      *out = BinaryOp::kLe;
      return true;
    case BinaryOp::kGe:
      *out = BinaryOp::kLt;
      return true;
    default:
      return false;
  }
}

std::string Fp(const ExprPtr& e) { return SerializeExpr(*e); }

ExprPtr CanonExpr(const ExprPtr& e, bool pred_ctx, OptimizerStats* stats);

/// AND: flatten, canonicalize conjuncts, fold literals (drop TRUEs,
/// truncate after the first FALSE — short-circuit makes the tail dead),
/// dedup by fingerprint (keeping the first occurrence is exact: a repeated
/// conjunct can only re-confirm TRUE or be skipped), and — predicate
/// context only — sort by fingerprint for a canonical order.
ExprPtr CanonAnd(const ExprPtr& e, bool pred_ctx, OptimizerStats* stats) {
  std::vector<ExprPtr> raw;
  CollectConjuncts(e, &raw);
  std::vector<ExprPtr> conjuncts;
  for (const ExprPtr& c : raw) {
    // Canonicalizing a conjunct can surface new ANDs (De Morgan on a
    // negated OR); re-flatten them into the same list.
    CollectConjuncts(CanonExpr(c, pred_ctx, stats), &conjuncts);
  }
  std::vector<ExprPtr> kept;
  std::set<std::string> seen;
  for (const ExprPtr& c : conjuncts) {
    if (IsLiteralBool(*c, true)) continue;
    if (!seen.insert(Fp(c)).second) continue;
    kept.push_back(c);
    if (IsLiteralBool(*c, false)) break;  // short-circuit: tail is dead
  }
  if (kept.empty()) return Lit(Value(true));
  if (pred_ctx) {
    std::stable_sort(kept.begin(), kept.end(),
                     [](const ExprPtr& a, const ExprPtr& b) {
                       return Fp(a) < Fp(b);
                     });
  }
  return AndAll(kept);
}

/// OR: flatten, canonicalize, drop literal FALSEs, truncate after the first
/// TRUE, dedup. Never reordered: this engine NULL-poisons on the first
/// operand (`NULL OR TRUE` is NULL, `TRUE OR NULL` is TRUE), so disjunct
/// order is observable even under predicate collapse.
ExprPtr CanonOr(const ExprPtr& e, bool pred_ctx, OptimizerStats* stats) {
  std::vector<ExprPtr> raw;
  CollectDisjuncts(e, &raw);
  std::vector<ExprPtr> disjuncts;
  for (const ExprPtr& d : raw) {
    CollectDisjuncts(CanonExpr(d, pred_ctx, stats), &disjuncts);
  }
  std::vector<ExprPtr> kept;
  std::set<std::string> seen;
  for (const ExprPtr& d : disjuncts) {
    if (IsLiteralBool(*d, false)) continue;
    if (!seen.insert(Fp(d)).second) continue;
    kept.push_back(d);
    if (IsLiteralBool(*d, true)) break;  // short-circuit: tail is dead
  }
  if (kept.empty()) return Lit(Value(false));
  return OrAll(kept);
}

ExprPtr CanonNot(const NotExpr& n, bool pred_ctx, OptimizerStats* stats) {
  const ExprPtr& inner = n.inner();
  // NOT NOT x -> x collapses a TypeError on non-BOOL x, so it is gated to
  // predicate context where the planner guarantees boolean typing.
  if (pred_ctx && inner->kind() == Expr::Kind::kNot) {
    return CanonExpr(static_cast<const NotExpr&>(*inner).inner(), pred_ctx,
                     stats);
  }
  if (inner->kind() == Expr::Kind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(*inner);
    BinaryOp neg;
    if (NegateComparison(b.op(), &neg)) {
      return CanonExpr(Bin(neg, b.left(), b.right()), pred_ctx, stats);
    }
    // De Morgan, exact both directions under first-operand short-circuit.
    if (b.op() == BinaryOp::kAnd) {
      return CanonExpr(Or(Not(b.left()), Not(b.right())), pred_ctx, stats);
    }
    if (b.op() == BinaryOp::kOr) {
      return CanonExpr(And(Not(b.left()), Not(b.right())), pred_ctx, stats);
    }
  }
  if (inner->kind() == Expr::Kind::kIsNull) {
    const auto& is = static_cast<const IsNullExpr&>(*inner);
    return CanonExpr(
        std::make_shared<IsNullExpr>(is.inner(), !is.negated()), pred_ctx,
        stats);
  }
  return FoldConstants(Not(CanonExpr(inner, pred_ctx, stats)), stats);
}

ExprPtr CanonExpr(const ExprPtr& e, bool pred_ctx, OptimizerStats* stats) {
  switch (e->kind()) {
    case Expr::Kind::kColumn: {
      const auto& c = static_cast<const ColumnRef&>(*e);
      // Display names ("L.a", "price") vary across textually-different but
      // equal queries; the canonical rendering is positional with an empty
      // display name.
      if (c.name().empty()) return e;
      return Col(c.index());
    }
    case Expr::Kind::kLiteral:
      return e;
    case Expr::Kind::kNot:
      return CanonNot(static_cast<const NotExpr&>(*e), pred_ctx, stats);
    case Expr::Kind::kNeg: {
      const auto& n = static_cast<const NegExpr&>(*e);
      return FoldConstants(std::make_shared<NegExpr>(CanonExpr(
                               n.inner(), /*pred_ctx=*/false, stats)),
                           stats);
    }
    case Expr::Kind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(*e);
      return FoldConstants(
          std::make_shared<IsNullExpr>(
              CanonExpr(n.inner(), /*pred_ctx=*/false, stats), n.negated()),
          stats);
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      switch (b.op()) {
        case BinaryOp::kAnd:
          return FoldConstants(CanonAnd(e, pred_ctx, stats), stats);
        case BinaryOp::kOr:
          return FoldConstants(CanonOr(e, pred_ctx, stats), stats);
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          ExprPtr l = CanonExpr(b.left(), /*pred_ctx=*/false, stats);
          ExprPtr r = CanonExpr(b.right(), /*pred_ctx=*/false, stats);
          BinaryOp op = b.op();
          // Direction normalization: render every inequality as < / <=
          // (a > b == b < a exactly; comparisons evaluate both operands).
          if (op == BinaryOp::kGt) {
            std::swap(l, r);
            op = BinaryOp::kLt;
          } else if (op == BinaryOp::kGe) {
            std::swap(l, r);
            op = BinaryOp::kLe;
          }
          // Symmetric operators order operands by fingerprint.
          if ((op == BinaryOp::kEq || op == BinaryOp::kNe) && Fp(l) > Fp(r)) {
            std::swap(l, r);
          }
          return FoldConstants(Bin(op, std::move(l), std::move(r)), stats);
        }
        case BinaryOp::kMul: {
          // Numeric-only, hence commutative; + is excluded (string concat).
          ExprPtr l = CanonExpr(b.left(), /*pred_ctx=*/false, stats);
          ExprPtr r = CanonExpr(b.right(), /*pred_ctx=*/false, stats);
          if (Fp(l) > Fp(r)) std::swap(l, r);
          return FoldConstants(Bin(BinaryOp::kMul, std::move(l), std::move(r)),
                               stats);
        }
        default: {
          ExprPtr l = CanonExpr(b.left(), /*pred_ctx=*/false, stats);
          ExprPtr r = CanonExpr(b.right(), /*pred_ctx=*/false, stats);
          return FoldConstants(Bin(b.op(), std::move(l), std::move(r)),
                               stats);
        }
      }
    }
  }
  return e;
}

ExprPtr CanonTracked(const ExprPtr& e, bool pred_ctx, OptimizerStats* stats) {
  ExprPtr canon = CanonExpr(e, pred_ctx, stats);
  if (stats != nullptr && Fp(canon) != Fp(e)) stats->exprs_canonicalized++;
  return canon;
}

Result<RelOpPtr> CanonicalizePlan(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, CanonicalizePlan(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  switch (node->kind()) {
    case RelOpKind::kSelect: {
      ExprPtr p = CanonTracked(node->predicate(), /*pred_ctx=*/true, stats);
      // A predicate folded to TRUE keeps every tuple: drop the node.
      if (IsLiteralBool(*p, true)) return node->children()[0];
      return RelOp::Select(node->children()[0], std::move(p));
    }
    case RelOpKind::kThetaJoin: {
      if (node->predicate() == nullptr) return node;
      ExprPtr p = CanonTracked(node->predicate(), /*pred_ctx=*/true, stats);
      if (IsLiteralBool(*p, true)) p = nullptr;  // cross product
      return RelOp::ThetaJoin(node->children()[0], node->children()[1],
                              std::move(p));
    }
    case RelOpKind::kJoin: {
      if (node->predicate() == nullptr) return node;
      ExprPtr p = CanonTracked(node->predicate(), /*pred_ctx=*/true, stats);
      if (IsLiteralBool(*p, true)) p = nullptr;
      return RelOp::Join(node->children()[0], node->children()[1],
                         node->left_keys(), node->right_keys(), std::move(p));
    }
    case RelOpKind::kProject: {
      std::vector<ExprPtr> exprs;
      exprs.reserve(node->projections().size());
      for (const ExprPtr& p : node->projections()) {
        exprs.push_back(CanonTracked(p, /*pred_ctx=*/false, stats));
      }
      return RelOp::Project(node->children()[0], std::move(exprs),
                            node->schema()->fields());
    }
    case RelOpKind::kAggregate: {
      std::vector<AggSpec> aggs = node->aggs();
      for (AggSpec& a : aggs) {
        if (a.input != nullptr) {
          a.input = CanonTracked(a.input, /*pred_ctx=*/false, stats);
        }
      }
      return RelOp::Aggregate(node->children()[0], node->group_indexes(),
                              std::move(aggs));
    }
    default:
      return node;
  }
}

// ---- Rule: push selections down ----

Result<RelOpPtr> TryPushInto(const RelOpPtr& child, const ExprPtr& pred,
                             OptimizerStats* stats);

Result<RelOpPtr> PushDownOnce(RelOpPtr plan, OptimizerStats* stats,
                              bool* changed) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, PushDownOnce(c, stats, changed));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect) return node;

  // Look through any inner selection chain: selections over the same schema
  // commute (canonical conjunct ordering can park a non-pushable join
  // equality below a pushable side predicate), so the push target is the
  // chain's base.
  std::vector<ExprPtr> inner_chain;
  RelOpPtr base = node->children()[0];
  while (base->kind() == RelOpKind::kSelect) {
    inner_chain.push_back(base->predicate());
    base = base->children()[0];
  }
  CQ_ASSIGN_OR_RETURN(RelOpPtr pushed,
                      TryPushInto(base, node->predicate(), stats));
  if (pushed == nullptr) return node;
  *changed = true;
  RelOpPtr acc = std::move(pushed);
  for (auto it = inner_chain.rbegin(); it != inner_chain.rend(); ++it) {
    CQ_ASSIGN_OR_RETURN(acc, RelOp::Select(acc, *it));
  }
  return acc;
}

// ---- Rule: separate conjunctive selections ----

Result<RelOpPtr> SeparateConjuncts(RelOpPtr plan) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, SeparateConjuncts(c));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect) return node;
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(node->predicate(), &conjuncts);
  if (conjuncts.size() <= 1) return node;
  RelOpPtr acc = node->children()[0];
  // Innermost applies the last conjunct; order preserved overall.
  for (auto it = conjuncts.rbegin(); it != conjuncts.rend(); ++it) {
    CQ_ASSIGN_OR_RETURN(acc, RelOp::Select(acc, *it));
  }
  return acc;
}

// ---- Rule: push selections down ----

/// Attempts to push `pred` into `child`. Returns the rebuilt child on
/// success, nullptr when `pred` cannot move through this operator kind.
Result<RelOpPtr> TryPushInto(const RelOpPtr& child, const ExprPtr& pred,
                             OptimizerStats* stats) {
  std::set<size_t> cols = ColumnsOf(*pred);
  switch (child->kind()) {
    case RelOpKind::kJoin:
    case RelOpKind::kThetaJoin: {
      size_t nl = child->children()[0]->schema()->num_fields();
      bool left_only = true, right_only = true;
      for (size_t c : cols) {
        if (c >= nl) left_only = false;
        if (c < nl) right_only = false;
      }
      if (left_only && !cols.empty()) {
        CQ_ASSIGN_OR_RETURN(RelOpPtr pushed,
                            RelOp::Select(child->children()[0], pred));
        if (stats) stats->selections_pushed++;
        return child->WithChildren({pushed, child->children()[1]});
      }
      if (right_only && !cols.empty()) {
        Result<ExprPtr> remapped = RemapColumns(
            pred, [nl](size_t idx) -> Result<size_t> { return idx - nl; });
        if (remapped.ok()) {
          CQ_ASSIGN_OR_RETURN(
              RelOpPtr pushed,
              RelOp::Select(child->children()[1], std::move(remapped).value()));
          if (stats) stats->selections_pushed++;
          return child->WithChildren({child->children()[0], pushed});
        }
      }
      return RelOpPtr(nullptr);
    }
    case RelOpKind::kUnion: {
      CQ_ASSIGN_OR_RETURN(RelOpPtr l,
                          RelOp::Select(child->children()[0], pred));
      CQ_ASSIGN_OR_RETURN(RelOpPtr r,
                          RelOp::Select(child->children()[1], pred));
      if (stats) stats->selections_pushed++;
      return child->WithChildren({l, r});
    }
    case RelOpKind::kExcept:
    case RelOpKind::kIntersect: {
      // Exact for bags: sigma(A - B) == sigma(A) - sigma(B) and
      // sigma(A ^ B) == sigma(A) ^ sigma(B) — multiplicities of a tuple t
      // pass or are zeroed on both sides together.
      CQ_ASSIGN_OR_RETURN(RelOpPtr l,
                          RelOp::Select(child->children()[0], pred));
      CQ_ASSIGN_OR_RETURN(RelOpPtr r,
                          RelOp::Select(child->children()[1], pred));
      if (stats) stats->selections_pushed++;
      return child->WithChildren({l, r});
    }
    case RelOpKind::kDistinct: {
      CQ_ASSIGN_OR_RETURN(RelOpPtr pushed,
                          RelOp::Select(child->children()[0], pred));
      if (stats) stats->selections_pushed++;
      return child->WithChildren({pushed});
    }
    case RelOpKind::kAggregate: {
      // Pushable when the predicate touches only group-key output columns:
      // filtering whole groups after aggregation equals filtering their
      // rows before it (a group survives iff its key passes).
      const auto& groups = child->group_indexes();
      bool keys_only = !cols.empty();
      for (size_t c : cols) keys_only = keys_only && c < groups.size();
      if (!keys_only) return RelOpPtr(nullptr);
      Result<ExprPtr> remapped = RemapColumns(
          pred, [&groups](size_t idx) -> Result<size_t> {
            return groups[idx];
          });
      if (!remapped.ok()) return RelOpPtr(nullptr);
      CQ_ASSIGN_OR_RETURN(
          RelOpPtr pushed,
          RelOp::Select(child->children()[0], std::move(remapped).value()));
      if (stats) stats->selections_pushed++;
      return child->WithChildren({pushed});
    }
    case RelOpKind::kProject: {
      // Pushable when every projection the predicate touches is a pure
      // column reference.
      const auto& projections = child->projections();
      Result<ExprPtr> remapped = RemapColumns(
          pred, [&projections](size_t idx) -> Result<size_t> {
            if (idx >= projections.size() ||
                projections[idx]->kind() != Expr::Kind::kColumn) {
              return Status::Unimplemented("projection is not a column");
            }
            return static_cast<const ColumnRef&>(*projections[idx]).index();
          });
      if (!remapped.ok()) return RelOpPtr(nullptr);
      CQ_ASSIGN_OR_RETURN(
          RelOpPtr pushed,
          RelOp::Select(child->children()[0], std::move(remapped).value()));
      if (stats) stats->selections_pushed++;
      return child->WithChildren({pushed});
    }
    default:
      return RelOpPtr(nullptr);
  }
}

// ---- Rule: extract hash equi-joins ----

bool IsJoinEquality(const Expr& e, size_t nl, size_t* left_col,
                    size_t* right_col) {
  if (e.kind() != Expr::Kind::kBinary) return false;
  const auto& b = static_cast<const BinaryExpr&>(e);
  if (b.op() != BinaryOp::kEq) return false;
  if (b.left()->kind() != Expr::Kind::kColumn ||
      b.right()->kind() != Expr::Kind::kColumn) {
    return false;
  }
  size_t a = static_cast<const ColumnRef&>(*b.left()).index();
  size_t c = static_cast<const ColumnRef&>(*b.right()).index();
  if (a < nl && c >= nl) {
    *left_col = a;
    *right_col = c - nl;
    return true;
  }
  if (c < nl && a >= nl) {
    *left_col = c;
    *right_col = a - nl;
    return true;
  }
  return false;
}

Result<RelOpPtr> ExtractEquiJoins(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, ExtractEquiJoins(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));

  // Case A: a ThetaJoin whose own predicate contains equalities.
  if (node->kind() == RelOpKind::kThetaJoin && node->predicate() != nullptr) {
    size_t nl = node->children()[0]->schema()->num_fields();
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(node->predicate(), &conjuncts);
    std::vector<size_t> lk, rk;
    std::vector<ExprPtr> residual;
    for (const auto& c : conjuncts) {
      size_t l, r;
      if (IsJoinEquality(*c, nl, &l, &r)) {
        lk.push_back(l);
        rk.push_back(r);
      } else {
        residual.push_back(c);
      }
    }
    if (!lk.empty()) {
      ExprPtr res = residual.empty() ? nullptr : AndAll(residual);
      if (stats) stats->equi_joins_extracted++;
      return RelOp::Join(node->children()[0], node->children()[1],
                         std::move(lk), std::move(rk), std::move(res));
    }
    return node;
  }

  // Case B: a selection chain whose bottom sits directly above a cross
  // ThetaJoin — join equalities may be anywhere in the chain (pushdown may
  // be disabled), so the whole chain's conjuncts are inspected.
  if (node->kind() == RelOpKind::kSelect) {
    std::vector<ExprPtr> conjuncts;
    RelOpPtr cursor = node;
    while (cursor->kind() == RelOpKind::kSelect) {
      CollectConjuncts(cursor->predicate(), &conjuncts);
      cursor = cursor->children()[0];
    }
    if (cursor->kind() != RelOpKind::kThetaJoin) return node;
    RelOpPtr join = cursor;
    size_t nl = join->children()[0]->schema()->num_fields();
    std::vector<size_t> lk, rk;
    std::vector<ExprPtr> residual;
    if (join->predicate() != nullptr) residual.push_back(join->predicate());
    for (const auto& c : conjuncts) {
      size_t l, r;
      if (IsJoinEquality(*c, nl, &l, &r)) {
        lk.push_back(l);
        rk.push_back(r);
      } else {
        residual.push_back(c);
      }
    }
    if (!lk.empty()) {
      if (stats) stats->equi_joins_extracted++;
      CQ_ASSIGN_OR_RETURN(
          RelOpPtr out,
          RelOp::Join(join->children()[0], join->children()[1], std::move(lk),
                      std::move(rk), nullptr));
      // Non-equality conjuncts stay as selections above the new join.
      for (auto it = residual.rbegin(); it != residual.rend(); ++it) {
        CQ_ASSIGN_OR_RETURN(out, RelOp::Select(out, *it));
      }
      return out;
    }
    return node;
  }
  return node;
}

// ---- Rule: merge adjacent projections ----

Result<RelOpPtr> MergeProjections(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, MergeProjections(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  while (node->kind() == RelOpKind::kProject &&
         node->children()[0]->kind() == RelOpKind::kProject) {
    const RelOpPtr& inner = node->children()[0];
    std::vector<ExprPtr> merged;
    merged.reserve(node->projections().size());
    bool ok = true;
    for (const ExprPtr& p : node->projections()) {
      Result<ExprPtr> sub = SubstituteColumns(p, inner->projections());
      if (!sub.ok()) {
        ok = false;
        break;
      }
      merged.push_back(std::move(sub).value());
    }
    if (!ok) break;
    CQ_ASSIGN_OR_RETURN(node,
                        RelOp::Project(inner->children()[0], std::move(merged),
                                       node->schema()->fields()));
    if (stats) stats->projections_merged++;
  }
  return node;
}

// ---- Rule: choose hash-join inputs ----

/// Estimated fraction of base rows surviving a branch: the product of its
/// selection predicates' selectivities (hints-aware). Lower = smaller input.
double BranchWeight(const RelOpPtr& op, const SelectivityHints& hints) {
  double w = op->kind() == RelOpKind::kSelect
                 ? EstimateSelectivity(*op->predicate(), hints)
                 : 1.0;
  for (const auto& c : op->children()) w *= BranchWeight(c, hints);
  return w;
}

Result<RelOpPtr> ChooseJoinInputs(RelOpPtr plan, const SelectivityHints& hints,
                                  OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, ChooseJoinInputs(c, hints, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kJoin) return node;

  const RelOpPtr& left = node->children()[0];
  const RelOpPtr& right = node->children()[1];
  // The more-selective (estimated smaller) side becomes the left/build
  // input; its index stays small and high-rate deltas from the big side
  // probe it.
  if (BranchWeight(right, hints) >= BranchWeight(left, hints)) return node;

  const size_t nl = left->schema()->num_fields();
  const size_t nr = right->schema()->num_fields();
  ExprPtr residual = node->predicate();
  if (residual != nullptr) {
    Result<ExprPtr> remapped = RemapColumns(
        residual, [nl, nr](size_t idx) -> Result<size_t> {
          return idx < nl ? idx + nr : idx - nl;
        });
    if (!remapped.ok()) return node;  // conservatively keep the orientation
    residual = std::move(remapped).value();
  }
  CQ_ASSIGN_OR_RETURN(RelOpPtr swapped,
                      RelOp::Join(right, left, node->right_keys(),
                                  node->left_keys(), std::move(residual)));
  // Compensating projection restores the original column order, so the
  // swap is invisible to everything downstream (bit-identical schema).
  std::vector<ExprPtr> exprs;
  exprs.reserve(nl + nr);
  for (size_t i = 0; i < nl + nr; ++i) {
    exprs.push_back(Col(i < nl ? nr + i : i - nl));
  }
  if (stats) stats->join_inputs_swapped++;
  return RelOp::Project(std::move(swapped), std::move(exprs),
                        node->schema()->fields());
}

// ---- Rule: redundancy elimination ----

Result<RelOpPtr> EliminateRedundancy(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, EliminateRedundancy(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));

  // Duplicate predicate in a selection chain: Select(p, Select(p, x)) ->
  // Select(p, x). Matched on printed form.
  if (node->kind() == RelOpKind::kSelect &&
      node->children()[0]->kind() == RelOpKind::kSelect) {
    if (node->predicate()->ToString() ==
        node->children()[0]->predicate()->ToString()) {
      if (stats) stats->predicates_deduped++;
      return node->children()[0];
    }
  }
  // Identity projection: Project(cols 0..n-1 in order, same arity).
  if (node->kind() == RelOpKind::kProject) {
    const auto& ps = node->projections();
    const auto& child = node->children()[0];
    bool identity = ps.size() == child->schema()->num_fields();
    for (size_t i = 0; identity && i < ps.size(); ++i) {
      identity = ps[i]->kind() == Expr::Kind::kColumn &&
                 static_cast<const ColumnRef&>(*ps[i]).index() == i;
    }
    // Only drop if names also match (otherwise the projection renames).
    if (identity && node->schema()->Equals(*child->schema())) {
      if (stats) stats->predicates_deduped++;
      return child;
    }
  }
  return node;
}

// ---- Rule: reorder selection chains by selectivity ----

Result<RelOpPtr> ReorderSelections(RelOpPtr plan, const SelectivityHints& hints,
                                   OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, ReorderSelections(c, hints, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect) return node;

  // Gather the maximal selection chain.
  std::vector<ExprPtr> preds;
  RelOpPtr cursor = node;
  while (cursor->kind() == RelOpKind::kSelect) {
    preds.push_back(cursor->predicate());
    cursor = cursor->children()[0];
  }
  if (preds.size() <= 1) return node;
  // Sort by estimated clause weight; ties break on fingerprint text so
  // equal-weight chains land in one canonical order across queries.
  struct Keyed {
    ExprPtr pred;
    double weight;
    std::string fp;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(preds.size());
  for (const ExprPtr& p : preds) {
    keyed.push_back({p, EstimateSelectivity(*p, hints), Fp(p)});
  }
  std::vector<Keyed> sorted = keyed;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.weight != b.weight) return a.weight < b.weight;
                     return a.fp < b.fp;
                   });
  // `keyed` lists the chain top-down (outermost first); the target order is
  // most-selective innermost, i.e. `sorted` reversed.
  bool same = true;
  for (size_t i = 0; i < keyed.size(); ++i) {
    same = same &&
           keyed[i].pred.get() == sorted[sorted.size() - 1 - i].pred.get();
  }
  if (same) return node;
  if (stats) stats->selections_reordered++;
  // Most selective evaluates first == innermost.
  RelOpPtr acc = cursor;
  for (auto it = sorted.begin(); it != sorted.end(); ++it) {
    CQ_ASSIGN_OR_RETURN(acc, RelOp::Select(acc, it->pred));
  }
  return acc;
}

// ---- Rule: fuse selection chains ----

Result<RelOpPtr> FuseSelections(RelOpPtr plan, OptimizerStats* stats) {
  std::vector<RelOpPtr> children;
  for (const auto& c : plan->children()) {
    CQ_ASSIGN_OR_RETURN(RelOpPtr nc, FuseSelections(c, stats));
    children.push_back(std::move(nc));
  }
  RelOpPtr node = plan->WithChildren(std::move(children));
  if (node->kind() != RelOpKind::kSelect ||
      node->children()[0]->kind() != RelOpKind::kSelect) {
    return node;
  }
  // Fuse the whole chain into one conjunction (outer first => leftmost, so
  // short-circuit order preserves the reordered sequence).
  std::vector<ExprPtr> preds;
  RelOpPtr cursor = node;
  while (cursor->kind() == RelOpKind::kSelect) {
    preds.push_back(cursor->predicate());
    cursor = cursor->children()[0];
  }
  // Innermost executes first: reverse so it leads the conjunction.
  std::reverse(preds.begin(), preds.end());
  if (stats) stats->selections_fused += preds.size() - 1;
  return RelOp::Select(cursor, AndAll(preds));
}

double EstimateSelectivityImpl(const Expr& predicate,
                               const SelectivityHints& hints) {
  if (!hints.empty()) {
    auto it = hints.find(SerializeExpr(predicate));
    if (it != hints.end()) {
      return std::min(1.0, std::max(0.0, it->second));
    }
  }
  switch (predicate.kind()) {
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(predicate);
      bool has_literal = b.left()->kind() == Expr::Kind::kLiteral ||
                         b.right()->kind() == Expr::Kind::kLiteral;
      switch (b.op()) {
        case BinaryOp::kEq:
          return has_literal ? 0.05 : 0.15;
        case BinaryOp::kNe:
          return 0.9;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return 0.33;
        case BinaryOp::kAnd: {
          return EstimateSelectivityImpl(*b.left(), hints) *
                 EstimateSelectivityImpl(*b.right(), hints);
        }
        case BinaryOp::kOr: {
          double l = EstimateSelectivityImpl(*b.left(), hints);
          double r = EstimateSelectivityImpl(*b.right(), hints);
          return l + r - l * r;
        }
        default:
          return 0.5;
      }
    }
    case Expr::Kind::kNot:
      return 1.0 -
             EstimateSelectivityImpl(
                 *static_cast<const NotExpr&>(predicate).inner(), hints);
    case Expr::Kind::kIsNull:
      return 0.1;
    default:
      return 0.5;
  }
}

}  // namespace

double EstimateSelectivity(const Expr& predicate) {
  static const SelectivityHints kNoHints;
  return EstimateSelectivityImpl(predicate, kNoHints);
}

double EstimateSelectivity(const Expr& predicate,
                           const SelectivityHints& hints) {
  return EstimateSelectivityImpl(predicate, hints);
}

ExprPtr CanonicalizePredicate(const ExprPtr& expr, OptimizerStats* stats) {
  return CanonTracked(expr, /*pred_ctx=*/true, stats);
}

ExprPtr CanonicalizeValueExpr(const ExprPtr& expr, OptimizerStats* stats) {
  return CanonTracked(expr, /*pred_ctx=*/false, stats);
}

const std::vector<std::string>& OptimizerRuleNames() {
  static const std::vector<std::string> kNames = {
      "canonicalize", "separate", "pushdown",  "equijoin",   "redundancy",
      "reorder",      "fuse",     "mergeproj", "joininputs",
  };
  return kNames;
}

namespace {

Status ApplyRuleToken(OptimizerOptions* o, const std::string& name,
                      bool value) {
  if (name == "canonicalize") {
    o->canonicalize = value;
  } else if (name == "separate") {
    o->separate_conjuncts = value;
  } else if (name == "pushdown") {
    o->push_down_selections = value;
  } else if (name == "equijoin") {
    o->extract_equi_joins = value;
  } else if (name == "redundancy") {
    o->eliminate_redundancy = value;
  } else if (name == "reorder") {
    o->reorder_selections = value;
  } else if (name == "fuse") {
    o->fuse_selections = value;
  } else if (name == "mergeproj") {
    o->merge_projections = value;
  } else if (name == "joininputs") {
    o->choose_join_inputs = value;
  } else {
    return Status::InvalidArgument("unknown optimizer rule '" + name + "'");
  }
  return Status::OK();
}

void SetAllRules(OptimizerOptions* o, bool value) {
  for (const std::string& name : OptimizerRuleNames()) {
    (void)ApplyRuleToken(o, name, value);
  }
}

}  // namespace

Result<OptimizerOptions> OptimizerOptionsFromSpec(const std::string& spec) {
  OptimizerOptions options;  // defaults: everything on
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : spec) {
    if (c == ',') {
      tokens.push_back(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur += c;
    }
  }
  tokens.push_back(cur);
  bool first = true;
  for (const std::string& token : tokens) {
    if (token.empty()) continue;
    if (token == "all") {
      SetAllRules(&options, true);
    } else if (token == "none") {
      SetAllRules(&options, false);
    } else if (token[0] == '+' || token[0] == '-') {
      CQ_RETURN_NOT_OK(
          ApplyRuleToken(&options, token.substr(1), token[0] == '+'));
    } else {
      // A bare rule name as the first token is the each-rule-solo form:
      // start from all-off, enable the listed rules.
      if (first) SetAllRules(&options, false);
      CQ_RETURN_NOT_OK(ApplyRuleToken(&options, token, true));
    }
    first = false;
  }
  return options;
}

Result<RelOpPtr> OptimizePlan(RelOpPtr plan, const OptimizerOptions& options,
                              OptimizerStats* stats) {
  if (plan == nullptr) return Status::PlanError("no plan to optimise");
  if (options.canonicalize) {
    CQ_ASSIGN_OR_RETURN(plan, CanonicalizePlan(plan, stats));
  }
  if (options.separate_conjuncts) {
    CQ_ASSIGN_OR_RETURN(plan, SeparateConjuncts(plan));
  }
  if (options.push_down_selections) {
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 64) {
      changed = false;
      CQ_ASSIGN_OR_RETURN(plan, PushDownOnce(plan, stats, &changed));
    }
  }
  if (options.extract_equi_joins) {
    CQ_ASSIGN_OR_RETURN(plan, ExtractEquiJoins(plan, stats));
  }
  if (options.choose_join_inputs) {
    CQ_ASSIGN_OR_RETURN(
        plan, ChooseJoinInputs(plan, options.selectivity_hints, stats));
  }
  if (options.merge_projections) {
    CQ_ASSIGN_OR_RETURN(plan, MergeProjections(plan, stats));
  }
  if (options.eliminate_redundancy) {
    CQ_ASSIGN_OR_RETURN(plan, EliminateRedundancy(plan, stats));
  }
  if (options.reorder_selections) {
    CQ_ASSIGN_OR_RETURN(
        plan, ReorderSelections(plan, options.selectivity_hints, stats));
  }
  if (options.fuse_selections) {
    CQ_ASSIGN_OR_RETURN(plan, FuseSelections(plan, stats));
  }
  return plan;
}

}  // namespace cq

#include "sql/parser.h"

#include "sql/lexer.h"

namespace cq {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstSelect> ParseSelect();
  Result<AstQuery> ParseCompound();
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Status ExpectEnd() {
    if (!At().IsSymbol("") && At().type != TokenType::kEnd) {
      return Error("trailing input");
    }
    return Status::OK();
  }

 private:
  const Token& At() const { return tokens_[pos_]; }
  const Token& Ahead(size_t k) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (At().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeSymbol(const std::string& s) {
    if (At().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(At().position) + " ('" +
                              At().text + "')");
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (At().type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + what);
    }
    std::string name = At().text;
    Advance();
    return name;
  }

  Result<AstSelect> ParseSelectBody();
  Result<bool> ParseEmit(R2SKind* emit);  // true when an EMIT was consumed
  Result<Duration> ParseDuration();
  Result<AstWindow> ParseWindow();
  Result<AstTableRef> ParseTableRef();
  Result<AstSelectItem> ParseSelectItem();
  Result<AstExprPtr> ParseOr();
  Result<AstExprPtr> ParseAnd();
  Result<AstExprPtr> ParseNot();
  Result<AstExprPtr> ParseComparison();
  Result<AstExprPtr> ParseAdditive();
  Result<AstExprPtr> ParseMultiplicative();
  Result<AstExprPtr> ParsePrimary();
  Result<AstExprPtr> ParseColumnRef();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Duration> Parser::ParseDuration() {
  if (At().type != TokenType::kIntLiteral) {
    return Error("expected a duration");
  }
  Duration base = std::stoll(At().text);
  Advance();
  Duration scale = 1;
  if (At().IsKeyword("MILLISECONDS")) {
    scale = 1;
    Advance();
  } else if (At().IsKeyword("SECOND") || At().IsKeyword("SECONDS")) {
    scale = 1000;
    Advance();
  } else if (At().IsKeyword("MINUTE") || At().IsKeyword("MINUTES")) {
    scale = 60 * 1000;
    Advance();
  } else if (At().IsKeyword("HOUR") || At().IsKeyword("HOURS")) {
    scale = 60 * 60 * 1000;
    Advance();
  }
  return base * scale;
}

Result<AstWindow> Parser::ParseWindow() {
  AstWindow w;
  if (!ConsumeSymbol("[")) return w;  // default: unbounded
  if (ConsumeKeyword("RANGE")) {
    if (ConsumeKeyword("UNBOUNDED")) {
      w.kind = AstWindow::Kind::kUnbounded;
    } else {
      w.kind = AstWindow::Kind::kRange;
      CQ_ASSIGN_OR_RETURN(w.range, ParseDuration());
      if (ConsumeKeyword("SLIDE")) {
        CQ_ASSIGN_OR_RETURN(w.slide, ParseDuration());
      }
    }
  } else if (ConsumeKeyword("ROWS")) {
    w.kind = AstWindow::Kind::kRows;
    if (At().type != TokenType::kIntLiteral) return Error("expected ROWS n");
    w.rows = std::stoll(At().text);
    Advance();
  } else if (ConsumeKeyword("NOW")) {
    w.kind = AstWindow::Kind::kNow;
  } else if (ConsumeKeyword("UNBOUNDED")) {
    w.kind = AstWindow::Kind::kUnbounded;
  } else if (ConsumeKeyword("PARTITION")) {
    if (!ConsumeKeyword("BY")) return Error("expected PARTITION BY");
    w.kind = AstWindow::Kind::kPartitionedRows;
    do {
      CQ_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
      // Allow qualified partition columns q.c.
      if (ConsumeSymbol(".")) {
        CQ_ASSIGN_OR_RETURN(std::string col2, ExpectIdentifier("column"));
        col += "." + col2;
      }
      w.partition_columns.push_back(std::move(col));
    } while (ConsumeSymbol(","));
    if (!ConsumeKeyword("ROWS")) return Error("expected ROWS after PARTITION");
    if (At().type != TokenType::kIntLiteral) return Error("expected ROWS n");
    w.rows = std::stoll(At().text);
    Advance();
  } else {
    return Error("expected a window specification");
  }
  if (!ConsumeSymbol("]")) return Error("expected ']' closing window");
  return w;
}

Result<AstTableRef> Parser::ParseTableRef() {
  AstTableRef ref;
  CQ_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("stream name"));
  if (At().type == TokenType::kIdentifier) {
    ref.alias = At().text;
    Advance();
  } else {
    ref.alias = ref.name;
  }
  CQ_ASSIGN_OR_RETURN(ref.window, ParseWindow());
  return ref;
}

Result<AstExprPtr> Parser::ParseColumnRef() {
  auto e = std::make_shared<AstExpr>();
  e->kind = AstExpr::Kind::kColumn;
  CQ_ASSIGN_OR_RETURN(e->column, ExpectIdentifier("column"));
  if (ConsumeSymbol(".")) {
    e->qualifier = e->column;
    CQ_ASSIGN_OR_RETURN(e->column, ExpectIdentifier("column"));
  }
  return e;
}

Result<AstExprPtr> Parser::ParsePrimary() {
  // Aggregates.
  for (const char* kw : {"COUNT", "SUM", "MIN", "MAX", "AVG"}) {
    if (At().IsKeyword(kw)) {
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExpr::Kind::kAggregate;
      if (At().IsKeyword("COUNT")) e->agg_kind = AggregateKind::kCount;
      if (At().IsKeyword("SUM")) e->agg_kind = AggregateKind::kSum;
      if (At().IsKeyword("MIN")) e->agg_kind = AggregateKind::kMin;
      if (At().IsKeyword("MAX")) e->agg_kind = AggregateKind::kMax;
      if (At().IsKeyword("AVG")) e->agg_kind = AggregateKind::kAvg;
      Advance();
      if (!ConsumeSymbol("(")) return Error("expected '(' after aggregate");
      if (ConsumeSymbol("*")) {
        e->agg_star = true;
      } else {
        CQ_ASSIGN_OR_RETURN(e->left, ParseExpr());
      }
      if (!ConsumeSymbol(")")) return Error("expected ')' after aggregate");
      return e;
    }
  }
  if (ConsumeSymbol("(")) {
    CQ_ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
    if (!ConsumeSymbol(")")) return Error("expected ')'");
    return inner;
  }
  if (At().type == TokenType::kIntLiteral) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kLiteral;
    e->literal = Value(static_cast<int64_t>(std::stoll(At().text)));
    Advance();
    return e;
  }
  if (At().type == TokenType::kDoubleLiteral) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kLiteral;
    e->literal = Value(std::stod(At().text));
    Advance();
    return e;
  }
  if (At().type == TokenType::kStringLiteral) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kLiteral;
    e->literal = Value(At().text);
    Advance();
    return e;
  }
  if (ConsumeKeyword("TRUE")) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kLiteral;
    e->literal = Value(true);
    return e;
  }
  if (ConsumeKeyword("FALSE")) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kLiteral;
    e->literal = Value(false);
    return e;
  }
  if (ConsumeKeyword("NULL")) {
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kLiteral;
    e->literal = Value::Null();
    return e;
  }
  if (ConsumeSymbol("-")) {
    // Negative literal / negation folded as 0 - expr.
    CQ_ASSIGN_OR_RETURN(AstExprPtr inner, ParsePrimary());
    auto zero = std::make_shared<AstExpr>();
    zero->kind = AstExpr::Kind::kLiteral;
    zero->literal = Value(static_cast<int64_t>(0));
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kBinary;
    e->op = "-";
    e->left = zero;
    e->right = inner;
    return e;
  }
  if (At().type == TokenType::kIdentifier) return ParseColumnRef();
  return Error("expected an expression");
}

Result<AstExprPtr> Parser::ParseMultiplicative() {
  CQ_ASSIGN_OR_RETURN(AstExprPtr left, ParsePrimary());
  while (At().IsSymbol("*") || At().IsSymbol("/") || At().IsSymbol("%")) {
    std::string op = At().text;
    Advance();
    CQ_ASSIGN_OR_RETURN(AstExprPtr right, ParsePrimary());
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kBinary;
    e->op = op;
    e->left = std::move(left);
    e->right = std::move(right);
    left = std::move(e);
  }
  return left;
}

Result<AstExprPtr> Parser::ParseAdditive() {
  CQ_ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
  while (At().IsSymbol("+") || At().IsSymbol("-")) {
    std::string op = At().text;
    Advance();
    CQ_ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kBinary;
    e->op = op;
    e->left = std::move(left);
    e->right = std::move(right);
    left = std::move(e);
  }
  return left;
}

Result<AstExprPtr> Parser::ParseComparison() {
  CQ_ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
  if (At().IsKeyword("IS")) {
    Advance();
    bool negated = ConsumeKeyword("NOT");
    if (!ConsumeKeyword("NULL")) return Error("expected NULL after IS");
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kIsNull;
    e->left = std::move(left);
    e->negated = negated;
    return e;
  }
  for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
    if (At().IsSymbol(op)) {
      Advance();
      CQ_ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
      auto e = std::make_shared<AstExpr>();
      e->kind = AstExpr::Kind::kBinary;
      e->op = op;
      e->left = std::move(left);
      e->right = std::move(right);
      return e;
    }
  }
  return left;
}

Result<AstExprPtr> Parser::ParseNot() {
  if (ConsumeKeyword("NOT")) {
    CQ_ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kNot;
    e->left = std::move(inner);
    return e;
  }
  return ParseComparison();
}

Result<AstExprPtr> Parser::ParseAnd() {
  CQ_ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
  while (ConsumeKeyword("AND")) {
    CQ_ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kBinary;
    e->op = "AND";
    e->left = std::move(left);
    e->right = std::move(right);
    left = std::move(e);
  }
  return left;
}

Result<AstExprPtr> Parser::ParseOr() {
  CQ_ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
  while (ConsumeKeyword("OR")) {
    CQ_ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
    auto e = std::make_shared<AstExpr>();
    e->kind = AstExpr::Kind::kBinary;
    e->op = "OR";
    e->left = std::move(left);
    e->right = std::move(right);
    left = std::move(e);
  }
  return left;
}

Result<AstSelectItem> Parser::ParseSelectItem() {
  AstSelectItem item;
  CQ_ASSIGN_OR_RETURN(item.expr, ParseExpr());
  if (ConsumeKeyword("AS")) {
    CQ_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
  }
  return item;
}

Result<bool> Parser::ParseEmit(R2SKind* emit) {
  if (!ConsumeKeyword("EMIT")) return false;
  if (ConsumeKeyword("ISTREAM")) {
    *emit = R2SKind::kIStream;
  } else if (ConsumeKeyword("DSTREAM")) {
    *emit = R2SKind::kDStream;
  } else if (ConsumeKeyword("RSTREAM")) {
    *emit = R2SKind::kRStream;
  } else {
    return Error("expected ISTREAM, DSTREAM or RSTREAM after EMIT");
  }
  return true;
}

Result<AstSelect> Parser::ParseSelectBody() {
  AstSelect q;
  if (!ConsumeKeyword("SELECT")) return Error("expected SELECT");
  q.distinct = ConsumeKeyword("DISTINCT");
  if (ConsumeSymbol("*")) {
    q.select_star = true;
  } else {
    do {
      CQ_ASSIGN_OR_RETURN(AstSelectItem item, ParseSelectItem());
      q.items.push_back(std::move(item));
    } while (ConsumeSymbol(","));
  }
  if (!ConsumeKeyword("FROM")) return Error("expected FROM");
  do {
    CQ_ASSIGN_OR_RETURN(AstTableRef ref, ParseTableRef());
    q.from.push_back(std::move(ref));
  } while (ConsumeSymbol(","));
  if (ConsumeKeyword("WHERE")) {
    CQ_ASSIGN_OR_RETURN(q.where, ParseExpr());
  }
  if (ConsumeKeyword("GROUP")) {
    if (!ConsumeKeyword("BY")) return Error("expected GROUP BY");
    do {
      CQ_ASSIGN_OR_RETURN(AstExprPtr col, ParseColumnRef());
      q.group_by.push_back(*col);
    } while (ConsumeSymbol(","));
  }
  if (ConsumeKeyword("HAVING")) {
    CQ_ASSIGN_OR_RETURN(q.having, ParseExpr());
  }
  return q;
}

Result<AstSelect> Parser::ParseSelect() {
  CQ_ASSIGN_OR_RETURN(AstSelect q, ParseSelectBody());
  CQ_RETURN_NOT_OK(ParseEmit(&q.emit).status());
  if (At().type != TokenType::kEnd) return Error("unexpected trailing input");
  return q;
}

Result<AstQuery> Parser::ParseCompound() {
  CQ_ASSIGN_OR_RETURN(AstSelect first, ParseSelectBody());
  AstQuery root;
  root.select = std::make_shared<AstSelect>(std::move(first));
  while (true) {
    AstQuery::SetOp op = AstQuery::SetOp::kNone;
    if (ConsumeKeyword("UNION")) {
      op = AstQuery::SetOp::kUnion;
    } else if (ConsumeKeyword("EXCEPT")) {
      op = AstQuery::SetOp::kExcept;
    } else if (ConsumeKeyword("INTERSECT")) {
      op = AstQuery::SetOp::kIntersect;
    } else {
      break;
    }
    bool all = ConsumeKeyword("ALL");
    CQ_ASSIGN_OR_RETURN(AstSelect next, ParseSelectBody());
    AstQuery combined;
    combined.op = op;
    combined.all = all;
    combined.left = std::make_shared<AstQuery>(std::move(root));
    combined.right = std::make_shared<AstQuery>();
    combined.right->select = std::make_shared<AstSelect>(std::move(next));
    root = std::move(combined);
  }
  CQ_RETURN_NOT_OK(ParseEmit(&root.emit).status());
  if (At().type != TokenType::kEnd) return Error("unexpected trailing input");
  return root;
}

}  // namespace

Result<AstSelect> ParseQuery(const std::string& sql) {
  CQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

Result<AstQuery> ParseCompoundQuery(const std::string& sql) {
  CQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseCompound();
}

Result<AstExprPtr> ParseExpression(const std::string& text) {
  CQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  CQ_ASSIGN_OR_RETURN(AstExprPtr e, parser.ParseExpr());
  CQ_RETURN_NOT_OK(parser.ExpectEnd());
  return e;
}

}  // namespace cq

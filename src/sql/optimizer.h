#ifndef CQ_SQL_OPTIMIZER_H_
#define CQ_SQL_OPTIMIZER_H_

/// \file optimizer.h
/// \brief Static plan optimisations from the streaming-systems catalogue
/// (paper §4.2, Hirzel et al. [49]).
///
/// Rules, each independently switchable so bench E7 can ablate them and the
/// CI plan-optimizer lane can sweep them (see OptimizerOptionsFromSpec):
///  - canonicalization: constant folding, NOT-pushdown (De Morgan,
///    comparison negation, IS NULL flips), commutative-operand ordering,
///    conjunct flattening/sorting/dedup, and column display-name
///    normalization — so semantically-equal predicates render identical
///    fingerprint text (sql/fingerprint.h) and shared-subplan lookups hit;
///  - separation: split conjunctive selections into chains;
///  - operator reordering: push selections below joins/unions/projects/
///    aggregates/distinct/set-ops and order selection chains
///    most-selective-first;
///  - redundancy elimination: drop duplicate predicates and identity
///    projections;
///  - equi-join extraction: turn cross-product + equality predicates into
///    hash equi-joins (the special case of reordering that matters most);
///  - projection merge: collapse adjacent Project nodes by substitution;
///  - join-input selection: put the estimated more-selective (smaller)
///    input on the build side of a hash join, with a compensating
///    projection restoring the original column order;
///  - fusion: merge adjacent selections back into single operators to cut
///    per-operator overhead after placement.
///
/// Canonicalization contract: every rewrite preserves the relation the
/// plan computes at every instant under the engine's collapsed three-valued
/// semantics (predicates treat NULL as false). Two caveats are deliberate
/// and documented: (1) OR operands are never reordered — this engine
/// NULL-poisons on the *first* operand, so `NULL OR TRUE` is NULL while
/// `TRUE OR NULL` is TRUE; (2) reordering AND conjuncts (like the existing
/// selection reordering) may change *which* evaluation error surfaces for
/// ill-typed data, never the output of a well-typed query.

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "cql/plan.h"

namespace cq {

/// \brief Observed selectivities keyed by canonical predicate fingerprint
/// (ExprFingerprint of the canonicalized predicate). Values in [0, 1];
/// lower = more selective. The service refreshes these from the
/// `cq_dataflow_selectivity` EWMA gauges its filter stages export
/// (QueryService::ObservedSelectivityHints).
using SelectivityHints = std::map<std::string, double>;

struct OptimizerOptions {
  bool canonicalize = true;
  bool separate_conjuncts = true;
  bool push_down_selections = true;
  bool extract_equi_joins = true;
  bool eliminate_redundancy = true;
  bool reorder_selections = true;
  bool fuse_selections = true;
  bool merge_projections = true;
  bool choose_join_inputs = true;
  /// Observed-selectivity overrides consulted by EstimateSelectivity before
  /// its static heuristics. Part of the optimiser configuration: the service
  /// persists the hints each query was planned with so restore-replay
  /// reproduces fingerprints byte-for-byte.
  SelectivityHints selectivity_hints;
};

struct OptimizerStats {
  size_t exprs_canonicalized = 0;
  size_t constants_folded = 0;
  size_t selections_pushed = 0;
  size_t equi_joins_extracted = 0;
  size_t predicates_deduped = 0;
  size_t selections_fused = 0;
  size_t selections_reordered = 0;
  size_t projections_merged = 0;
  size_t join_inputs_swapped = 0;
};

/// \brief Rewrites the plan; the result computes the same relation at every
/// instant (all rules are semantics-preserving for bag semantics).
Result<RelOpPtr> OptimizePlan(RelOpPtr plan, const OptimizerOptions& options,
                              OptimizerStats* stats = nullptr);

/// \brief Estimated selectivity of a predicate in [0, 1] (lower = more
/// selective); the heuristic cost model behind selection reordering.
double EstimateSelectivity(const Expr& predicate);

/// \brief Hint-aware estimate: an observed selectivity for the predicate's
/// canonical fingerprint (or any sub-predicate's) overrides the static
/// heuristic at that node.
double EstimateSelectivity(const Expr& predicate,
                           const SelectivityHints& hints);

/// \brief Canonical form of a predicate-context expression (NULL collapses
/// to false downstream). Deterministic: semantically-equal predicates map
/// to expressions with identical fingerprint text. Exposed for fingerprint
/// tooling and tests; OptimizePlan applies it to every predicate position.
ExprPtr CanonicalizePredicate(const ExprPtr& expr,
                              OptimizerStats* stats = nullptr);

/// \brief Canonical form of a value-context expression (projections,
/// aggregate inputs): constant folding, exact NOT rewrites, commutative
/// ordering of `*`/`=`/`<>` operands, and column-name normalization only —
/// no AND sorting, which is observable where NULL is a value.
ExprPtr CanonicalizeValueExpr(const ExprPtr& expr,
                              OptimizerStats* stats = nullptr);

// --- Kill-switch sweeps (CI plan-optimizer lane, bench ablations) ---

/// \brief Stable names of the switchable rules, in pipeline order:
/// canonicalize, separate, pushdown, equijoin, redundancy, reorder, fuse,
/// mergeproj, joininputs.
const std::vector<std::string>& OptimizerRuleNames();

/// \brief Parses a rule spec into options. Grammar: comma-separated tokens;
/// "all" / "none" reset every switch; a bare rule name as the first token
/// starts from all-off and enables the listed rules (each-rule-solo form);
/// "+name" / "-name" toggle individual rules from the current state.
/// Examples: "all", "none", "canonicalize", "all,-fuse", "none,+pushdown".
/// Unknown names error. Hints are not part of the spec.
Result<OptimizerOptions> OptimizerOptionsFromSpec(const std::string& spec);

}  // namespace cq

#endif  // CQ_SQL_OPTIMIZER_H_

#ifndef CQ_SQL_OPTIMIZER_H_
#define CQ_SQL_OPTIMIZER_H_

/// \file optimizer.h
/// \brief Static plan optimisations from the streaming-systems catalogue
/// (paper §4.2, Hirzel et al. [49]).
///
/// Rules, each independently switchable so bench E7 can ablate them:
///  - separation: split conjunctive selections into chains;
///  - operator reordering: push selections below joins/unions and order
///    selection chains most-selective-first;
///  - redundancy elimination: drop duplicate predicates and identity
///    projections;
///  - equi-join extraction: turn cross-product + equality predicates into
///    hash equi-joins (the special case of reordering that matters most);
///  - fusion: merge adjacent selections back into single operators to cut
///    per-operator overhead after placement.

#include "common/status.h"
#include "cql/plan.h"

namespace cq {

struct OptimizerOptions {
  bool separate_conjuncts = true;
  bool push_down_selections = true;
  bool extract_equi_joins = true;
  bool eliminate_redundancy = true;
  bool reorder_selections = true;
  bool fuse_selections = true;
};

struct OptimizerStats {
  size_t selections_pushed = 0;
  size_t equi_joins_extracted = 0;
  size_t predicates_deduped = 0;
  size_t selections_fused = 0;
  size_t selections_reordered = 0;
};

/// \brief Rewrites the plan; the result computes the same relation at every
/// instant (all rules are semantics-preserving for bag semantics).
Result<RelOpPtr> OptimizePlan(RelOpPtr plan, const OptimizerOptions& options,
                              OptimizerStats* stats = nullptr);

/// \brief Estimated selectivity of a predicate in [0, 1] (lower = more
/// selective); the heuristic cost model behind selection reordering.
double EstimateSelectivity(const Expr& predicate);

}  // namespace cq

#endif  // CQ_SQL_OPTIMIZER_H_

#include "sql/ast.h"

namespace cq {

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + left->ToString() + " " + op + " " + right->ToString() + ")";
    case Kind::kNot:
      return "NOT " + left->ToString();
    case Kind::kIsNull:
      return left->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case Kind::kAggregate:
      return std::string(AggregateKindToString(agg_kind)) + "(" +
             (agg_star ? "*" : left->ToString()) + ")";
    case Kind::kStar:
      return "*";
  }
  return "?";
}

}  // namespace cq

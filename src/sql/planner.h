#ifndef CQ_SQL_PLANNER_H_
#define CQ_SQL_PLANNER_H_

/// \file planner.h
/// \brief Plans a parsed CQL query into an executable ContinuousQuery.
///
/// Resolution: FROM entries bind input slots 0..n-1 with alias-qualified
/// schemas; column references resolve against the concatenation. The naive
/// plan is left-deep cross products + a WHERE filter + aggregation +
/// projection; the optimiser (optimizer.h) then applies the §4.2 rules
/// (predicate pushdown, equi-join extraction, fusion).

#include "common/status.h"
#include "cql/continuous_query.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace cq {

/// \brief A planned query plus its output schema.
struct PlannedQuery {
  ContinuousQuery query;
  SchemaPtr output_schema;
  /// Catalog stream name bound to each input slot (index-aligned with the
  /// query's input_windows / Scan slots). The continuous-query service uses
  /// this binding to splice the plan onto the shared per-stream sources.
  std::vector<std::string> input_streams;
};

/// \brief Plans the AST against the catalog (no optimisation).
Result<PlannedQuery> PlanQuery(const AstSelect& ast, const Catalog& catalog);

/// \brief Plans a compound (set-operation) query tree. Each branch keeps its
/// own windows; branch input slots are renumbered into one flat slot space.
/// Non-ALL set operations wrap the combination in Distinct.
Result<PlannedQuery> PlanCompoundQuery(const AstQuery& ast,
                                       const Catalog& catalog);

/// \brief Convenience: parse + plan (accepts compound queries).
Result<PlannedQuery> PlanSql(const std::string& sql, const Catalog& catalog);

/// \brief Translates a resolved scalar AST (no aggregates) against a schema.
Result<ExprPtr> TranslateScalar(const AstExpr& ast, const Schema& schema);

}  // namespace cq

#endif  // CQ_SQL_PLANNER_H_

#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace cq {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",     "GROUP",  "BY",     "HAVING",
      "AS",     "AND",    "OR",        "NOT",    "IS",     "NULL",
      "TRUE",   "FALSE",  "RANGE",     "SLIDE",  "ROWS",   "NOW",
      "UNBOUNDED",        "PARTITION", "ISTREAM", "DSTREAM", "RSTREAM",
      "EMIT",   "COUNT",  "SUM",       "MIN",    "MAX",    "AVG",
      "DISTINCT",         "UNION",     "EXCEPT", "INTERSECT", "ALL",
      "JOIN",   "ON",     "INNER",     "MINUTES", "MINUTE", "SECONDS",
      "SECOND", "HOURS",  "HOUR",      "MILLISECONDS",
  };
  return kKeywords;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (Keywords().count(upper)) {
        out.push_back({TokenType::kKeyword, upper, start});
      } else {
        out.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i + 1 < n && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      out.push_back({is_double ? TokenType::kDoubleLiteral
                               : TokenType::kIntLiteral,
                     input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      while (i < n && input[i] != '\'') text += input[i++];
      if (i >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      ++i;  // closing quote
      out.push_back({TokenType::kStringLiteral, std::move(text), start});
      continue;
    }
    // Multi-char symbols first.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        out.push_back({TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "()[],.*=<>+-/%";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

}  // namespace cq

#include "sql/fingerprint.h"

#include "sql/plan_serde.h"

namespace cq {

std::string ExprFingerprint(const Expr& expr) { return SerializeExpr(expr); }

std::string PlanFingerprint(const RelOp& plan) { return SerializePlan(plan); }

std::string WindowFingerprint(const S2RSpec& spec) { return spec.ToString(); }

std::string ComposeSourceStage(const std::string& stream) {
  return "src:" + stream;
}

std::string ComposeFilterStage(const std::string& parent, const Expr& pred) {
  return parent + "|flt:" + ExprFingerprint(pred);
}

std::string ComposeWindowStage(const std::string& parent,
                               const S2RSpec& spec) {
  return parent + "|win:" + WindowFingerprint(spec);
}

std::string ComposePlanStage(const std::vector<std::string>& slot_chains,
                             const RelOp& residual, R2SKind output) {
  std::string fp = "plan:";
  for (size_t i = 0; i < slot_chains.size(); ++i) {
    fp += "[" + std::to_string(i) + "<-" + slot_chains[i] + "]";
  }
  fp += "|rel:" + PlanFingerprint(residual);
  fp += "|emit:";
  fp += R2SKindToString(output);
  return fp;
}

uint64_t FingerprintHash(const std::string& fingerprint) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : fingerprint) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

}  // namespace cq

#ifndef CQ_SQL_AST_H_
#define CQ_SQL_AST_H_

/// \file ast.h
/// \brief Abstract syntax tree for the CQL dialect.
///
/// Unresolved: column references are names, window durations carry units.
/// The planner resolves names against the catalog and produces a
/// ContinuousQuery (cql module).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "cql/r2s.h"
#include "types/value.h"
#include "window/aggregate.h"

namespace cq {

// ---- Scalar expression AST (unresolved) ----

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

struct AstExpr {
  enum class Kind {
    kColumn,    // qualifier.name or name
    kLiteral,   // constant
    kBinary,    // op applied to left/right
    kNot,
    kIsNull,    // IS [NOT] NULL
    kAggregate, // COUNT/SUM/MIN/MAX/AVG(expr | *)
    kStar,      // bare * (only valid in select lists)
  };

  Kind kind = Kind::kLiteral;

  // kColumn
  std::string qualifier;  // may be empty
  std::string column;

  // kLiteral
  Value literal;

  // kBinary / kNot / kIsNull / kAggregate argument
  std::string op;  // binary operator text: = <> < <= > >= + - * / % AND OR
  AstExprPtr left;
  AstExprPtr right;
  bool negated = false;  // IS NOT NULL

  // kAggregate
  AggregateKind agg_kind = AggregateKind::kCount;
  bool agg_star = false;  // COUNT(*)

  std::string ToString() const;
};

// ---- Window specification AST ----

struct AstWindow {
  enum class Kind { kDefaultUnbounded, kRange, kNow, kUnbounded, kRows,
                    kPartitionedRows };
  Kind kind = Kind::kDefaultUnbounded;
  Duration range = 0;  // already unit-normalised (milliseconds)
  Duration slide = 0;
  int64_t rows = 0;
  std::vector<std::string> partition_columns;
};

// ---- Query AST ----

struct AstSelectItem {
  AstExprPtr expr;
  std::string alias;  // empty = derive from expression
};

struct AstTableRef {
  std::string name;
  std::string alias;  // empty = use name
  AstWindow window;
};

struct AstSelect {
  bool distinct = false;
  std::vector<AstSelectItem> items;  // empty + star_ = SELECT *
  bool select_star = false;
  std::vector<AstTableRef> from;
  AstExprPtr where;                  // may be null
  std::vector<AstExpr> group_by;     // column refs
  AstExprPtr having;                 // may be null
  R2SKind emit = R2SKind::kIStream;  // EMIT clause; default IStream
};

/// \brief A query tree: a single SELECT, or a bag set-operation combining
/// two query trees (UNION ALL / EXCEPT ALL / INTERSECT ALL). The outermost
/// EMIT clause selects the R2S operator for the whole compound.
struct AstQuery {
  enum class SetOp { kNone, kUnion, kExcept, kIntersect };

  SetOp op = SetOp::kNone;
  /// Bag semantics (UNION ALL) vs set semantics (UNION = distinct result).
  bool all = true;
  // Leaf (op == kNone):
  std::shared_ptr<AstSelect> select;
  // Internal node:
  std::shared_ptr<AstQuery> left;
  std::shared_ptr<AstQuery> right;
  R2SKind emit = R2SKind::kIStream;
};

}  // namespace cq

#endif  // CQ_SQL_AST_H_

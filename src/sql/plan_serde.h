#ifndef CQ_SQL_PLAN_SERDE_H_
#define CQ_SQL_PLAN_SERDE_H_

/// \file plan_serde.h
/// \brief A portable intermediate representation for continuous queries
/// (paper §7, "Query Portability").
///
/// The survey's open-challenge discussion notes that porting query workloads
/// across systems is blocked by divergent semantics, and that several
/// intermediate representations were proposed ([40, 44, 59, 63, 64, 78, 79,
/// 89]) without industrial adoption. This module is the engine's answer at
/// its own scale: a complete, human-readable s-expression encoding of a
/// ContinuousQuery — windows (S2R), plan (R2R), and output operator (R2S) —
/// with a parser back to executable form. Round-tripping is lossless
/// (testable as plan-output equivalence on arbitrary inputs), so plans can
/// be shipped between processes, versioned, or diffed.
///
/// Grammar (rendering):
///   query   := (query (windows w*) plan (emit KIND))
///   w       := (range N [slide N]) | (rows N) | (prows (k*) N)
///             | (now) | (unbounded)
///   plan    := (scan N (schema (name TYPE)*))
///            | (select expr plan) | (project ((name TYPE expr)*) plan)
///            | (join (l*) (r*) [expr] plan plan) | (thetajoin [expr] p p)
///            | (agg (groups*) ((KIND [expr] name)*) plan)
///            | (distinct p) | (union p p) | (except p p) | (intersect p p)
///   expr    := (col N name) | (lit VALUE) | (OP expr expr) | (not expr)
///            | (isnull expr) | (isnotnull expr)

#include <string>

#include "common/status.h"
#include "cql/continuous_query.h"

namespace cq {

/// \brief Renders the query as the portable IR text.
std::string SerializeQuery(const ContinuousQuery& query);

/// \brief Renders a bare plan (no windows / emit).
std::string SerializePlan(const RelOp& plan);

/// \brief Renders a scalar expression.
std::string SerializeExpr(const Expr& expr);

/// \brief Parses IR text back to an executable query.
Result<ContinuousQuery> ParseQueryIr(const std::string& text);

/// \brief Parses a bare plan.
Result<RelOpPtr> ParsePlanIr(const std::string& text);

}  // namespace cq

#endif  // CQ_SQL_PLAN_SERDE_H_

#ifndef CQ_SQL_LEXER_H_
#define CQ_SQL_LEXER_H_

/// \file lexer.h
/// \brief Tokenizer for the CQL dialect (paper §3.1, Listing 1).

#include <string>
#include <vector>

#include "common/status.h"

namespace cq {

enum class TokenType {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kSymbol,  // ( ) [ ] , . * = < > <= >= <> + - / %
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // raw text; keywords upper-cased
  size_t position = 0;  // byte offset for error messages

  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const std::string& s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// \brief Tokenizes `input`; keywords are recognised case-insensitively.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cq

#endif  // CQ_SQL_LEXER_H_

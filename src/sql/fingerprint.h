#ifndef CQ_SQL_FINGERPRINT_H_
#define CQ_SQL_FINGERPRINT_H_

/// \file fingerprint.h
/// \brief Canonical plan fingerprints for multi-query sharing.
///
/// The DSMS lineage the survey draws on (NiagaraCQ-style multi-query
/// optimisation) scales by recognising that thousands of registered queries
/// repeat the same source / filter / window prefixes and executing each
/// distinct prefix once. Recognition needs a canonical name for a plan
/// fragment: two fragments share iff their fingerprints are equal.
///
/// Fingerprints are built on the portable IR (plan_serde.h): the IR text is
/// a complete, deterministic rendering of an expression / plan / window, so
/// equal text <=> equal fragment (up to slot numbering, which callers fold
/// in themselves via the per-slot chain construction below). The service
/// composes fingerprints as chains:
///
///   src:<stream>                                 the per-stream source
///   <parent>|flt:<expr-ir>                       a pre-window filter stage
///   <parent>|win:<s2r-spec>                      the S2R window stage
///   plan:<slot-chains>|rel:<plan-ir>|emit:<r2s>  the residual R2R + R2S
///
/// so a fingerprint names not just a node but the whole upstream prefix it
/// terminates — exactly the sharing unit ("fan out at the first
/// divergence").

#include <string>
#include <vector>

#include "cql/continuous_query.h"
#include "cql/expr.h"
#include "cql/plan.h"
#include "cql/r2s.h"
#include "cql/s2r.h"

namespace cq {

/// \brief Canonical fingerprint of a scalar expression (IR text).
std::string ExprFingerprint(const Expr& expr);

/// \brief Canonical fingerprint of an R2R plan fragment (IR text). Scan
/// slot numbers appear literally: callers comparing plans across queries
/// must compose with per-slot upstream fingerprints (see ComposePlanStage).
std::string PlanFingerprint(const RelOp& plan);

/// \brief Canonical fingerprint of an S2R window spec.
std::string WindowFingerprint(const S2RSpec& spec);

// --- Chain composition (prefix fingerprints) ---

/// \brief Fingerprint of a per-stream source stage.
std::string ComposeSourceStage(const std::string& stream);

/// \brief Fingerprint of a filter stage applied on top of `parent`.
std::string ComposeFilterStage(const std::string& parent, const Expr& pred);

/// \brief Fingerprint of a window (S2R) stage applied on top of `parent`.
std::string ComposeWindowStage(const std::string& parent, const S2RSpec& spec);

/// \brief Fingerprint of the residual R2R plan + R2S stage. `slot_chains`
/// holds, per input slot, the fingerprint of the upstream chain feeding that
/// slot — folding them in makes the name independent of slot numbering
/// collisions across queries.
std::string ComposePlanStage(const std::vector<std::string>& slot_chains,
                             const RelOp& residual, R2SKind output);

/// \brief 64-bit FNV-1a of a fingerprint string — for metric labels and
/// compact display; the full string stays the authoritative key.
uint64_t FingerprintHash(const std::string& fingerprint);

}  // namespace cq

#endif  // CQ_SQL_FINGERPRINT_H_

#include "sql/plan_serde.h"

#include <cctype>
#include <memory>
#include <vector>

namespace cq {

namespace {

// ---- Rendering ----

void QuoteString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void RenderValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += "(lit null)";
      return;
    case ValueType::kBool:
      *out += v.bool_value() ? "(lit b true)" : "(lit b false)";
      return;
    case ValueType::kInt64:
      *out += "(lit i " + std::to_string(v.int64_value()) + ")";
      return;
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.double_value());
      *out += std::string("(lit d ") + buf + ")";
      return;
    }
    case ValueType::kString:
      *out += "(lit s ";
      QuoteString(v.string_value(), out);
      *out += ")";
      return;
  }
}

void RenderExpr(const Expr& e, std::string* out) {
  switch (e.kind()) {
    case Expr::Kind::kColumn: {
      const auto& c = static_cast<const ColumnRef&>(e);
      *out += "(col " + std::to_string(c.index()) + " ";
      QuoteString(c.name(), out);
      *out += ")";
      return;
    }
    case Expr::Kind::kLiteral:
      RenderValue(static_cast<const Literal&>(e).value(), out);
      return;
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      *out += std::string("(") + BinaryOpToString(b.op()) + " ";
      RenderExpr(*b.left(), out);
      *out += " ";
      RenderExpr(*b.right(), out);
      *out += ")";
      return;
    }
    case Expr::Kind::kNot: {
      *out += "(not ";
      RenderExpr(*static_cast<const NotExpr&>(e).inner(), out);
      *out += ")";
      return;
    }
    case Expr::Kind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(e);
      *out += n.negated() ? "(isnotnull " : "(isnull ";
      RenderExpr(*n.inner(), out);
      *out += ")";
      return;
    }
    default:
      *out += "(unsupported)";
      return;
  }
}

void RenderSchema(const Schema& schema, std::string* out) {
  *out += "(schema";
  for (const auto& f : schema.fields()) {
    *out += " (";
    QuoteString(f.name, out);
    *out += std::string(" ") + ValueTypeToString(f.type) + ")";
  }
  *out += ")";
}

void RenderIndexList(const std::vector<size_t>& xs, std::string* out) {
  *out += "(";
  for (size_t i = 0; i < xs.size(); ++i) {
    if (i) *out += " ";
    *out += std::to_string(xs[i]);
  }
  *out += ")";
}

void RenderPlan(const RelOp& plan, std::string* out) {
  switch (plan.kind()) {
    case RelOpKind::kScan:
      *out += "(scan " + std::to_string(plan.input_index()) + " ";
      RenderSchema(*plan.schema(), out);
      *out += ")";
      return;
    case RelOpKind::kSelect:
      *out += "(select ";
      RenderExpr(*plan.predicate(), out);
      *out += " ";
      RenderPlan(*plan.children()[0], out);
      *out += ")";
      return;
    case RelOpKind::kProject: {
      *out += "(project (";
      for (size_t i = 0; i < plan.projections().size(); ++i) {
        if (i) *out += " ";
        const Field& f = plan.schema()->field(i);
        *out += "(";
        QuoteString(f.name, out);
        *out += std::string(" ") + ValueTypeToString(f.type) + " ";
        RenderExpr(*plan.projections()[i], out);
        *out += ")";
      }
      *out += ") ";
      RenderPlan(*plan.children()[0], out);
      *out += ")";
      return;
    }
    case RelOpKind::kJoin: {
      *out += "(join ";
      RenderIndexList(plan.left_keys(), out);
      *out += " ";
      RenderIndexList(plan.right_keys(), out);
      *out += " ";
      if (plan.predicate() != nullptr) {
        RenderExpr(*plan.predicate(), out);
        *out += " ";
      }
      RenderPlan(*plan.children()[0], out);
      *out += " ";
      RenderPlan(*plan.children()[1], out);
      *out += ")";
      return;
    }
    case RelOpKind::kThetaJoin: {
      *out += "(thetajoin ";
      if (plan.predicate() != nullptr) {
        RenderExpr(*plan.predicate(), out);
        *out += " ";
      }
      RenderPlan(*plan.children()[0], out);
      *out += " ";
      RenderPlan(*plan.children()[1], out);
      *out += ")";
      return;
    }
    case RelOpKind::kAggregate: {
      *out += "(agg ";
      RenderIndexList(plan.group_indexes(), out);
      *out += " (";
      for (size_t i = 0; i < plan.aggs().size(); ++i) {
        if (i) *out += " ";
        const AggSpec& a = plan.aggs()[i];
        *out += std::string("(") + AggregateKindToString(a.kind) + " ";
        if (a.input != nullptr) {
          RenderExpr(*a.input, out);
          *out += " ";
        }
        QuoteString(a.output_name, out);
        *out += ")";
      }
      *out += ") ";
      RenderPlan(*plan.children()[0], out);
      *out += ")";
      return;
    }
    case RelOpKind::kDistinct:
      *out += "(distinct ";
      RenderPlan(*plan.children()[0], out);
      *out += ")";
      return;
    case RelOpKind::kUnion:
    case RelOpKind::kExcept:
    case RelOpKind::kIntersect: {
      const char* tag = plan.kind() == RelOpKind::kUnion
                            ? "union"
                            : (plan.kind() == RelOpKind::kExcept
                                   ? "except"
                                   : "intersect");
      *out += std::string("(") + tag + " ";
      RenderPlan(*plan.children()[0], out);
      *out += " ";
      RenderPlan(*plan.children()[1], out);
      *out += ")";
      return;
    }
  }
}

void RenderWindow(const S2RSpec& w, std::string* out) {
  switch (w.kind) {
    case S2RKind::kRange:
      *out += "(range " + std::to_string(w.range);
      if (w.slide > 1) *out += " slide " + std::to_string(w.slide);
      *out += ")";
      return;
    case S2RKind::kNow:
      *out += "(now)";
      return;
    case S2RKind::kUnbounded:
      *out += "(unbounded)";
      return;
    case S2RKind::kRows:
      *out += "(rows " + std::to_string(w.rows) + ")";
      return;
    case S2RKind::kPartitionedRows:
      *out += "(prows ";
      RenderIndexList(w.partition_keys, out);
      *out += " " + std::to_string(w.rows) + ")";
      return;
  }
}

// ---- Parsing: s-expressions ----

struct Sexp {
  bool is_atom = false;
  std::string atom;  // unquoted form for atoms; raw text for strings
  bool was_string = false;
  std::vector<Sexp> items;
};

class SexpParser {
 public:
  explicit SexpParser(const std::string& text) : text_(text) {}

  Result<Sexp> Parse() {
    CQ_ASSIGN_OR_RETURN(Sexp s, ParseOne());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("IR: trailing input at " +
                                std::to_string(pos_));
    }
    return s;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<Sexp> ParseOne() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("IR: unexpected end");
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Sexp list;
      while (true) {
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Status::ParseError("IR: unterminated list");
        }
        if (text_[pos_] == ')') {
          ++pos_;
          return list;
        }
        CQ_ASSIGN_OR_RETURN(Sexp item, ParseOne());
        list.items.push_back(std::move(item));
      }
    }
    if (c == '"') {
      ++pos_;
      Sexp s;
      s.is_atom = true;
      s.was_string = true;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        s.atom += text_[pos_++];
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("IR: unterminated string");
      }
      ++pos_;
      return s;
    }
    Sexp s;
    s.is_atom = true;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')') {
      s.atom += text_[pos_++];
    }
    if (s.atom.empty()) return Status::ParseError("IR: empty atom");
    return s;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status Expect(const Sexp& s, const char* tag) {
  if (s.is_atom || s.items.empty() || !s.items[0].is_atom ||
      s.items[0].atom != tag) {
    return Status::ParseError(std::string("IR: expected (") + tag + " ...)");
  }
  return Status::OK();
}

Result<int64_t> AtomInt(const Sexp& s) {
  if (!s.is_atom) return Status::ParseError("IR: expected an integer atom");
  try {
    return static_cast<int64_t>(std::stoll(s.atom));
  } catch (...) {
    return Status::ParseError("IR: bad integer '" + s.atom + "'");
  }
}

Result<ValueType> AtomType(const Sexp& s) {
  if (!s.is_atom) return Status::ParseError("IR: expected a type atom");
  for (ValueType t : {ValueType::kNull, ValueType::kBool, ValueType::kInt64,
                      ValueType::kDouble, ValueType::kString}) {
    if (s.atom == ValueTypeToString(t)) return t;
  }
  return Status::ParseError("IR: unknown type '" + s.atom + "'");
}

Result<std::vector<size_t>> IndexList(const Sexp& s) {
  if (s.is_atom) return Status::ParseError("IR: expected an index list");
  std::vector<size_t> out;
  for (const auto& item : s.items) {
    CQ_ASSIGN_OR_RETURN(int64_t v, AtomInt(item));
    out.push_back(static_cast<size_t>(v));
  }
  return out;
}

Result<ExprPtr> ParseExprSexp(const Sexp& s);

Result<Value> ParseLit(const Sexp& s) {
  // (lit null) | (lit b true) | (lit i N) | (lit d X) | (lit s "...")
  if (s.items.size() < 2) return Status::ParseError("IR: bad literal");
  const std::string& tag = s.items[1].atom;
  if (tag == "null") return Value::Null();
  if (s.items.size() != 3) return Status::ParseError("IR: bad literal arity");
  const Sexp& payload = s.items[2];
  if (tag == "b") return Value(payload.atom == "true");
  if (tag == "i") {
    CQ_ASSIGN_OR_RETURN(int64_t v, AtomInt(payload));
    return Value(v);
  }
  if (tag == "d") {
    try {
      return Value(std::stod(payload.atom));
    } catch (...) {
      return Status::ParseError("IR: bad double '" + payload.atom + "'");
    }
  }
  if (tag == "s") return Value(payload.atom);
  return Status::ParseError("IR: unknown literal tag '" + tag + "'");
}

Result<ExprPtr> ParseExprSexp(const Sexp& s) {
  if (s.is_atom || s.items.empty() || !s.items[0].is_atom) {
    return Status::ParseError("IR: expected an expression list");
  }
  const std::string& tag = s.items[0].atom;
  if (tag == "col") {
    if (s.items.size() != 3) return Status::ParseError("IR: bad (col ...)");
    CQ_ASSIGN_OR_RETURN(int64_t idx, AtomInt(s.items[1]));
    return Col(static_cast<size_t>(idx), s.items[2].atom);
  }
  if (tag == "lit") {
    CQ_ASSIGN_OR_RETURN(Value v, ParseLit(s));
    return Lit(std::move(v));
  }
  if (tag == "not") {
    if (s.items.size() != 2) return Status::ParseError("IR: bad (not ...)");
    CQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExprSexp(s.items[1]));
    return Not(std::move(inner));
  }
  if (tag == "isnull" || tag == "isnotnull") {
    if (s.items.size() != 2) return Status::ParseError("IR: bad isnull");
    CQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExprSexp(s.items[1]));
    return ExprPtr(
        std::make_shared<IsNullExpr>(std::move(inner), tag == "isnotnull"));
  }
  // Binary operators by printed symbol.
  for (BinaryOp op :
       {BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
        BinaryOp::kMod, BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
        BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe, BinaryOp::kAnd,
        BinaryOp::kOr}) {
    if (tag == BinaryOpToString(op)) {
      if (s.items.size() != 3) {
        return Status::ParseError("IR: binary operator needs two operands");
      }
      CQ_ASSIGN_OR_RETURN(ExprPtr l, ParseExprSexp(s.items[1]));
      CQ_ASSIGN_OR_RETURN(ExprPtr r, ParseExprSexp(s.items[2]));
      return Bin(op, std::move(l), std::move(r));
    }
  }
  return Status::ParseError("IR: unknown expression tag '" + tag + "'");
}

Result<SchemaPtr> ParseSchemaSexp(const Sexp& s) {
  CQ_RETURN_NOT_OK(Expect(s, "schema"));
  std::vector<Field> fields;
  for (size_t i = 1; i < s.items.size(); ++i) {
    const Sexp& f = s.items[i];
    if (f.is_atom || f.items.size() != 2) {
      return Status::ParseError("IR: bad schema field");
    }
    CQ_ASSIGN_OR_RETURN(ValueType t, AtomType(f.items[1]));
    fields.push_back({f.items[0].atom, t});
  }
  return Schema::Make(std::move(fields));
}

Result<RelOpPtr> ParsePlanSexp(const Sexp& s) {
  if (s.is_atom || s.items.empty() || !s.items[0].is_atom) {
    return Status::ParseError("IR: expected a plan list");
  }
  const std::string& tag = s.items[0].atom;
  if (tag == "scan") {
    if (s.items.size() != 3) return Status::ParseError("IR: bad (scan ...)");
    CQ_ASSIGN_OR_RETURN(int64_t slot, AtomInt(s.items[1]));
    CQ_ASSIGN_OR_RETURN(SchemaPtr schema, ParseSchemaSexp(s.items[2]));
    return RelOp::Scan(static_cast<size_t>(slot), std::move(schema));
  }
  if (tag == "select") {
    if (s.items.size() != 3) return Status::ParseError("IR: bad (select)");
    CQ_ASSIGN_OR_RETURN(ExprPtr pred, ParseExprSexp(s.items[1]));
    CQ_ASSIGN_OR_RETURN(RelOpPtr child, ParsePlanSexp(s.items[2]));
    return RelOp::Select(std::move(child), std::move(pred));
  }
  if (tag == "project") {
    if (s.items.size() != 3) return Status::ParseError("IR: bad (project)");
    std::vector<ExprPtr> exprs;
    std::vector<Field> fields;
    for (const auto& col : s.items[1].items) {
      if (col.is_atom || col.items.size() != 3) {
        return Status::ParseError("IR: bad projection column");
      }
      CQ_ASSIGN_OR_RETURN(ValueType t, AtomType(col.items[1]));
      CQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSexp(col.items[2]));
      fields.push_back({col.items[0].atom, t});
      exprs.push_back(std::move(e));
    }
    CQ_ASSIGN_OR_RETURN(RelOpPtr child, ParsePlanSexp(s.items[2]));
    return RelOp::Project(std::move(child), std::move(exprs),
                          std::move(fields));
  }
  if (tag == "join") {
    if (s.items.size() != 5 && s.items.size() != 6) {
      return Status::ParseError("IR: bad (join ...)");
    }
    CQ_ASSIGN_OR_RETURN(std::vector<size_t> lk, IndexList(s.items[1]));
    CQ_ASSIGN_OR_RETURN(std::vector<size_t> rk, IndexList(s.items[2]));
    size_t i = 3;
    ExprPtr residual;
    if (s.items.size() == 6) {
      CQ_ASSIGN_OR_RETURN(residual, ParseExprSexp(s.items[i++]));
    }
    CQ_ASSIGN_OR_RETURN(RelOpPtr l, ParsePlanSexp(s.items[i]));
    CQ_ASSIGN_OR_RETURN(RelOpPtr r, ParsePlanSexp(s.items[i + 1]));
    return RelOp::Join(std::move(l), std::move(r), std::move(lk),
                       std::move(rk), std::move(residual));
  }
  if (tag == "thetajoin") {
    if (s.items.size() != 3 && s.items.size() != 4) {
      return Status::ParseError("IR: bad (thetajoin ...)");
    }
    size_t i = 1;
    ExprPtr pred;
    if (s.items.size() == 4) {
      CQ_ASSIGN_OR_RETURN(pred, ParseExprSexp(s.items[i++]));
    }
    CQ_ASSIGN_OR_RETURN(RelOpPtr l, ParsePlanSexp(s.items[i]));
    CQ_ASSIGN_OR_RETURN(RelOpPtr r, ParsePlanSexp(s.items[i + 1]));
    return RelOp::ThetaJoin(std::move(l), std::move(r), std::move(pred));
  }
  if (tag == "agg") {
    if (s.items.size() != 4) return Status::ParseError("IR: bad (agg ...)");
    CQ_ASSIGN_OR_RETURN(std::vector<size_t> groups, IndexList(s.items[1]));
    std::vector<AggSpec> aggs;
    for (const auto& a : s.items[2].items) {
      if (a.is_atom || a.items.size() < 2) {
        return Status::ParseError("IR: bad aggregate spec");
      }
      AggSpec spec;
      bool found = false;
      for (AggregateKind k :
           {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
            AggregateKind::kMax, AggregateKind::kAvg}) {
        if (a.items[0].atom == AggregateKindToString(k)) {
          spec.kind = k;
          found = true;
        }
      }
      if (!found) {
        return Status::ParseError("IR: unknown aggregate '" +
                                  a.items[0].atom + "'");
      }
      if (a.items.size() == 3) {
        CQ_ASSIGN_OR_RETURN(spec.input, ParseExprSexp(a.items[1]));
        spec.output_name = a.items[2].atom;
      } else {
        spec.output_name = a.items[1].atom;
      }
      aggs.push_back(std::move(spec));
    }
    CQ_ASSIGN_OR_RETURN(RelOpPtr child, ParsePlanSexp(s.items[3]));
    return RelOp::Aggregate(std::move(child), std::move(groups),
                            std::move(aggs));
  }
  if (tag == "distinct") {
    if (s.items.size() != 2) return Status::ParseError("IR: bad (distinct)");
    CQ_ASSIGN_OR_RETURN(RelOpPtr child, ParsePlanSexp(s.items[1]));
    return RelOp::Distinct(std::move(child));
  }
  if (tag == "union" || tag == "except" || tag == "intersect") {
    if (s.items.size() != 3) return Status::ParseError("IR: bad set op");
    CQ_ASSIGN_OR_RETURN(RelOpPtr l, ParsePlanSexp(s.items[1]));
    CQ_ASSIGN_OR_RETURN(RelOpPtr r, ParsePlanSexp(s.items[2]));
    if (tag == "union") return RelOp::Union(std::move(l), std::move(r));
    if (tag == "except") return RelOp::Except(std::move(l), std::move(r));
    return RelOp::Intersect(std::move(l), std::move(r));
  }
  return Status::ParseError("IR: unknown plan tag '" + tag + "'");
}

Result<S2RSpec> ParseWindowSexp(const Sexp& s) {
  if (s.is_atom || s.items.empty()) {
    return Status::ParseError("IR: bad window");
  }
  const std::string& tag = s.items[0].atom;
  if (tag == "range") {
    S2RSpec spec;
    CQ_ASSIGN_OR_RETURN(int64_t range, AtomInt(s.items[1]));
    Duration slide = 0;
    if (s.items.size() == 4 && s.items[2].atom == "slide") {
      CQ_ASSIGN_OR_RETURN(slide, AtomInt(s.items[3]));
    }
    return S2RSpec::Range(range, slide);
  }
  if (tag == "now") return S2RSpec::Now();
  if (tag == "unbounded") return S2RSpec::Unbounded();
  if (tag == "rows") {
    CQ_ASSIGN_OR_RETURN(int64_t n, AtomInt(s.items[1]));
    return S2RSpec::Rows(static_cast<size_t>(n));
  }
  if (tag == "prows") {
    if (s.items.size() != 3) return Status::ParseError("IR: bad (prows)");
    CQ_ASSIGN_OR_RETURN(std::vector<size_t> keys, IndexList(s.items[1]));
    CQ_ASSIGN_OR_RETURN(int64_t n, AtomInt(s.items[2]));
    return S2RSpec::PartitionedRows(std::move(keys),
                                    static_cast<size_t>(n));
  }
  return Status::ParseError("IR: unknown window tag '" + tag + "'");
}

}  // namespace

std::string SerializeExpr(const Expr& expr) {
  std::string out;
  RenderExpr(expr, &out);
  return out;
}

std::string SerializePlan(const RelOp& plan) {
  std::string out;
  RenderPlan(plan, &out);
  return out;
}

std::string SerializeQuery(const ContinuousQuery& query) {
  std::string out = "(query (windows";
  for (const auto& w : query.input_windows) {
    out += " ";
    RenderWindow(w, &out);
  }
  out += ") ";
  if (query.plan != nullptr) RenderPlan(*query.plan, &out);
  out += " (emit ";
  out += R2SKindToString(query.output);
  out += "))";
  return out;
}

Result<RelOpPtr> ParsePlanIr(const std::string& text) {
  SexpParser parser(text);
  CQ_ASSIGN_OR_RETURN(Sexp s, parser.Parse());
  return ParsePlanSexp(s);
}

Result<ContinuousQuery> ParseQueryIr(const std::string& text) {
  SexpParser parser(text);
  CQ_ASSIGN_OR_RETURN(Sexp s, parser.Parse());
  CQ_RETURN_NOT_OK(Expect(s, "query"));
  if (s.items.size() != 4) {
    return Status::ParseError("IR: (query ...) needs windows, plan, emit");
  }
  ContinuousQuery out;
  CQ_RETURN_NOT_OK(Expect(s.items[1], "windows"));
  for (size_t i = 1; i < s.items[1].items.size(); ++i) {
    CQ_ASSIGN_OR_RETURN(S2RSpec w, ParseWindowSexp(s.items[1].items[i]));
    out.input_windows.push_back(std::move(w));
  }
  CQ_ASSIGN_OR_RETURN(out.plan, ParsePlanSexp(s.items[2]));
  CQ_RETURN_NOT_OK(Expect(s.items[3], "emit"));
  if (s.items[3].items.size() != 2) {
    return Status::ParseError("IR: bad (emit ...)");
  }
  const std::string& kind = s.items[3].items[1].atom;
  if (kind == "IStream") {
    out.output = R2SKind::kIStream;
  } else if (kind == "DStream") {
    out.output = R2SKind::kDStream;
  } else if (kind == "RStream") {
    out.output = R2SKind::kRStream;
  } else if (kind == "Relation") {
    out.output = R2SKind::kRelation;
  } else {
    return Status::ParseError("IR: unknown emit kind '" + kind + "'");
  }
  return out;
}

}  // namespace cq

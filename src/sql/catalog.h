#ifndef CQ_SQL_CATALOG_H_
#define CQ_SQL_CATALOG_H_

/// \file catalog.h
/// \brief Stream/schema registry for the SQL frontend — the "manage data and
/// metadata directly through the declarative interface" aspect of streaming
/// databases (paper §5.1).

#include <map>
#include <string>

#include "common/status.h"
#include "types/schema.h"

namespace cq {

class Catalog {
 public:
  /// \brief Registers a named stream; AlreadyExists on duplicates.
  Status RegisterStream(const std::string& name, SchemaPtr schema) {
    if (streams_.count(name)) {
      return Status::AlreadyExists("stream '" + name + "' already registered");
    }
    streams_.emplace(name, std::move(schema));
    return Status::OK();
  }

  Result<SchemaPtr> GetStream(const std::string& name) const {
    auto it = streams_.find(name);
    if (it == streams_.end()) {
      return Status::NotFound("stream '" + name + "' is not registered");
    }
    return it->second;
  }

  Status DropStream(const std::string& name) {
    if (streams_.erase(name) == 0) {
      return Status::NotFound("stream '" + name + "' is not registered");
    }
    return Status::OK();
  }

  std::vector<std::string> StreamNames() const {
    std::vector<std::string> out;
    out.reserve(streams_.size());
    for (const auto& [name, schema] : streams_) out.push_back(name);
    return out;
  }

 private:
  std::map<std::string, SchemaPtr> streams_;
};

}  // namespace cq

#endif  // CQ_SQL_CATALOG_H_

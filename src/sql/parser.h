#ifndef CQ_SQL_PARSER_H_
#define CQ_SQL_PARSER_H_

/// \file parser.h
/// \brief Recursive-descent parser for the CQL dialect.
///
/// Grammar (Listing 1 style):
///
///   query     := SELECT [DISTINCT] select_list
///                FROM table_ref (',' table_ref)*
///                [WHERE expr] [GROUP BY column_list] [HAVING expr]
///                [EMIT (ISTREAM | DSTREAM | RSTREAM)]
///   table_ref := name [alias] [window]
///   window    := '[' RANGE duration [SLIDE duration]
///              | ROWS int | NOW | UNBOUNDED
///              | PARTITION BY column_list ROWS int ']'
///   duration  := int [MILLISECONDS|SECONDS|MINUTES|HOURS]
///
/// Expressions support comparison/arithmetic/AND/OR/NOT/IS NULL and the five
/// aggregates.

#include "common/status.h"
#include "sql/ast.h"

namespace cq {

/// \brief Parses one continuous query (a single SELECT).
Result<AstSelect> ParseQuery(const std::string& sql);

/// \brief Parses a compound query: SELECTs combined with UNION / EXCEPT /
/// INTERSECT (optionally ALL), left-associative, with one trailing EMIT.
Result<AstQuery> ParseCompoundQuery(const std::string& sql);

/// \brief Parses a standalone scalar expression (tests / tools).
Result<AstExprPtr> ParseExpression(const std::string& text);

}  // namespace cq

#endif  // CQ_SQL_PARSER_H_

#include "sql/planner.h"

#include "sql/parser.h"

namespace cq {

namespace {

Result<BinaryOp> MapBinaryOp(const std::string& op) {
  if (op == "+") return BinaryOp::kAdd;
  if (op == "-") return BinaryOp::kSub;
  if (op == "*") return BinaryOp::kMul;
  if (op == "/") return BinaryOp::kDiv;
  if (op == "%") return BinaryOp::kMod;
  if (op == "=") return BinaryOp::kEq;
  if (op == "<>") return BinaryOp::kNe;
  if (op == "<") return BinaryOp::kLt;
  if (op == "<=") return BinaryOp::kLe;
  if (op == ">") return BinaryOp::kGt;
  if (op == ">=") return BinaryOp::kGe;
  if (op == "AND") return BinaryOp::kAnd;
  if (op == "OR") return BinaryOp::kOr;
  return Status::PlanError("unknown operator '" + op + "'");
}

Result<size_t> ResolveColumn(const AstExpr& col, const Schema& schema) {
  std::string name =
      col.qualifier.empty() ? col.column : col.qualifier + "." + col.column;
  return schema.FieldIndex(name);
}

bool ContainsAggregate(const AstExpr& e) {
  if (e.kind == AstExpr::Kind::kAggregate) return true;
  if (e.left != nullptr && ContainsAggregate(*e.left)) return true;
  if (e.right != nullptr && ContainsAggregate(*e.right)) return true;
  return false;
}

ValueType InferType(const ExprPtr& expr, const Schema& schema) {
  switch (expr->kind()) {
    case Expr::Kind::kColumn: {
      size_t idx = static_cast<const ColumnRef&>(*expr).index();
      if (idx < schema.num_fields()) return schema.field(idx).type;
      return ValueType::kNull;
    }
    case Expr::Kind::kLiteral:
      return static_cast<const Literal&>(*expr).value().type();
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*expr);
      if (IsPredicateOp(b.op())) return ValueType::kBool;
      ValueType l = InferType(b.left(), schema);
      ValueType r = InferType(b.right(), schema);
      if (l == ValueType::kDouble || r == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      if (l == ValueType::kString) return ValueType::kString;
      return ValueType::kInt64;
    }
    case Expr::Kind::kNot:
    case Expr::Kind::kIsNull:
      return ValueType::kBool;
    default:
      return ValueType::kNull;
  }
}

}  // namespace

Result<ExprPtr> TranslateScalar(const AstExpr& ast, const Schema& schema) {
  switch (ast.kind) {
    case AstExpr::Kind::kColumn: {
      CQ_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(ast, schema));
      return Col(idx, ast.ToString());
    }
    case AstExpr::Kind::kLiteral:
      return Lit(ast.literal);
    case AstExpr::Kind::kBinary: {
      CQ_ASSIGN_OR_RETURN(BinaryOp op, MapBinaryOp(ast.op));
      CQ_ASSIGN_OR_RETURN(ExprPtr l, TranslateScalar(*ast.left, schema));
      CQ_ASSIGN_OR_RETURN(ExprPtr r, TranslateScalar(*ast.right, schema));
      return Bin(op, std::move(l), std::move(r));
    }
    case AstExpr::Kind::kNot: {
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, TranslateScalar(*ast.left, schema));
      return Not(std::move(inner));
    }
    case AstExpr::Kind::kIsNull: {
      CQ_ASSIGN_OR_RETURN(ExprPtr inner, TranslateScalar(*ast.left, schema));
      return ExprPtr(std::make_shared<IsNullExpr>(std::move(inner), ast.negated));
    }
    case AstExpr::Kind::kAggregate:
      return Status::PlanError(
          "aggregate '" + ast.ToString() +
          "' is not allowed here (only in SELECT or HAVING)");
    case AstExpr::Kind::kStar:
      return Status::PlanError("'*' is not a scalar expression");
  }
  return Status::Internal("unhandled AST expression kind");
}

namespace {

Result<S2RSpec> TranslateWindow(const AstWindow& w, const Schema& schema) {
  switch (w.kind) {
    case AstWindow::Kind::kDefaultUnbounded:
    case AstWindow::Kind::kUnbounded:
      return S2RSpec::Unbounded();
    case AstWindow::Kind::kRange:
      if (w.range <= 0) {
        return Status::PlanError("RANGE window length must be positive");
      }
      return S2RSpec::Range(w.range, w.slide);
    case AstWindow::Kind::kNow:
      return S2RSpec::Now();
    case AstWindow::Kind::kRows:
      if (w.rows <= 0) {
        return Status::PlanError("ROWS window size must be positive");
      }
      return S2RSpec::Rows(static_cast<size_t>(w.rows));
    case AstWindow::Kind::kPartitionedRows: {
      if (w.rows <= 0) {
        return Status::PlanError("ROWS window size must be positive");
      }
      std::vector<size_t> keys;
      for (const auto& col : w.partition_columns) {
        CQ_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(col));
        keys.push_back(idx);
      }
      return S2RSpec::PartitionedRows(std::move(keys),
                                      static_cast<size_t>(w.rows));
    }
  }
  return Status::Internal("unhandled window kind");
}

/// Rewrites a HAVING expression against the aggregate output schema:
/// aggregate sub-expressions become references to the matching aggregate
/// output column (matched by printed name); plain columns resolve normally.
Result<ExprPtr> TranslateHaving(const AstExpr& ast, const Schema& agg_schema) {
  if (ast.kind == AstExpr::Kind::kAggregate) {
    std::string name = ast.ToString();
    Result<size_t> idx = agg_schema.FieldIndex(name);
    if (!idx.ok()) {
      return Status::PlanError("HAVING references aggregate '" + name +
                               "' which is not computed by the query");
    }
    return Col(*idx, name);
  }
  switch (ast.kind) {
    case AstExpr::Kind::kColumn: {
      CQ_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(ast, agg_schema));
      return Col(idx, ast.ToString());
    }
    case AstExpr::Kind::kLiteral:
      return Lit(ast.literal);
    case AstExpr::Kind::kBinary: {
      CQ_ASSIGN_OR_RETURN(BinaryOp op, MapBinaryOp(ast.op));
      CQ_ASSIGN_OR_RETURN(ExprPtr l, TranslateHaving(*ast.left, agg_schema));
      CQ_ASSIGN_OR_RETURN(ExprPtr r, TranslateHaving(*ast.right, agg_schema));
      return Bin(op, std::move(l), std::move(r));
    }
    case AstExpr::Kind::kNot: {
      CQ_ASSIGN_OR_RETURN(ExprPtr inner,
                          TranslateHaving(*ast.left, agg_schema));
      return Not(std::move(inner));
    }
    case AstExpr::Kind::kIsNull: {
      CQ_ASSIGN_OR_RETURN(ExprPtr inner,
                          TranslateHaving(*ast.left, agg_schema));
      return ExprPtr(std::make_shared<IsNullExpr>(std::move(inner), ast.negated));
    }
    default:
      return Status::PlanError("unsupported expression in HAVING");
  }
}

}  // namespace

Result<PlannedQuery> PlanQuery(const AstSelect& ast, const Catalog& catalog) {
  if (ast.from.empty()) {
    return Status::PlanError("query needs at least one stream in FROM");
  }

  // 1. Bind FROM entries to input slots; build the combined schema.
  PlannedQuery out;
  std::vector<SchemaPtr> qualified;
  SchemaPtr combined;
  for (size_t i = 0; i < ast.from.size(); ++i) {
    const AstTableRef& ref = ast.from[i];
    CQ_ASSIGN_OR_RETURN(SchemaPtr base, catalog.GetStream(ref.name));
    SchemaPtr q = base->Qualified(ref.alias.empty() ? ref.name : ref.alias);
    CQ_ASSIGN_OR_RETURN(S2RSpec spec, TranslateWindow(ref.window, *q));
    out.query.input_windows.push_back(spec);
    out.input_streams.push_back(ref.name);
    qualified.push_back(q);
    combined = (i == 0) ? q : Schema::Concat(*combined, *q);
  }

  // 2. Left-deep cross products over the scans (the optimiser extracts
  //    equi-joins from the WHERE conjunction later).
  RelOpPtr plan = RelOp::Scan(0, qualified[0]);
  for (size_t i = 1; i < qualified.size(); ++i) {
    CQ_ASSIGN_OR_RETURN(
        plan, RelOp::ThetaJoin(plan, RelOp::Scan(i, qualified[i]), nullptr));
  }

  // 3. WHERE.
  if (ast.where != nullptr) {
    if (ContainsAggregate(*ast.where)) {
      return Status::PlanError("aggregates are not allowed in WHERE");
    }
    CQ_ASSIGN_OR_RETURN(ExprPtr pred, TranslateScalar(*ast.where, *combined));
    CQ_ASSIGN_OR_RETURN(plan, RelOp::Select(plan, std::move(pred)));
  }

  // 4. Aggregation.
  bool has_aggregates = !ast.group_by.empty();
  for (const auto& item : ast.items) {
    if (ContainsAggregate(*item.expr)) has_aggregates = true;
  }

  if (has_aggregates) {
    if (ast.select_star) {
      return Status::PlanError("SELECT * cannot be combined with aggregates");
    }
    std::vector<size_t> group_indexes;
    for (const auto& col : ast.group_by) {
      CQ_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(col, *combined));
      group_indexes.push_back(idx);
    }
    // Collect aggregates from the select list; validate non-aggregate items
    // are grouping columns.
    std::vector<AggSpec> aggs;
    struct OutputCol {
      bool is_group = false;
      size_t index = 0;  // group position or aggregate position
      std::string name;
      ValueType type = ValueType::kNull;
    };
    std::vector<OutputCol> output;
    for (const auto& item : ast.items) {
      const AstExpr& e = *item.expr;
      if (e.kind == AstExpr::Kind::kAggregate) {
        AggSpec spec;
        spec.kind = e.agg_kind;
        if (!e.agg_star && e.left != nullptr) {
          CQ_ASSIGN_OR_RETURN(spec.input, TranslateScalar(*e.left, *combined));
        }
        spec.output_name = e.ToString();
        OutputCol col;
        col.is_group = false;
        col.index = aggs.size();
        col.name = item.alias.empty() ? e.ToString() : item.alias;
        col.type = (e.agg_kind == AggregateKind::kCount) ? ValueType::kInt64
                                                         : ValueType::kDouble;
        if ((e.agg_kind == AggregateKind::kMin ||
             e.agg_kind == AggregateKind::kMax) &&
            spec.input != nullptr) {
          col.type = InferType(spec.input, *combined);
        }
        aggs.push_back(std::move(spec));
        output.push_back(std::move(col));
      } else if (e.kind == AstExpr::Kind::kColumn) {
        CQ_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(e, *combined));
        size_t pos = group_indexes.size();
        for (size_t g = 0; g < group_indexes.size(); ++g) {
          if (group_indexes[g] == idx) {
            pos = g;
            break;
          }
        }
        if (pos == group_indexes.size()) {
          return Status::PlanError("column '" + e.ToString() +
                                   "' must appear in GROUP BY");
        }
        OutputCol col;
        col.is_group = true;
        col.index = pos;
        col.name = item.alias.empty() ? e.ToString() : item.alias;
        col.type = combined->field(idx).type;
        output.push_back(std::move(col));
      } else {
        return Status::PlanError(
            "in an aggregating query, select items must be grouping columns "
            "or aggregates");
      }
    }
    CQ_ASSIGN_OR_RETURN(plan, RelOp::Aggregate(plan, group_indexes, aggs));

    // 5. HAVING over the aggregate's output.
    if (ast.having != nullptr) {
      CQ_ASSIGN_OR_RETURN(ExprPtr pred,
                          TranslateHaving(*ast.having, *plan->schema()));
      CQ_ASSIGN_OR_RETURN(plan, RelOp::Select(plan, std::move(pred)));
    }

    // 6. Project into select-list order. Aggregate output layout: group
    // columns first, then aggregates.
    std::vector<ExprPtr> projections;
    std::vector<Field> fields;
    for (const auto& col : output) {
      size_t idx =
          col.is_group ? col.index : group_indexes.size() + col.index;
      projections.push_back(Col(idx, col.name));
      fields.push_back({col.name, col.type});
    }
    CQ_ASSIGN_OR_RETURN(plan, RelOp::Project(plan, std::move(projections),
                                             std::move(fields)));
  } else if (!ast.select_star) {
    if (ast.having != nullptr) {
      return Status::PlanError("HAVING requires aggregation");
    }
    std::vector<ExprPtr> projections;
    std::vector<Field> fields;
    for (const auto& item : ast.items) {
      CQ_ASSIGN_OR_RETURN(ExprPtr e, TranslateScalar(*item.expr, *combined));
      std::string name =
          item.alias.empty() ? item.expr->ToString() : item.alias;
      fields.push_back({name, InferType(e, *combined)});
      projections.push_back(std::move(e));
    }
    CQ_ASSIGN_OR_RETURN(plan, RelOp::Project(plan, std::move(projections),
                                             std::move(fields)));
  } else if (ast.having != nullptr) {
    return Status::PlanError("HAVING requires aggregation");
  }

  if (ast.distinct) {
    CQ_ASSIGN_OR_RETURN(plan, RelOp::Distinct(plan));
  }

  out.query.plan = plan;
  out.query.output = ast.emit;
  out.output_schema = plan->schema();
  return out;
}

namespace {

/// Rebuilds a plan with all Scan slots shifted by `offset` (used when
/// flattening the branches of a compound query into one input space).
RelOpPtr OffsetScans(const RelOpPtr& plan, size_t offset) {
  if (plan->kind() == RelOpKind::kScan) {
    return RelOp::Scan(plan->input_index() + offset, plan->schema());
  }
  std::vector<RelOpPtr> children;
  children.reserve(plan->children().size());
  for (const auto& c : plan->children()) {
    children.push_back(OffsetScans(c, offset));
  }
  return plan->WithChildren(std::move(children));
}

}  // namespace

Result<PlannedQuery> PlanCompoundQuery(const AstQuery& ast,
                                       const Catalog& catalog) {
  if (ast.op == AstQuery::SetOp::kNone) {
    if (ast.select == nullptr) {
      return Status::PlanError("compound query leaf has no SELECT");
    }
    CQ_ASSIGN_OR_RETURN(PlannedQuery out, PlanQuery(*ast.select, catalog));
    out.query.output = ast.emit;
    return out;
  }
  if (ast.left == nullptr || ast.right == nullptr) {
    return Status::PlanError("set operation requires two branches");
  }
  CQ_ASSIGN_OR_RETURN(PlannedQuery left, PlanCompoundQuery(*ast.left, catalog));
  CQ_ASSIGN_OR_RETURN(PlannedQuery right,
                      PlanCompoundQuery(*ast.right, catalog));
  size_t offset = left.query.input_windows.size();
  RelOpPtr right_plan = OffsetScans(right.query.plan, offset);

  RelOpPtr combined;
  switch (ast.op) {
    case AstQuery::SetOp::kUnion: {
      CQ_ASSIGN_OR_RETURN(combined, RelOp::Union(left.query.plan, right_plan));
      break;
    }
    case AstQuery::SetOp::kExcept: {
      CQ_ASSIGN_OR_RETURN(combined,
                          RelOp::Except(left.query.plan, right_plan));
      break;
    }
    case AstQuery::SetOp::kIntersect: {
      CQ_ASSIGN_OR_RETURN(combined,
                          RelOp::Intersect(left.query.plan, right_plan));
      break;
    }
    case AstQuery::SetOp::kNone:
      return Status::Internal("unreachable");
  }
  if (!ast.all) {
    CQ_ASSIGN_OR_RETURN(combined, RelOp::Distinct(combined));
  }

  PlannedQuery out;
  out.query.plan = combined;
  out.query.input_windows = left.query.input_windows;
  out.query.input_windows.insert(out.query.input_windows.end(),
                                 right.query.input_windows.begin(),
                                 right.query.input_windows.end());
  out.input_streams = left.input_streams;
  out.input_streams.insert(out.input_streams.end(),
                           right.input_streams.begin(),
                           right.input_streams.end());
  out.query.output = ast.emit;
  out.output_schema = combined->schema();
  return out;
}

Result<PlannedQuery> PlanSql(const std::string& sql, const Catalog& catalog) {
  CQ_ASSIGN_OR_RETURN(AstQuery ast, ParseCompoundQuery(sql));
  return PlanCompoundQuery(ast, catalog);
}

}  // namespace cq

#include "net/frame.h"

#include <arpa/inet.h>
#include <errno.h>
#include <unistd.h>

#include <cstring>

namespace cq::net {

std::string EncodeFrame(std::string_view payload) {
  uint32_t be = htonl(static_cast<uint32_t>(payload.size()));
  std::string wire(reinterpret_cast<const char*>(&be), sizeof(be));
  wire.append(payload);
  return wire;
}

Result<bool> FrameReader::Next(std::string* out) {
  const size_t avail = buf_.size() - pos_;
  if (avail < sizeof(uint32_t)) return false;
  uint32_t be = 0;
  std::memcpy(&be, buf_.data() + pos_, sizeof(be));
  const uint32_t len = ntohl(be);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxFrameBytes) + " cap");
  }
  if (avail < sizeof(uint32_t) + len) return false;
  out->assign(buf_, pos_ + sizeof(uint32_t), len);
  pos_ += sizeof(uint32_t) + len;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

void WriteBuffer::Append(std::string_view wire) {
  if (wire.empty()) return;
  size_ += wire.size();
  // Coalesce small frames into the tail chunk so FlushTo issues fewer
  // writes; big payloads get their own chunk to avoid re-copying.
  if (!chunks_.empty() && chunks_.back().size() + wire.size() <= 16384 &&
      (chunks_.size() > 1 || head_offset_ == 0)) {
    chunks_.back().append(wire);
  } else {
    chunks_.emplace_back(wire);
  }
}

Status WriteBuffer::FlushTo(int fd, bool* would_block) {
  *would_block = false;
  while (!chunks_.empty()) {
    const std::string& head = chunks_.front();
    const char* p = head.data() + head_offset_;
    size_t len = head.size() - head_offset_;
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;
        return Status::OK();
      }
      return Status::IOError("write: " + std::string(strerror(errno)));
    }
    size_ -= static_cast<size_t>(n);
    head_offset_ += static_cast<size_t>(n);
    if (head_offset_ == head.size()) {
      chunks_.pop_front();
      head_offset_ = 0;
    } else {
      // Short write: the socket buffer is full even though write didn't
      // say EAGAIN outright; treat it the same way.
      *would_block = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

void WriteBuffer::Clear() {
  chunks_.clear();
  head_offset_ = 0;
  size_ = 0;
}

}  // namespace cq::net

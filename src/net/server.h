#ifndef CQ_NET_SERVER_H_
#define CQ_NET_SERVER_H_

/// \file server.h
/// \brief The async front door: one epoll loop multiplexing every client,
/// subscriber feed and observability scrape.
///
/// Layout (one thread owns everything below the listener):
///
///              accept (level-triggered)
///   listener ──────────────────────────► Connection (edge-triggered)
///                                          ├─ FrameReader   ◄─ read until EAGAIN
///                                          ├─ dispatcher    (length-prefixed text
///                                          │                 protocol, or HTTP GET
///                                          │                 sniffed on first bytes)
///                                          └─ WriteBuffer   ─► write until EAGAIN,
///                                                              EPOLLOUT on demand
///   SubscriberMux ── Pump() on loop tick ──► per-connection WriteBuffers
///        │              (egress token gate per tenant)
///        └─ slow-consumer watch: pending > watermark for > grace ⇒ evict
///
/// The wire protocol is the query_server protocol (uint32 big-endian length
/// + text payload) extended with:
///
///   TENANT <name>          bind this connection to a tenant (default
///                          "default"); REGISTER admission and egress pacing
///                          use that tenant's quota
///   LISTEN <qid>           push-mode subscription: results arrive unpolled
///                          as "DATA <sid> t=<ts> <tuple>" frames, then
///                          "CLOSED <sid>" when the query is dropped
///   STREAM <name> <cols> [key=<col,...>]
///                          the optional key names shard-key columns
///                          (sharded backend only)
///
/// Quota semantics: a tenant over its egress budget is *throttled* — the mux
/// stops copying its frames and results back up in the bounded subscription
/// channels (dropping there, counted per subscription, once credits run
/// out). Throttling never closes a connection. Eviction is reserved for
/// consumers that stop reading: a connection whose write backlog stays above
/// the high watermark for the whole eviction grace is closed and its feeds
/// cancelled.
///
/// Graceful drain (SIGTERM → ShutdownAsync, one async-signal-safe write to
/// the loop's eventfd): stop accepting, run every feed dry through the mux
/// (egress gate bypassed — quota throttling must not hold the process
/// hostage), flush write buffers until empty or the drain deadline, run the
/// drain hook (the embedding process checkpoints and publishes staged fence
/// frames there), then close everything and return from Run().

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/backend.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/quotas.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cq::net {

/// \brief Destination for multiplexed subscriber frames. Real connections
/// implement this over their WriteBuffer; benches and tests plug in mock
/// sinks, so 10k subscribers need no file descriptors.
class MuxSink {
 public:
  virtual ~MuxSink() = default;
  /// \brief Accepts wire bytes for eventual delivery. False means the sink
  /// is defunct (its entry will be dropped).
  virtual bool Deliver(std::string_view wire) = 0;
  /// \brief Bytes accepted but not yet handed to the consumer — the
  /// slow-consumer watermark reads this.
  virtual size_t PendingBytes() const = 0;
};

struct MuxConfig {
  /// A sink whose backlog exceeds this stops receiving new frames...
  size_t write_high_watermark = 1u << 20;  // 1 MiB
  /// ...and is evicted if the backlog stays above it this long.
  int64_t eviction_grace_ns = 2'000'000'000;  // 2 s
  /// Optional per-tenant egress pacing (not owned; may be null).
  TenantQuotas* quotas = nullptr;
  /// Optional registry for cq_net_subscribers / cq_net_evicted_total.
  MetricsRegistry* metrics = nullptr;
};

/// \brief Drains bounded subscription channels into sinks, with per-tenant
/// egress pacing and slow-consumer eviction. Single-threaded: Pump runs on
/// the owner's loop (or the bench's driver thread).
class SubscriberMux {
 public:
  explicit SubscriberMux(MuxConfig config);

  /// \brief Registers a feed: frames render as "DATA <sid> ..." and deliver
  /// to `sink` (not owned; must outlive the entry). Returns the entry id.
  uint64_t Add(uint64_t sid, std::string tenant,
               std::unique_ptr<SubscriberFeed> feed, MuxSink* sink);

  /// \brief Drops every entry delivering to `sink`, cancelling the feeds
  /// (connection teardown and eviction both land here).
  void RemoveSink(MuxSink* sink);

  /// \brief Invoked (after the pump pass) for each sink whose backlog
  /// out-stayed the eviction grace. The handler owns the consequence —
  /// a server closes the connection and calls RemoveSink.
  void SetEvictHandler(std::function<void(MuxSink*)> handler) {
    evict_handler_ = std::move(handler);
  }

  /// \brief One pump pass at `now_ns`: per entry, deliver staged frames and
  /// drain the feed until it runs dry, the tenant runs out of egress
  /// tokens, or the sink crosses the high watermark. Returns frames
  /// delivered.
  size_t Pump(int64_t now_ns);

  /// \brief Drain-path pump: every feed run dry and delivered with the
  /// egress gate bypassed. No eviction. Returns frames delivered.
  size_t FlushAll();

  size_t NumEntries() const { return entries_.size(); }
  uint64_t frames_delivered() const { return frames_delivered_; }
  uint64_t num_evicted() const { return num_evicted_; }

 private:
  struct Entry {
    uint64_t sid = 0;
    std::string tenant;
    std::unique_ptr<SubscriberFeed> feed;
    MuxSink* sink = nullptr;
    /// Rendered wire frames awaiting egress tokens (carry across pumps).
    std::deque<std::string> staged;
    bool closed_notified = false;
  };
  struct SinkState {
    int64_t over_since_ns = -1;  // -1 = under the watermark
  };

  /// Renders feed output into entry->staged; returns false when the feed is
  /// exhausted AND closed (entry ready for removal once staged drains).
  void StageFromFeed(Entry* entry);
  /// Delivers staged frames; stops on token exhaustion unless `force`.
  void DeliverStaged(Entry* entry, int64_t now_ns, bool force);

  MuxConfig config_;
  std::map<uint64_t, Entry> entries_;  // entry id -> entry
  std::map<MuxSink*, SinkState> sinks_;
  uint64_t next_entry_id_ = 1;
  uint64_t frames_delivered_ = 0;
  uint64_t num_evicted_ = 0;
  std::function<void(MuxSink*)> evict_handler_;
  Gauge* subscribers_gauge_ = nullptr;
  Counter* evicted_counter_ = nullptr;
};

struct ServerConfig {
  /// 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Per-connection write backlog that marks a slow consumer.
  size_t write_high_watermark = 1u << 20;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Bounding
  /// the kernel queue makes the user-space backlog (and therefore
  /// slow-consumer detection) responsive instead of hiding megabytes of
  /// lag in autotuned socket buffers.
  int so_sndbuf = 0;
  /// How long a consumer may stay slow before eviction.
  int64_t eviction_grace_ms = 2000;
  /// Pump / timer cadence of the loop.
  int tick_ms = 10;
  /// Wall-clock bound on the graceful-drain flush phase.
  int64_t drain_deadline_ms = 5000;
  /// Tenant quotas (not owned). Null = server-private unlimited instance.
  TenantQuotas* quotas = nullptr;
  /// Registry for cq_net_* instruments (not owned; may be null).
  MetricsRegistry* metrics = nullptr;
};

/// \brief The epoll front door over one ServiceBackend.
class Server {
 public:
  Server(ServiceBackend* backend, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Binds and listens on 127.0.0.1:config.port (SOMAXCONN backlog)
  /// and initialises the loop. port() is valid afterwards.
  Status Init();

  uint16_t port() const { return port_; }

  /// \brief Registers an HTTP GET route served on the *same* port and loop
  /// (the obs::HttpEndpoint route set plugs in here). HTTP requests are
  /// sniffed by first bytes: "GET " cannot be a frame header under the
  /// 1 MiB cap.
  void AddHttpRoute(std::string path, std::string content_type,
                    std::function<std::string()> handler);

  /// \brief Runs the loop until a shutdown request completes its drain.
  /// Blocks the calling thread.
  void Run();

  /// \brief Requests graceful drain. Async-signal-safe (one eventfd write):
  /// call it from the SIGTERM handler or any thread.
  void ShutdownAsync() { loop_.Wake(1); }

  /// \brief Runs between "every subscriber flushed" and "connections
  /// closed" during drain — the embedding process triggers its barrier
  /// checkpoint here so staged fence frames publish before exit.
  void SetDrainHook(std::function<Status()> hook) {
    drain_hook_ = std::move(hook);
  }

  size_t NumConnections() const { return conns_.size(); }
  SubscriberMux* mux() { return &mux_; }
  TenantQuotas* quotas() { return quotas_; }

 private:
  class Connection;
  friend class Connection;

  void HandleAccept();
  void HandleConnEvent(int fd, uint32_t events);
  void CloseConnection(Connection* conn, const std::string& reason);
  /// Flushes `conn`'s write buffer; arms/disarms EPOLLOUT as needed.
  /// Returns false when the connection died (and was closed).
  bool FlushConnection(Connection* conn);
  void OnTick();
  void BeginDrain();
  /// Tick-driven drain progress check; stops the loop when flushed or the
  /// deadline passes.
  void ContinueDrain();

  std::string DispatchCommand(Connection* conn, const std::string& line);
  std::string HandleHttp(Connection* conn, const std::string& request);

  ServiceBackend* backend_;  // not owned
  ServerConfig config_;
  EventLoop loop_;
  SubscriberMux mux_;
  TenantQuotas* quotas_;  // config_.quotas or &owned_quotas_
  TenantQuotas owned_quotas_;
  int listener_ = -1;
  uint16_t port_ = 0;
  std::map<int, std::unique_ptr<Connection>> conns_;
  /// Which tenant registered each query (DROP releases that tenant's slot).
  std::map<cq::QueryId, std::string> query_tenant_;
  struct HttpRoute {
    std::string content_type;
    std::function<std::string()> handler;
  };
  std::map<std::string, HttpRoute> http_routes_;
  std::function<Status()> drain_hook_;
  bool draining_ = false;
  int64_t drain_deadline_ns_ = 0;

  // cq_net_* instruments (null without a registry).
  Gauge* connections_gauge_ = nullptr;
  Counter* accepted_counter_ = nullptr;
  Counter* frames_counter_ = nullptr;
  Histogram* accept_us_ = nullptr;
  Histogram* read_us_ = nullptr;
  Histogram* write_us_ = nullptr;
};

// --- Protocol helpers (shared with tests and the example binary) -----------

/// \brief Splits a comma-separated list (no escaping; empty fields kept).
std::vector<std::string> SplitCsv(const std::string& s);

/// \brief Parses "name:type,..." (int64, double, string, bool) to a schema.
Result<SchemaPtr> ParseSchema(const std::string& spec);

/// \brief Parses a CSV row against `schema`.
Result<Tuple> ParseRow(const std::string& csv, const Schema& schema);

}  // namespace cq::net

#endif  // CQ_NET_SERVER_H_

#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>

#include "obs/flight_recorder.h"

namespace cq::net {

// --- Protocol helpers -------------------------------------------------------

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

Result<SchemaPtr> ParseSchema(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& part : SplitCsv(spec)) {
    size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad column spec '" + part +
                                     "' (want name:type)");
    }
    std::string name = part.substr(0, colon);
    std::string type = part.substr(colon + 1);
    if (type == "int64") {
      fields.push_back({name, ValueType::kInt64});
    } else if (type == "double") {
      fields.push_back({name, ValueType::kDouble});
    } else if (type == "string") {
      fields.push_back({name, ValueType::kString});
    } else if (type == "bool") {
      fields.push_back({name, ValueType::kBool});
    } else {
      return Status::InvalidArgument("unknown type '" + type + "'");
    }
  }
  return Schema::Make(std::move(fields));
}

Result<Tuple> ParseRow(const std::string& csv, const Schema& schema) {
  std::vector<std::string> fields = SplitCsv(csv);
  if (fields.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(fields.size()) + " fields, schema wants " +
        std::to_string(schema.num_fields()));
  }
  std::vector<Value> values;
  values.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    try {
      switch (schema.field(i).type) {
        case ValueType::kInt64:
          values.emplace_back(static_cast<int64_t>(std::stoll(f)));
          break;
        case ValueType::kDouble:
          values.emplace_back(std::stod(f));
          break;
        case ValueType::kBool:
          values.emplace_back(f == "true" || f == "1");
          break;
        default:
          values.emplace_back(f);
          break;
      }
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad value '" + f + "' for column " +
                                     std::to_string(i));
    }
  }
  return Tuple(std::move(values));
}

namespace {

/// Parses an unsigned decimal id; the wire protocol must not throw on
/// garbage input.
Result<uint64_t> ParseId(const std::string& s) {
  if (s.empty()) return Status::InvalidArgument("missing id");
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad id '" + s + "'");
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument("id '" + s + "' out of range");
    }
    v = v * 10 + digit;
  }
  return v;
}

Result<int64_t> ParseTimestamp(const std::string& s) {
  bool neg = !s.empty() && s[0] == '-';
  CQ_ASSIGN_OR_RETURN(uint64_t v, ParseId(neg ? s.substr(1) : s));
  return neg ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
}

/// The frame path is capped at kMaxFrameBytes; HTTP requests need their own
/// (much smaller) bound so a header that never terminates cannot grow a
/// connection's read buffer without limit.
constexpr size_t kMaxHttpHeaderBytes = 8 * 1024;

std::string HttpResponse(const char* status_line,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

// --- SubscriberMux ----------------------------------------------------------

SubscriberMux::SubscriberMux(MuxConfig config) : config_(config) {
  if (config_.metrics != nullptr) {
    subscribers_gauge_ = config_.metrics->GetGauge("cq_net_subscribers");
    evicted_counter_ = config_.metrics->GetCounter("cq_net_evicted_total");
  }
}

uint64_t SubscriberMux::Add(uint64_t sid, std::string tenant,
                            std::unique_ptr<SubscriberFeed> feed,
                            MuxSink* sink) {
  uint64_t id = next_entry_id_++;
  Entry entry;
  entry.sid = sid;
  entry.tenant = std::move(tenant);
  entry.feed = std::move(feed);
  entry.sink = sink;
  entries_.emplace(id, std::move(entry));
  sinks_.try_emplace(sink);
  if (subscribers_gauge_) subscribers_gauge_->Set(entries_.size());
  return id;
}

void SubscriberMux::RemoveSink(MuxSink* sink) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.sink == sink) {
      if (it->second.feed) it->second.feed->Cancel();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  sinks_.erase(sink);
  if (subscribers_gauge_) subscribers_gauge_->Set(entries_.size());
}

void SubscriberMux::StageFromFeed(Entry* entry) {
  StreamBatch batch;
  while (entry->feed->TryPoll(&batch)) {
    for (const auto& e : batch) {
      if (!e.is_record()) continue;
      entry->staged.push_back(EncodeFrame(
          "DATA " + std::to_string(entry->sid) + " t=" +
          std::to_string(e.timestamp) + " " + e.tuple.ToString()));
    }
  }
  if (entry->feed->Closed() && !entry->closed_notified) {
    entry->staged.push_back(
        EncodeFrame("CLOSED " + std::to_string(entry->sid)));
    entry->closed_notified = true;
  }
}

void SubscriberMux::DeliverStaged(Entry* entry, int64_t now_ns, bool force) {
  while (!entry->staged.empty()) {
    const std::string& frame = entry->staged.front();
    if (config_.quotas != nullptr) {
      if (force) {
        // Drain path: the gate is bypassed but the per-tenant egress
        // accounting stays truthful.
        config_.quotas->NoteEgress(entry->tenant, frame.size());
      } else if (!config_.quotas->TryConsumeEgress(entry->tenant,
                                                   frame.size(), now_ns)) {
        return;  // throttled: the frame stays staged for a later pump
      }
    }
    entry->sink->Deliver(frame);
    entry->staged.pop_front();
    frames_delivered_++;
  }
}

size_t SubscriberMux::Pump(int64_t now_ns) {
  const uint64_t before = frames_delivered_;

  // Watermark pass: decide per sink whether it may receive more bytes, and
  // find consumers that out-stayed the eviction grace.
  std::vector<MuxSink*> victims;
  for (auto& [sink, state] : sinks_) {
    if (sink->PendingBytes() > config_.write_high_watermark) {
      if (state.over_since_ns < 0) {
        state.over_since_ns = now_ns;
      } else if (now_ns - state.over_since_ns > config_.eviction_grace_ns) {
        victims.push_back(sink);
      }
    } else {
      state.over_since_ns = -1;
    }
  }

  for (auto& [id, entry] : entries_) {
    auto sit = sinks_.find(entry.sink);
    if (sit != sinks_.end() && sit->second.over_since_ns >= 0) {
      continue;  // backed up: stop copying, let the channel absorb (or drop)
    }
    StageFromFeed(&entry);
    DeliverStaged(&entry, now_ns, /*force=*/false);
  }

  // Entries whose feed closed and whose frames all shipped are done.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.closed_notified && it->second.staged.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (subscribers_gauge_) subscribers_gauge_->Set(entries_.size());

  for (MuxSink* sink : victims) {
    num_evicted_++;
    if (evicted_counter_) evicted_counter_->Increment();
    FlightRecorder::Global().Record("net", "evict", "slow consumer",
                                    static_cast<int64_t>(sink->PendingBytes()),
                                    static_cast<int64_t>(
                                        config_.write_high_watermark));
    if (evict_handler_) {
      evict_handler_(sink);  // handler calls RemoveSink (closing the conn)
    } else {
      RemoveSink(sink);
    }
  }
  return frames_delivered_ - before;
}

size_t SubscriberMux::FlushAll() {
  const uint64_t before = frames_delivered_;
  for (auto& [id, entry] : entries_) {
    StageFromFeed(&entry);
    DeliverStaged(&entry, /*now_ns=*/0, /*force=*/true);
  }
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.closed_notified && it->second.staged.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (subscribers_gauge_) subscribers_gauge_->Set(entries_.size());
  return frames_delivered_ - before;
}

// --- Server::Connection -----------------------------------------------------

/// One accepted socket: framing state, write backlog, tenant binding and
/// poll-mode subscriptions. Push-mode (LISTEN) feeds live in the mux, which
/// delivers into this object through the MuxSink interface.
class Server::Connection : public MuxSink {
 public:
  Connection(Server* server, int fd) : server_(server), fd_(fd) {}

  bool Deliver(std::string_view wire) override {
    wbuf_.Append(wire);
    return true;
  }
  size_t PendingBytes() const override { return wbuf_.size(); }

  Server* server_;
  int fd_;
  FrameReader reader_;
  WriteBuffer wbuf_;
  std::string tenant_ = "default";
  bool is_http_ = false;
  bool protocol_known_ = false;
  bool close_after_flush_ = false;
  bool out_armed_ = false;
  uint64_t next_sub_handle_ = 1;
  /// SUBSCRIBE/POLL-mode feeds, drained on client request.
  std::map<uint64_t, std::unique_ptr<SubscriberFeed>> poll_subs_;
};

// --- Server -----------------------------------------------------------------

Server::Server(ServiceBackend* backend, ServerConfig config)
    : backend_(backend),
      config_(config),
      mux_(MuxConfig{config.write_high_watermark,
                     config.eviction_grace_ms * 1'000'000,
                     config.quotas != nullptr ? config.quotas : &owned_quotas_,
                     config.metrics}),
      quotas_(config.quotas != nullptr ? config.quotas : &owned_quotas_) {
  if (config_.metrics != nullptr) {
    connections_gauge_ = config_.metrics->GetGauge("cq_net_connections");
    accepted_counter_ =
        config_.metrics->GetCounter("cq_net_accepted_total");
    frames_counter_ = config_.metrics->GetCounter("cq_net_frames_total");
    accept_us_ = config_.metrics->GetHistogram("cq_net_accept_us");
    read_us_ = config_.metrics->GetHistogram("cq_net_read_us");
    write_us_ = config_.metrics->GetHistogram("cq_net_write_us");
  }
  mux_.SetEvictHandler([this](MuxSink* sink) {
    CloseConnection(static_cast<Connection*>(sink), "slow consumer evicted");
  });
}

Server::~Server() {
  if (listener_ >= 0) ::close(listener_);
  for (auto& [fd, conn] : conns_) ::close(fd);
}

Status Server::Init() {
  CQ_RETURN_NOT_OK(loop_.Init());
  listener_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listener_ < 0) {
    return Status::IOError("socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener_, SOMAXCONN) < 0) {
    Status st =
        Status::IOError("bind/listen: " + std::string(strerror(errno)));
    ::close(listener_);
    listener_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = config_.port;
  }
  // Level-triggered: one accept burst per wakeup, kernel re-reports backlog.
  CQ_RETURN_NOT_OK(
      loop_.Add(listener_, EPOLLIN, [this](uint32_t) { HandleAccept(); }));
  loop_.SetWakeHandler([this](uint64_t) { BeginDrain(); });
  return Status::OK();
}

void Server::AddHttpRoute(std::string path, std::string content_type,
                          std::function<std::string()> handler) {
  http_routes_[std::move(path)] =
      HttpRoute{std::move(content_type), std::move(handler)};
}

void Server::Run() {
  loop_.Run(config_.tick_ms, [this] { OnTick(); });
}

void Server::HandleAccept() {
  ScopedTimer timer(accept_us_);
  while (true) {
    int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: burst drained (or listener closed)
    }
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                   sizeof(config_.so_sndbuf));
    }
    auto conn = std::make_unique<Connection>(this, fd);
    Status st = loop_.Add(fd, EPOLLIN | EPOLLET, [this, fd](uint32_t events) {
      HandleConnEvent(fd, events);
    });
    if (!st.ok()) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    if (accepted_counter_) accepted_counter_->Increment();
    if (connections_gauge_) connections_gauge_->Set(conns_.size());
    FlightRecorder::Global().Record("net", "accept", "", fd,
                                    static_cast<int64_t>(conns_.size()));
  }
}

void Server::HandleConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();

  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(conn, "hangup");
    return;
  }

  if (events & EPOLLIN) {
    ScopedTimer timer(read_us_);
    char buf[4096];
    bool eof = false;
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn->reader_.Append(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn, std::string("read: ") + strerror(errno));
      return;
    }

    if (!conn->protocol_known_ && conn->reader_.buffered_bytes() >= 4) {
      // An HTTP request line cannot be a frame header: "GET " decodes as a
      // length far beyond the 1 MiB cap.
      conn->is_http_ = conn->reader_.unconsumed().substr(0, 4) == "GET ";
      conn->protocol_known_ = true;
    }

    if (conn->is_http_) {
      std::string_view req = conn->reader_.unconsumed();
      if (req.find("\r\n\r\n") != std::string_view::npos) {
        std::string response = HandleHttp(conn, std::string(req));
        conn->wbuf_.Append(response);
        conn->close_after_flush_ = true;
      } else if (!conn->close_after_flush_ &&
                 conn->reader_.buffered_bytes() > kMaxHttpHeaderBytes) {
        // A request line that never terminates must not buffer without
        // bound. Reject, stop reading (SHUT_RD caps further inbound bytes
        // at the kernel), and release what accumulated.
        conn->reader_.Clear();
        ::shutdown(fd, SHUT_RD);
        conn->wbuf_.Append(
            HttpResponse("431 Request Header Fields Too Large", "text/plain",
                         "header too large\n"));
        conn->close_after_flush_ = true;
      } else if (eof && !conn->close_after_flush_) {
        CloseConnection(conn, "http eof before request end");
        return;
      }
    } else {
      std::string line;
      while (true) {
        auto next = conn->reader_.Next(&line);
        if (!next.ok()) {
          conn->wbuf_.Append(
              EncodeFrame("ERR " + next.status().ToString()));
          conn->close_after_flush_ = true;
          break;
        }
        if (!*next) break;
        if (frames_counter_) frames_counter_->Increment();
        if (line == "QUIT" || line.rfind("QUIT ", 0) == 0) {
          conn->wbuf_.Append(EncodeFrame("OK bye"));
          conn->close_after_flush_ = true;
          break;
        }
        conn->wbuf_.Append(EncodeFrame(DispatchCommand(conn, line)));
      }
      // Commands that pushed data should reach push-mode listeners without
      // waiting a tick.
      mux_.Pump(MonotonicNanos());
      // The pump's evict handler may have closed connections — including
      // this one (a LISTENer over the watermark past its grace). Re-resolve
      // before touching `conn` again; no accept ran in between, so finding
      // the fd means finding the same connection.
      if (conns_.find(fd) == conns_.end()) return;
      for (auto it2 = conns_.begin(); it2 != conns_.end();) {
        Connection* other = (it2++)->second.get();  // flush may erase
        if (other != conn && !other->wbuf_.empty()) FlushConnection(other);
      }
    }

    if (!FlushConnection(conn)) return;
    if (eof) {
      CloseConnection(conn, "eof");
      return;
    }
  }

  if (events & EPOLLOUT) {
    if (!FlushConnection(conn)) return;
  }
}

bool Server::FlushConnection(Connection* conn) {
  ScopedTimer timer(write_us_);
  bool would_block = false;
  Status st = conn->wbuf_.FlushTo(conn->fd_, &would_block);
  if (!st.ok()) {
    CloseConnection(conn, st.ToString());
    return false;
  }
  if (would_block && !conn->out_armed_) {
    conn->out_armed_ = true;
    (void)loop_.Modify(conn->fd_, EPOLLIN | EPOLLOUT | EPOLLET);
  } else if (!would_block && conn->out_armed_) {
    conn->out_armed_ = false;
    (void)loop_.Modify(conn->fd_, EPOLLIN | EPOLLET);
  }
  if (conn->close_after_flush_ && conn->wbuf_.empty()) {
    CloseConnection(conn, "closed by protocol");
    return false;
  }
  return true;
}

void Server::CloseConnection(Connection* conn, const std::string& reason) {
  const int fd = conn->fd_;
  mux_.RemoveSink(conn);
  for (auto& [sid, feed] : conn->poll_subs_) feed->Cancel();
  conn->poll_subs_.clear();
  loop_.Remove(fd);
  ::close(fd);
  conns_.erase(fd);
  if (connections_gauge_) connections_gauge_->Set(conns_.size());
  FlightRecorder::Global().Record("net", "close", reason, fd,
                                  static_cast<int64_t>(conns_.size()));
}

void Server::OnTick() {
  if (draining_) {
    ContinueDrain();
    return;
  }
  mux_.Pump(MonotonicNanos());
  // The pump filled write buffers; push what the sockets will take.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = (it++)->second.get();  // FlushConnection may erase
    if (!conn->wbuf_.empty() || conn->close_after_flush_) {
      FlushConnection(conn);
    }
  }
}

void Server::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  FlightRecorder::Global().Record("net", "drain_begin", "",
                                  static_cast<int64_t>(conns_.size()),
                                  static_cast<int64_t>(mux_.NumEntries()));
  if (listener_ >= 0) {
    loop_.Remove(listener_);
    ::close(listener_);
    listener_ = -1;
  }
  // Run every subscriber feed dry, egress gate bypassed: quota throttling
  // must not hold the drain hostage.
  mux_.FlushAll();
  drain_deadline_ns_ = MonotonicNanos() + config_.drain_deadline_ms * 1'000'000;
  ContinueDrain();
}

void Server::ContinueDrain() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection* conn = (it++)->second.get();  // flush may erase
    if (!conn->wbuf_.empty()) FlushConnection(conn);
  }
  size_t pending = 0;
  for (const auto& [fd, conn] : conns_) pending += conn->wbuf_.size();
  if (pending > 0 && MonotonicNanos() < drain_deadline_ns_) {
    return;  // keep ticking; sockets may accept more next round
  }
  if (drain_hook_) {
    Status st = drain_hook_();
    if (!st.ok()) {
      std::fprintf(stderr, "drain hook: %s\n", st.ToString().c_str());
    }
    drain_hook_ = nullptr;
  }
  while (!conns_.empty()) {
    CloseConnection(conns_.begin()->second.get(), "drain");
  }
  FlightRecorder::Global().Record("net", "drain_complete", "",
                                  static_cast<int64_t>(pending), 0);
  loop_.Stop();
}

// --- Command dispatch -------------------------------------------------------

std::string Server::DispatchCommand(Connection* conn, const std::string& line) {
  size_t space = line.find(' ');
  std::string cmd = line.substr(0, space);
  std::string rest = space == std::string::npos ? "" : line.substr(space + 1);

  if (cmd == "TENANT") {
    if (rest.empty()) return "ERR want: TENANT name";
    conn->tenant_ = rest;
    return "OK tenant=" + rest;
  }
  if (cmd == "STREAM") {
    size_t s1 = rest.find(' ');
    if (s1 == std::string::npos) return "ERR want: STREAM name cols [key=...]";
    std::string name = rest.substr(0, s1);
    std::string cols = rest.substr(s1 + 1);
    std::string key_spec;
    size_t s2 = cols.find(' ');
    if (s2 != std::string::npos) {
      std::string tail = cols.substr(s2 + 1);
      cols.resize(s2);
      if (tail.rfind("key=", 0) != 0) return "ERR trailing junk '" + tail + "'";
      key_spec = tail.substr(4);
    }
    auto schema = ParseSchema(cols);
    if (!schema.ok()) return "ERR " + schema.status().ToString();
    std::vector<size_t> shard_key;
    if (!key_spec.empty()) {
      for (const std::string& col : SplitCsv(key_spec)) {
        bool found = false;
        for (size_t i = 0; i < (*schema)->num_fields(); ++i) {
          if ((*schema)->field(i).name == col) {
            shard_key.push_back(i);
            found = true;
            break;
          }
        }
        if (!found) return "ERR no column '" + col + "' in schema";
      }
    }
    Status st = backend_->RegisterStream(name, *schema, std::move(shard_key));
    return st.ok() ? "OK" : "ERR " + st.ToString();
  }
  if (cmd == "REGISTER") {
    // Tenant admission rides on top of the service's own caps: charge the
    // tenant for the state its existing queries hold, then reserve a slot.
    size_t tenant_state = 0;
    for (const auto& [qid, owner] : query_tenant_) {
      if (owner != conn->tenant_) continue;
      auto bytes = backend_->QueryStateBytes(qid);
      if (bytes.ok()) tenant_state += *bytes;
    }
    Status admit = quotas_->AdmitQuery(conn->tenant_, tenant_state);
    if (!admit.ok()) {
      FlightRecorder::Global().Record("net", "quota_reject", conn->tenant_,
                                      static_cast<int64_t>(tenant_state), 0);
      return "ERR " + admit.ToString();
    }
    auto id = backend_->RegisterQuery(rest);
    if (!id.ok()) {
      quotas_->ReleaseQuery(conn->tenant_);
      return "ERR " + id.status().ToString();
    }
    query_tenant_[*id] = conn->tenant_;
    return "OK id=" + std::to_string(*id);
  }
  if (cmd == "DROP") {
    auto id = ParseId(rest);
    if (!id.ok()) return "ERR " + id.status().ToString();
    Status st = backend_->DropQuery(*id);
    if (!st.ok()) return "ERR " + st.ToString();
    auto owner = query_tenant_.find(*id);
    if (owner != query_tenant_.end()) {
      quotas_->ReleaseQuery(owner->second);
      query_tenant_.erase(owner);
    }
    return "OK";
  }
  if (cmd == "SUBSCRIBE") {
    auto id = ParseId(rest);
    if (!id.ok()) return "ERR " + id.status().ToString();
    auto feed = backend_->Subscribe(*id);
    if (!feed.ok()) return "ERR " + feed.status().ToString();
    uint64_t sid = conn->next_sub_handle_++;
    conn->poll_subs_[sid] = std::move(*feed);
    return "OK sub=" + std::to_string(sid);
  }
  if (cmd == "LISTEN") {
    auto id = ParseId(rest);
    if (!id.ok()) return "ERR " + id.status().ToString();
    auto feed = backend_->Subscribe(*id);
    if (!feed.ok()) return "ERR " + feed.status().ToString();
    uint64_t sid = conn->next_sub_handle_++;
    mux_.Add(sid, conn->tenant_, std::move(*feed), conn);
    return "OK sub=" + std::to_string(sid) + " push";
  }
  if (cmd == "POLL") {
    auto sid = ParseId(rest);
    if (!sid.ok()) return "ERR " + sid.status().ToString();
    auto it = conn->poll_subs_.find(*sid);
    if (it == conn->poll_subs_.end()) return "ERR no such subscription";
    size_t n = 0;
    StreamBatch batch;
    while (it->second->TryPoll(&batch)) {
      for (const auto& e : batch) {
        if (!e.is_record()) continue;
        conn->wbuf_.Append(
            EncodeFrame("DATA t=" + std::to_string(e.timestamp) + " " +
                        e.tuple.ToString()));
        ++n;
      }
    }
    std::string tail = "OK n=" + std::to_string(n);
    if (it->second->Closed() && it->second->Depth() == 0) {
      tail += " closed";
      conn->poll_subs_.erase(it);
    }
    return tail;
  }
  if (cmd == "PUSH") {
    size_t s1 = rest.find(' ');
    size_t s2 = rest.find(' ', s1 + 1);
    if (s1 == std::string::npos || s2 == std::string::npos) {
      return "ERR want: PUSH stream ts v1,v2,...";
    }
    std::string stream = rest.substr(0, s1);
    auto ts = ParseTimestamp(rest.substr(s1 + 1, s2 - s1 - 1));
    if (!ts.ok()) return "ERR " + ts.status().ToString();
    auto schema = backend_->StreamSchema(stream);
    if (!schema.ok()) return "ERR " + schema.status().ToString();
    auto tuple = ParseRow(rest.substr(s2 + 1), **schema);
    if (!tuple.ok()) return "ERR " + tuple.status().ToString();
    Status st = backend_->PushRecord(stream, *tuple, *ts);
    return st.ok() ? "OK" : "ERR " + st.ToString();
  }
  if (cmd == "WATERMARK") {
    size_t s1 = rest.find(' ');
    if (s1 == std::string::npos) return "ERR want: WATERMARK stream ts";
    auto ts = ParseTimestamp(rest.substr(s1 + 1));
    if (!ts.ok()) return "ERR " + ts.status().ToString();
    Status st = backend_->PushWatermark(rest.substr(0, s1), *ts);
    return st.ok() ? "OK" : "ERR " + st.ToString();
  }
  if (cmd == "STATS") {
    std::string out =
        "OK operators=" + std::to_string(backend_->NumOperators()) +
        " active_queries=" + std::to_string(backend_->NumActiveQueries()) +
        " connections=" + std::to_string(conns_.size()) +
        " subscribers=" + std::to_string(mux_.NumEntries());
    for (const auto& info : backend_->ListQueries()) {
      out += "\nquery " + std::to_string(info.id) +
             " state=" + QueryStateToString(info.state) +
             " nodes=" + std::to_string(info.nodes_total) +
             " reused=" + std::to_string(info.nodes_reused) +
             " sql=" + info.sql;
    }
    return out;
  }
  return "ERR unknown command '" + cmd + "'";
}

// --- HTTP on the same loop --------------------------------------------------

std::string Server::HandleHttp(Connection* conn, const std::string& request) {
  (void)conn;
  size_t eol = request.find("\r\n");
  std::string line = request.substr(0, eol);
  if (line.rfind("GET ", 0) != 0) {
    return HttpResponse("405 Method Not Allowed", "text/plain", "GET only\n");
  }
  size_t path_end = line.find(' ', 4);
  std::string path = line.substr(
      4, path_end == std::string::npos ? std::string::npos : path_end - 4);
  size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  auto it = http_routes_.find(path);
  if (it == http_routes_.end()) {
    std::string known = "not found; known paths:\n";
    for (const auto& [p, r] : http_routes_) known += "  " + p + "\n";
    return HttpResponse("404 Not Found", "text/plain", known);
  }
  return HttpResponse("200 OK", it->second.content_type,
                      it->second.handler());
}

}  // namespace cq::net

#ifndef CQ_NET_FRAME_H_
#define CQ_NET_FRAME_H_

/// \file frame.h
/// \brief Wire framing for the query-server protocol, decoupled from any
/// file descriptor.
///
/// The protocol is length-prefixed text: a uint32 big-endian frame length
/// followed by that many payload bytes. The blocking demo server could
/// afford `read(fd, exactly 4)`; an edge-triggered epoll loop cannot — a
/// readable socket may hold half a header, three frames and a fragment, or
/// nothing at all. FrameReader is the incremental half: feed it whatever
/// recv produced and pop complete frames as they materialise, with the
/// partial remainder buffered across readiness events. WriteBuffer is the
/// outbound half: frames queue as contiguous wire bytes and drain through
/// non-blocking writes that may stop anywhere, with the high-watermark
/// bookkeeping slow-consumer eviction is built on.

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/status.h"

namespace cq::net {

/// Frames larger than this are a protocol violation (and, on the inbound
/// side, the usual signature of a non-protocol client such as an HTTP GET
/// landing on the wrong port).
constexpr uint32_t kMaxFrameBytes = 1u << 20;  // 1 MiB

/// \brief Renders `payload` as wire bytes: u32 big-endian length + payload.
std::string EncodeFrame(std::string_view payload);

/// \brief Incremental decoder for length-prefixed frames.
///
/// Usage per readiness event: Append() every chunk recv returned, then loop
/// Next() until it returns false. Oversized or torn input surfaces as an
/// error from Next(), at which point the connection should be dropped — the
/// stream cannot re-synchronise.
class FrameReader {
 public:
  /// \brief Buffers `data` (any split: mid-header, mid-payload, many
  /// frames at once).
  void Append(std::string_view data) { buf_.append(data); }

  /// \brief Pops the next complete frame into `out`. Returns false when no
  /// complete frame is buffered yet; InvalidArgument when the announced
  /// length exceeds kMaxFrameBytes.
  Result<bool> Next(std::string* out);

  /// \brief Bytes buffered but not yet consumed as frames.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

  /// \brief The raw unconsumed head of the buffer (protocol sniffing: an
  /// HTTP request line is not a frame header).
  std::string_view unconsumed() const {
    return std::string_view(buf_).substr(pos_);
  }

  /// \brief Drops all buffered bytes (connection teardown / rejected input).
  void Clear() {
    buf_.clear();
    pos_ = 0;
  }

 private:
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix; compacted once it outgrows the tail
};

/// \brief Outbound byte queue with partial-write resumption.
///
/// Append() enqueues wire bytes; FlushTo() writes as much as the socket
/// accepts and keeps the remainder. size() is the pending backlog — the
/// quantity the server's slow-consumer watermark watches.
class WriteBuffer {
 public:
  void Append(std::string_view wire);

  /// \brief Writes pending bytes to `fd` until drained or the socket stops
  /// accepting (EAGAIN). Returns IOError on a hard socket error (the
  /// connection is dead); ok otherwise. `*would_block` reports whether
  /// unsent bytes remain (caller arms EPOLLOUT).
  Status FlushTo(int fd, bool* would_block);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// \brief Drops all pending bytes (connection teardown).
  void Clear();

 private:
  std::deque<std::string> chunks_;
  size_t head_offset_ = 0;  // sent prefix of chunks_.front()
  size_t size_ = 0;
};

}  // namespace cq::net

#endif  // CQ_NET_FRAME_H_

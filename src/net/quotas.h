#ifndef CQ_NET_QUOTAS_H_
#define CQ_NET_QUOTAS_H_

/// \file quotas.h
/// \brief TenantQuotas: per-tenant admission control and egress pacing.
///
/// The service layer's caps (ServiceConfig::max_queries / max_state_bytes)
/// protect the *process*; a shared front door also has to protect tenants
/// from each other. Each connection names a tenant and every tenant gets
/// three independent budgets:
///
///  - query count     checked at REGISTER admission, released on DROP;
///  - state bytes     checked at REGISTER admission against the tenant's
///                    currently resident operator state (the caller supplies
///                    the measurement — QueryService::QueryStateBytes);
///  - egress bandwidth a token bucket (bytes/sec rate + burst) consulted by
///                    the subscriber mux before any frame is copied into a
///                    connection's write buffer. Running dry *throttles*
///                    the tenant — its result batches wait in the bounded
///                    subscription channels (and drop there under sustained
///                    overrun, counted per subscription) — it never evicts
///                    the connection. Eviction is reserved for subscribers
///                    that stop reading the socket.
///
/// Zero means unlimited for every field, so an unconfigured tenant is
/// admitted freely. Time is injected (nanosecond now) so token-bucket tests
/// run on a manual clock.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace cq::net {

struct TenantQuota {
  /// Concurrent registered (non-dropped) queries; 0 = unlimited.
  size_t max_queries = 0;
  /// Resident operator state bytes attributed to the tenant; 0 = unlimited.
  size_t max_state_bytes = 0;
  /// Egress token-bucket refill rate in bytes/sec; 0 = unlimited.
  uint64_t egress_bytes_per_sec = 0;
  /// Egress bucket capacity; 0 defaults to one second of rate.
  uint64_t egress_burst_bytes = 0;
};

class TenantQuotas {
 public:
  /// \brief With a registry, exports cq_net_egress_bytes_total{tenant=},
  /// cq_net_egress_throttled_total{tenant=} and
  /// cq_net_quota_rejected_total{tenant=}. Must outlive this object.
  explicit TenantQuotas(MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {}

  /// \brief Installs (or replaces) `tenant`'s quota.
  void SetQuota(const std::string& tenant, TenantQuota quota);

  /// \brief Quota applied to tenants without an explicit SetQuota.
  void SetDefaultQuota(TenantQuota quota);

  /// \brief REGISTER admission: OutOfRange when the tenant is at its query
  /// cap or `resident_state_bytes` (its currently attributed operator
  /// state) already meets its state cap. Success reserves one query slot.
  Status AdmitQuery(const std::string& tenant, size_t resident_state_bytes);

  /// \brief Releases one query slot (DROP, or rollback after a failed
  /// registration).
  void ReleaseQuery(const std::string& tenant);

  /// \brief Egress gate: consumes `bytes` tokens if available. False means
  /// the tenant is over its bandwidth budget right now — the caller leaves
  /// the data queued and retries after refill. Unlimited tenants always
  /// pass. A frame larger than the burst is admitted once the bucket is
  /// full (the bucket goes negative and repays over future refills) so an
  /// oversized frame is paced, never wedged. `now_ns` is a monotonic clock
  /// reading.
  bool TryConsumeEgress(const std::string& tenant, uint64_t bytes,
                        int64_t now_ns);

  /// \brief Records `bytes` of egress without consulting (or charging) the
  /// token bucket — the graceful-drain path bypasses pacing but keeps the
  /// per-tenant accounting truthful.
  void NoteEgress(const std::string& tenant, uint64_t bytes);

  /// \brief Registered (non-released) queries for `tenant`.
  size_t ActiveQueries(const std::string& tenant) const;

  /// \brief Total egress bytes granted to `tenant`.
  uint64_t EgressGranted(const std::string& tenant) const;

  /// \brief Times TryConsumeEgress refused `tenant` for lack of tokens.
  uint64_t ThrottledCount(const std::string& tenant) const;

 private:
  struct TenantState {
    TenantQuota quota;
    bool has_quota = false;  // explicit SetQuota vs default
    size_t active_queries = 0;
    double tokens = 0;        // current bucket level, bytes
    bool bucket_started = false;  // first consult starts the bucket full
    int64_t refill_ns = 0;    // last refill instant
    uint64_t egress_granted = 0;
    uint64_t throttled = 0;
    Counter* egress_counter = nullptr;
    Counter* throttled_counter = nullptr;
    Counter* rejected_counter = nullptr;
  };

  TenantState* StateLocked(const std::string& tenant);
  const TenantQuota& QuotaOf(const TenantState& ts) const {
    return ts.has_quota ? ts.quota : default_quota_;
  }
  static uint64_t BurstOf(const TenantQuota& q) {
    return q.egress_burst_bytes != 0 ? q.egress_burst_bytes
                                     : q.egress_bytes_per_sec;
  }

  mutable std::mutex mu_;
  MetricsRegistry* metrics_;
  TenantQuota default_quota_;
  std::map<std::string, TenantState> tenants_;
};

}  // namespace cq::net

#endif  // CQ_NET_QUOTAS_H_

#ifndef CQ_NET_EVENT_LOOP_H_
#define CQ_NET_EVENT_LOOP_H_

/// \file event_loop.h
/// \brief EventLoop: a single-threaded epoll readiness loop.
///
/// The front door's reactor. One thread owns the epoll instance and every
/// registered fd; callbacks run on that thread, so connection state needs no
/// locking. Registration style follows the kernel's:
///
///  - the listener registers level-triggered (EPOLLIN): accept one burst per
///    wakeup and let the kernel re-report the backlog;
///  - connections register edge-triggered (EPOLLIN | EPOLLET, EPOLLOUT
///    armed on demand): each event means "drain until EAGAIN", which is what
///    FrameReader/WriteBuffer are built for.
///
/// Cross-thread (and async-signal-safe) interaction goes through one
/// eventfd: Wake(token) is a single write(2) — legal from a signal handler —
/// and the loop hands the token to the wake handler on its own thread. The
/// loop also ticks: epoll_wait runs with a bounded timeout and invokes the
/// tick handler between bursts, which is where token buckets refill and
/// slow-consumer grace periods expire.

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "common/status.h"

namespace cq::net {

class EventLoop {
 public:
  /// Receives the ready event mask (EPOLLIN / EPOLLOUT / EPOLLHUP / ...).
  using FdCallback = std::function<void(uint32_t events)>;

  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// \brief Creates the epoll instance and the wake eventfd.
  Status Init();

  /// \brief Registers `fd` for `events` (EPOLL* mask). The callback stays
  /// until Remove.
  Status Add(int fd, uint32_t events, FdCallback cb);

  /// \brief Changes the armed event mask for a registered fd.
  Status Modify(int fd, uint32_t events);

  /// \brief Unregisters `fd` (does not close it). Safe mid-dispatch: a
  /// removed fd's still-queued events are dropped.
  void Remove(int fd);

  /// \brief Runs until Stop(): dispatch ready fds, then call `tick` (if
  /// set) at least every `tick_ms`.
  void Run(int tick_ms, const std::function<void()>& tick);

  /// \brief Ends Run() after the current dispatch round (loop thread only;
  /// other threads use Wake and stop from the wake handler).
  void Stop() { running_ = false; }

  /// \brief Async-signal-safe nudge: adds `token` to the wake counter and
  /// makes the loop call the wake handler. Callable from any thread or from
  /// a signal handler.
  void Wake(uint64_t token = 1);

  /// \brief Handler for Wake tokens; receives the sum of tokens since the
  /// last delivery. Set before Run.
  void SetWakeHandler(std::function<void(uint64_t)> handler) {
    wake_handler_ = std::move(handler);
  }

  int epoll_fd() const { return epoll_fd_; }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool running_ = false;
  bool in_dispatch_ = false;
  /// Fds registered while dispatching the current epoll_wait batch: the
  /// kernel recycled a number closed earlier in the round, so any event
  /// still queued under it is for the *old* fd and is suppressed.
  std::set<int> added_this_round_;
  std::map<int, FdCallback> callbacks_;
  std::function<void(uint64_t)> wake_handler_;
};

}  // namespace cq::net

#endif  // CQ_NET_EVENT_LOOP_H_

#include "net/quotas.h"

#include <algorithm>

namespace cq::net {

TenantQuotas::TenantState* TenantQuotas::StateLocked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, TenantState{}).first;
    if (metrics_ != nullptr) {
      LabelSet labels{{"tenant", tenant}};
      it->second.egress_counter =
          metrics_->GetCounter("cq_net_egress_bytes_total", labels);
      it->second.throttled_counter =
          metrics_->GetCounter("cq_net_egress_throttled_total", labels);
      it->second.rejected_counter =
          metrics_->GetCounter("cq_net_quota_rejected_total", labels);
    }
  }
  return &it->second;
}

void TenantQuotas::SetQuota(const std::string& tenant, TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* ts = StateLocked(tenant);
  ts->quota = quota;
  ts->has_quota = true;
  // Restart the bucket full so a freshly configured tenant gets its burst.
  ts->tokens = static_cast<double>(BurstOf(quota));
  ts->bucket_started = false;
}

void TenantQuotas::SetDefaultQuota(TenantQuota quota) {
  std::lock_guard<std::mutex> lock(mu_);
  default_quota_ = quota;
}

Status TenantQuotas::AdmitQuery(const std::string& tenant,
                                size_t resident_state_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* ts = StateLocked(tenant);
  const TenantQuota& q = QuotaOf(*ts);
  if (q.max_queries != 0 && ts->active_queries >= q.max_queries) {
    if (ts->rejected_counter) ts->rejected_counter->Increment();
    return Status::OutOfRange("tenant '" + tenant + "' is at its quota of " +
                              std::to_string(q.max_queries) + " queries");
  }
  if (q.max_state_bytes != 0 && resident_state_bytes >= q.max_state_bytes) {
    if (ts->rejected_counter) ts->rejected_counter->Increment();
    return Status::OutOfRange(
        "tenant '" + tenant + "' holds " +
        std::to_string(resident_state_bytes) + " state bytes, at its quota of " +
        std::to_string(q.max_state_bytes));
  }
  ts->active_queries++;
  return Status::OK();
}

void TenantQuotas::ReleaseQuery(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* ts = StateLocked(tenant);
  if (ts->active_queries > 0) ts->active_queries--;
}

bool TenantQuotas::TryConsumeEgress(const std::string& tenant, uint64_t bytes,
                                    int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* ts = StateLocked(tenant);
  const TenantQuota& q = QuotaOf(*ts);
  if (q.egress_bytes_per_sec == 0) {
    ts->egress_granted += bytes;
    if (ts->egress_counter) ts->egress_counter->Increment(bytes);
    return true;
  }
  const double burst = static_cast<double>(BurstOf(q));
  if (!ts->bucket_started) {
    // First consult: start full.
    ts->tokens = burst;
    ts->bucket_started = true;
  } else if (now_ns > ts->refill_ns) {
    const double elapsed_s =
        static_cast<double>(now_ns - ts->refill_ns) / 1e9;
    ts->tokens = std::min(
        burst, ts->tokens + elapsed_s *
                                static_cast<double>(q.egress_bytes_per_sec));
  }
  ts->refill_ns = now_ns;
  // A frame larger than the burst could never pass a plain `tokens >= bytes`
  // gate — it would wedge its subscription's staged queue forever. Clamp the
  // requirement to the bucket capacity (a full bucket admits any one frame)
  // but charge the real size: tokens go negative and the tenant pays the
  // debt across future refills, preserving the long-run rate.
  const double need =
      std::min(static_cast<double>(bytes), burst);
  if (ts->tokens < need) {
    ts->throttled++;
    if (ts->throttled_counter) ts->throttled_counter->Increment();
    return false;
  }
  ts->tokens -= static_cast<double>(bytes);
  ts->egress_granted += bytes;
  if (ts->egress_counter) ts->egress_counter->Increment(bytes);
  return true;
}

void TenantQuotas::NoteEgress(const std::string& tenant, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState* ts = StateLocked(tenant);
  ts->egress_granted += bytes;
  if (ts->egress_counter) ts->egress_counter->Increment(bytes);
}

size_t TenantQuotas::ActiveQueries(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.active_queries;
}

uint64_t TenantQuotas::EgressGranted(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.egress_granted;
}

uint64_t TenantQuotas::ThrottledCount(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.throttled;
}

}  // namespace cq::net

#include "net/backend.h"

namespace cq::net {

namespace {

/// SubscriberFeed over a single-service subscription.
class LocalFeed : public SubscriberFeed {
 public:
  explicit LocalFeed(SubscriptionPtr sub) : sub_(std::move(sub)) {}
  bool TryPoll(StreamBatch* out) override { return sub_->TryPoll(out); }
  void Cancel() override { sub_->Cancel(); }
  bool Closed() const override { return sub_->closed(); }
  size_t Depth() const override { return sub_->depth(); }
  uint64_t QueryId() const override { return sub_->query_id(); }

 private:
  SubscriptionPtr sub_;
};

/// SubscriberFeed over a shard-merged subscription.
class ShardedFeed : public SubscriberFeed {
 public:
  explicit ShardedFeed(shard::ShardedSubscriptionPtr sub)
      : sub_(std::move(sub)) {}
  bool TryPoll(StreamBatch* out) override { return sub_->TryPoll(out); }
  void Cancel() override { sub_->Cancel(); }
  bool Closed() const override {
    for (size_t i = 0; i < sub_->num_replicas(); ++i) {
      if (!sub_->replica(i)->closed()) return false;
    }
    return true;
  }
  size_t Depth() const override {
    size_t total = 0;
    for (size_t i = 0; i < sub_->num_replicas(); ++i) {
      total += sub_->replica(i)->depth();
    }
    return total;
  }
  uint64_t QueryId() const override { return sub_->query_id(); }

 private:
  shard::ShardedSubscriptionPtr sub_;
};

}  // namespace

// --- LocalBackend -----------------------------------------------------------

Status LocalBackend::RegisterStream(const std::string& name, SchemaPtr schema,
                                    std::vector<size_t> shard_key) {
  if (!shard_key.empty()) {
    return Status::InvalidArgument(
        "stream '" + name +
        "' declares a shard key but the server runs unsharded (use --shards)");
  }
  return svc_->RegisterStream(name, std::move(schema));
}

Result<cq::QueryId> LocalBackend::RegisterQuery(const std::string& sql) {
  return svc_->RegisterQuery(sql);
}

Status LocalBackend::DropQuery(cq::QueryId id) { return svc_->DropQuery(id); }

Result<std::unique_ptr<SubscriberFeed>> LocalBackend::Subscribe(
    cq::QueryId id) {
  CQ_ASSIGN_OR_RETURN(SubscriptionPtr sub, svc_->Subscribe(id));
  return std::unique_ptr<SubscriberFeed>(new LocalFeed(std::move(sub)));
}

Status LocalBackend::PushRecord(const std::string& stream, Tuple tuple,
                                Timestamp ts) {
  return svc_->PushRecord(stream, std::move(tuple), ts);
}

Status LocalBackend::PushWatermark(const std::string& stream,
                                   Timestamp watermark) {
  return svc_->PushWatermark(stream, watermark);
}

Result<SchemaPtr> LocalBackend::StreamSchema(const std::string& name) const {
  return svc_->catalog().GetStream(name);
}

Result<size_t> LocalBackend::QueryStateBytes(cq::QueryId id) const {
  return svc_->QueryStateBytes(id);
}

std::vector<QueryInfo> LocalBackend::ListQueries() const {
  return svc_->ListQueries();
}

size_t LocalBackend::NumOperators() const { return svc_->NumOperators(); }

size_t LocalBackend::NumActiveQueries() const {
  return svc_->NumActiveQueries();
}

// --- ShardedBackend ---------------------------------------------------------

Status ShardedBackend::RegisterStream(const std::string& name, SchemaPtr schema,
                                      std::vector<size_t> shard_key) {
  return svc_->RegisterStream(name, std::move(schema), std::move(shard_key));
}

Result<cq::QueryId> ShardedBackend::RegisterQuery(const std::string& sql) {
  return svc_->RegisterQuery(sql);
}

Status ShardedBackend::DropQuery(cq::QueryId id) { return svc_->DropQuery(id); }

Result<std::unique_ptr<SubscriberFeed>> ShardedBackend::Subscribe(
    cq::QueryId id) {
  CQ_ASSIGN_OR_RETURN(shard::ShardedSubscriptionPtr sub, svc_->Subscribe(id));
  return std::unique_ptr<SubscriberFeed>(new ShardedFeed(std::move(sub)));
}

Status ShardedBackend::PushRecord(const std::string& stream, Tuple tuple,
                                  Timestamp ts) {
  return svc_->PushRecord(stream, std::move(tuple), ts);
}

Status ShardedBackend::PushWatermark(const std::string& stream,
                                     Timestamp watermark) {
  return svc_->PushWatermark(stream, watermark);
}

Result<SchemaPtr> ShardedBackend::StreamSchema(const std::string& name) const {
  return svc_->replica(0)->catalog().GetStream(name);
}

Result<size_t> ShardedBackend::QueryStateBytes(cq::QueryId id) const {
  return svc_->QueryStateBytes(id);
}

std::vector<QueryInfo> ShardedBackend::ListQueries() const {
  return svc_->replica(0)->ListQueries();
}

size_t ShardedBackend::NumOperators() const {
  return svc_->replica(0)->NumOperators();
}

size_t ShardedBackend::NumActiveQueries() const {
  return svc_->NumActiveQueries();
}

}  // namespace cq::net

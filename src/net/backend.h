#ifndef CQ_NET_BACKEND_H_
#define CQ_NET_BACKEND_H_

/// \file backend.h
/// \brief ServiceBackend: the front door's view of a query service.
///
/// net::Server speaks one protocol whether it fronts a single QueryService
/// or a ShardedQueryService — the two differ in registration signatures
/// (shard keys), subscription types (SubscriptionPtr vs the merged
/// ShardedSubscription) and inspection plumbing. ServiceBackend flattens
/// both behind the handful of verbs the wire protocol needs; SubscriberFeed
/// is the matching abstraction over "a drainable result feed". The server
/// layer holds these interfaces only, so neither src/service nor src/shard
/// depends on src/net (or vice versa at the type level).

#include <memory>
#include <string>
#include <vector>

#include "service/service.h"
#include "shard/sharded_service.h"

namespace cq::net {

/// \brief One query's drainable output feed (local or shard-merged).
class SubscriberFeed {
 public:
  virtual ~SubscriberFeed() = default;
  /// \brief Non-blocking pop of the next queued batch.
  virtual bool TryPoll(StreamBatch* out) = 0;
  /// \brief Detaches the feed; the sink garbage collects it.
  virtual void Cancel() = 0;
  /// \brief True once the producing query closed the feed (DropQuery).
  virtual bool Closed() const = 0;
  /// \brief Queued batches not yet drained.
  virtual size_t Depth() const = 0;
  virtual uint64_t QueryId() const = 0;
};

/// \brief The service verbs the wire protocol dispatches into.
class ServiceBackend {
 public:
  virtual ~ServiceBackend() = default;

  /// \brief `shard_key` is column indexes into `schema`; must be empty on a
  /// backend without sharding.
  virtual Status RegisterStream(const std::string& name, SchemaPtr schema,
                                std::vector<size_t> shard_key) = 0;
  virtual Result<cq::QueryId> RegisterQuery(const std::string& sql) = 0;
  virtual Status DropQuery(cq::QueryId id) = 0;
  virtual Result<std::unique_ptr<SubscriberFeed>> Subscribe(cq::QueryId id) = 0;
  virtual Status PushRecord(const std::string& stream, Tuple tuple,
                            Timestamp ts) = 0;
  virtual Status PushWatermark(const std::string& stream,
                               Timestamp watermark) = 0;

  virtual Result<SchemaPtr> StreamSchema(const std::string& name) const = 0;
  /// \brief Resident state attributed to one query (tenant quota input).
  virtual Result<size_t> QueryStateBytes(cq::QueryId id) const = 0;
  virtual std::vector<QueryInfo> ListQueries() const = 0;
  virtual size_t NumOperators() const = 0;
  virtual size_t NumActiveQueries() const = 0;
};

/// \brief Backend over one QueryService.
class LocalBackend : public ServiceBackend {
 public:
  explicit LocalBackend(QueryService* svc) : svc_(svc) {}

  Status RegisterStream(const std::string& name, SchemaPtr schema,
                        std::vector<size_t> shard_key) override;
  Result<cq::QueryId> RegisterQuery(const std::string& sql) override;
  Status DropQuery(cq::QueryId id) override;
  Result<std::unique_ptr<SubscriberFeed>> Subscribe(cq::QueryId id) override;
  Status PushRecord(const std::string& stream, Tuple tuple,
                    Timestamp ts) override;
  Status PushWatermark(const std::string& stream, Timestamp watermark) override;
  Result<SchemaPtr> StreamSchema(const std::string& name) const override;
  Result<size_t> QueryStateBytes(cq::QueryId id) const override;
  std::vector<QueryInfo> ListQueries() const override;
  size_t NumOperators() const override;
  size_t NumActiveQueries() const override;

 private:
  QueryService* svc_;  // not owned
};

/// \brief Backend over a ShardedQueryService: records route by shard key,
/// subscriptions merge across replicas, inspection reads replica 0 (the
/// registry is asserted identical across replicas).
class ShardedBackend : public ServiceBackend {
 public:
  explicit ShardedBackend(shard::ShardedQueryService* svc) : svc_(svc) {}

  Status RegisterStream(const std::string& name, SchemaPtr schema,
                        std::vector<size_t> shard_key) override;
  Result<cq::QueryId> RegisterQuery(const std::string& sql) override;
  Status DropQuery(cq::QueryId id) override;
  Result<std::unique_ptr<SubscriberFeed>> Subscribe(cq::QueryId id) override;
  Status PushRecord(const std::string& stream, Tuple tuple,
                    Timestamp ts) override;
  Status PushWatermark(const std::string& stream, Timestamp watermark) override;
  Result<SchemaPtr> StreamSchema(const std::string& name) const override;
  Result<size_t> QueryStateBytes(cq::QueryId id) const override;
  std::vector<QueryInfo> ListQueries() const override;
  size_t NumOperators() const override;
  size_t NumActiveQueries() const override;

 private:
  shard::ShardedQueryService* svc_;  // not owned
};

}  // namespace cq::net

#endif  // CQ_NET_BACKEND_H_

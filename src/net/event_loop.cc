#include "net/event_loop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace cq::net {

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  if (epoll_fd_ >= 0) return Status::Internal("event loop already initialised");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError("epoll_create1: " + std::string(strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status st =
        Status::IOError("eventfd: " + std::string(strerror(errno)));
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return st;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Status::IOError("epoll_ctl(wake): " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status EventLoop::Add(int fd, uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::IOError("epoll_ctl(add): " + std::string(strerror(errno)));
  }
  callbacks_[fd] = std::move(cb);
  // A registration made while dispatching can only mean the kernel recycled
  // a number closed earlier in the same round; any event still queued for
  // that number belongs to the old fd and must not reach the new callback
  // (an old EPOLLHUP would close a freshly accepted connection).
  if (in_dispatch_) added_this_round_.insert(fd);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::IOError("epoll_ctl(mod): " + std::string(strerror(errno)));
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  // A still-queued event for this fd in the current dispatch round finds no
  // callback and is dropped. If the kernel reuses the number for a
  // connection accepted in the same round, Add marks it and the dispatch
  // loop suppresses the stale event (handlers are not readiness-safe
  // against foreign events: EPOLLHUP closes unconditionally).
  callbacks_.erase(fd);
}

void EventLoop::Wake(uint64_t token) {
  // One write(2): async-signal-safe by POSIX, which is the whole point —
  // the SIGTERM handler calls this.
  uint64_t v = token;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &v, sizeof(v));
}

void EventLoop::Run(int tick_ms, const std::function<void()>& tick) {
  running_ = true;
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (running_) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // fatal epoll failure: leave Run rather than spin
    }
    in_dispatch_ = true;
    added_this_round_.clear();
    for (int i = 0; i < n && running_; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t tokens = 0;
        if (::read(wake_fd_, &tokens, sizeof(tokens)) == sizeof(tokens) &&
            wake_handler_) {
          wake_handler_(tokens);
        }
        continue;
      }
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // removed earlier this round
      if (added_this_round_.count(fd) != 0) {
        continue;  // stale event for a number recycled mid-round
      }
      // Copy: the callback may Remove(fd) (connection teardown) and
      // invalidate the map entry under itself.
      FdCallback cb = it->second;
      cb(events[i].events);
    }
    in_dispatch_ = false;
    if (running_ && tick) tick();
  }
}

}  // namespace cq::net

#include "runtime/driver.h"

#include <algorithm>

#include "ft/fault.h"

namespace cq {

BrokerSourceDriver::BrokerSourceDriver(Broker* broker, std::string topic,
                                       std::string group,
                                       BrokerSourceDriverOptions options)
    : broker_(broker),
      topic_(std::move(topic)),
      group_(std::move(group)),
      options_(options) {}

Status BrokerSourceDriver::EnsureInitialized() {
  if (initialized_) return Status::OK();
  CQ_ASSIGN_OR_RETURN(Topic * t, broker_->GetTopic(topic_));
  partition_watermarks_.assign(
      t->num_partitions(),
      BoundedOutOfOrdernessWatermark(options_.max_out_of_orderness));
  // Read positions resume from the broker's committed offsets — everything
  // past them was not covered by a durable checkpoint and gets replayed.
  positions_.resize(t->num_partitions());
  for (size_t p = 0; p < t->num_partitions(); ++p) {
    positions_[p] = broker_->CommittedOffset(group_, topic_, p);
    // Re-derive the generator's state from the consumed prefix: watermark
    // state is a pure function of (partition contents, position), so this
    // restores it exactly. Without it a partition that was fully consumed
    // before the commit would never observe another record after a seek and
    // would hold the min-across-partitions watermark at kMinTimestamp
    // forever — a recovered run could then never flush its windows.
    if (positions_[p] > 0) {
      CQ_ASSIGN_OR_RETURN(
          std::vector<Message> prefix,
          broker_->PollAt(topic_, p, 0,
                          static_cast<size_t>(positions_[p])));
      for (const auto& msg : prefix) {
        partition_watermarks_[p].Observe(msg.timestamp);
      }
    }
  }
  // The run that committed these offsets had already emitted the watermark
  // they imply; replay emits only genuine advances past it, keeping the
  // watermark cadence identical to the uninterrupted run.
  last_emitted_wm_ = CurrentWatermark();
  initialized_ = true;
  return Status::OK();
}

Result<StreamBatch> BrokerSourceDriver::PollBatch(size_t max_per_partition) {
  CQ_RETURN_NOT_OK(EnsureInitialized());
  CQ_ASSIGN_OR_RETURN(Topic * t, broker_->GetTopic(topic_));
  const size_t limit =
      max_per_partition == 0 ? options_.max_poll_records : max_per_partition;
  const bool sample =
      options_.tracer != nullptr && options_.trace_sample_every != 0 &&
      (polls_++ % options_.trace_sample_every) == 0;
  const int64_t poll_start_ns = sample ? MonotonicNanos() : 0;
  StreamBatch batch;
  for (size_t p = 0; p < t->num_partitions(); ++p) {
    CQ_ASSIGN_OR_RETURN(std::vector<Message> msgs,
                        broker_->PollAt(topic_, p, positions_[p], limit));
    if (msgs.empty()) continue;
    for (auto& msg : msgs) {
      partition_watermarks_[p].Observe(msg.timestamp);
      batch.AddRecord(std::move(msg.value), msg.timestamp);
    }
    // Advance the in-memory position only; the broker offset is committed
    // by CommitThrough once a checkpoint covering this window is durable.
    positions_[p] = msgs.back().offset + 1;
  }
  // Source watermark = min across partitions (a stalled partition holds the
  // watermark back, exactly as in production systems). Appended only when it
  // advanced, so batches stay watermark-monotonic.
  Timestamp wm = CurrentWatermark();
  if (wm != kMinTimestamp && wm > last_emitted_wm_) {
    last_emitted_wm_ = wm;
    batch.AddWatermark(wm);
  }
  if (sample && !batch.empty()) {
    // Root the batch's trace at this poll: the ingest span covers broker
    // fetch + watermark derivation, and downstream spans (queue wait,
    // operator self time) parent to it through the stamped context.
    Span span;
    span.trace_id = NextTraceId();
    span.span_id = NextSpanId();
    span.kind = SpanKind::kIngest;
    span.name = "poll:" + topic_;
    span.start_ns = poll_start_ns;
    span.duration_ns = MonotonicNanos() - poll_start_ns;
    TraceContext tc;
    tc.trace_id = span.trace_id;
    tc.parent_span = span.span_id;
    tc.ingest_ns = poll_start_ns;
    batch.set_trace(tc);
    options_.tracer->Record(std::move(span));
  }
  return batch;
}

Result<ColumnarBatch> BrokerSourceDriver::PollColumnarBatch(
    size_t max_per_partition) {
  CQ_RETURN_NOT_OK(EnsureInitialized());
  CQ_ASSIGN_OR_RETURN(Topic * t, broker_->GetTopic(topic_));
  const size_t limit =
      max_per_partition == 0 ? options_.max_poll_records : max_per_partition;
  const bool sample =
      options_.tracer != nullptr && options_.trace_sample_every != 0 &&
      (polls_++ % options_.trace_sample_every) == 0;
  const int64_t poll_start_ns = sample ? MonotonicNanos() : 0;
  // Fetch everything first; positions and watermark generators advance only
  // once the whole poll columnarised cleanly.
  std::vector<std::vector<Message>> polled(t->num_partitions());
  ColumnarBatch batch;
  for (size_t p = 0; p < t->num_partitions(); ++p) {
    CQ_ASSIGN_OR_RETURN(polled[p],
                        broker_->PollAt(topic_, p, positions_[p], limit));
    for (auto& msg : polled[p]) {
      CQ_RETURN_NOT_OK(batch.AppendRow(msg.value, msg.timestamp));
    }
  }
  for (size_t p = 0; p < t->num_partitions(); ++p) {
    if (polled[p].empty()) continue;
    for (const auto& msg : polled[p]) {
      partition_watermarks_[p].Observe(msg.timestamp);
    }
    positions_[p] = polled[p].back().offset + 1;
  }
  Timestamp wm = CurrentWatermark();
  if (wm != kMinTimestamp && wm > last_emitted_wm_) {
    last_emitted_wm_ = wm;
    batch.AppendWatermark(wm);
  }
  if (sample && !batch.empty()) {
    Span span;
    span.trace_id = NextTraceId();
    span.span_id = NextSpanId();
    span.kind = SpanKind::kIngest;
    span.name = "poll:" + topic_;
    span.start_ns = poll_start_ns;
    span.duration_ns = MonotonicNanos() - poll_start_ns;
    TraceContext tc;
    tc.trace_id = span.trace_id;
    tc.parent_span = span.span_id;
    tc.ingest_ns = poll_start_ns;
    batch.set_trace(tc);
    options_.tracer->Record(std::move(span));
  }
  return batch;
}

Result<size_t> BrokerSourceDriver::PumpInto(Channel* out, bool* paused) {
  if (paused != nullptr) *paused = false;
  if (out->credits_available() == 0) {
    // Downstream is out of credits: pause polling so in-process queue depth
    // stays bounded; the backlog accumulates in the broker instead.
    if (paused != nullptr) *paused = true;
    return 0;
  }
  CQ_ASSIGN_OR_RETURN(StreamBatch batch, PollBatch());
  if (batch.empty()) return 0;
  size_t records = batch.num_records();
  CQ_RETURN_NOT_OK(out->Push(std::move(batch)));
  return records;
}

Status BrokerSourceDriver::DrainInto(Channel* out) {
  while (true) {
    CQ_ASSIGN_OR_RETURN(StreamBatch batch, PollBatch());
    if (batch.num_records() == 0) break;
    CQ_RETURN_NOT_OK(out->Push(std::move(batch)));
  }
  CQ_ASSIGN_OR_RETURN(Timestamp final_wm, FinalWatermark());
  if (final_wm != kMinTimestamp) {
    StreamBatch eos;
    eos.AddWatermark(final_wm);
    last_emitted_wm_ = std::max(last_emitted_wm_, final_wm);
    CQ_RETURN_NOT_OK(out->Push(std::move(eos)));
  }
  return Status::OK();
}

Timestamp BrokerSourceDriver::CurrentWatermark() const {
  if (partition_watermarks_.empty()) return kMinTimestamp;
  Timestamp wm = kMaxTimestamp;
  for (const auto& g : partition_watermarks_) {
    wm = std::min(wm, g.Current());
  }
  return wm == kMaxTimestamp ? kMinTimestamp : wm;
}

Result<Timestamp> BrokerSourceDriver::FinalWatermark() const {
  CQ_ASSIGN_OR_RETURN(Topic * t, broker_->GetTopic(topic_));
  Timestamp max_ts = kMinTimestamp;
  for (size_t p = 0; p < t->num_partitions(); ++p) {
    max_ts = std::max(max_ts, t->partition(p).MaxTimestamp());
  }
  if (max_ts == kMinTimestamp) return kMinTimestamp;
  return max_ts + 1;
}

Result<std::map<std::string, int64_t>> BrokerSourceDriver::Offsets() {
  CQ_RETURN_NOT_OK(EnsureInitialized());
  std::map<std::string, int64_t> out;
  for (size_t p = 0; p < positions_.size(); ++p) {
    out[topic_ + "/" + std::to_string(p)] = positions_[p];
  }
  return out;
}

Status BrokerSourceDriver::CommitThrough(
    const std::map<std::string, int64_t>& offsets) {
  CQ_RETURN_NOT_OK(
      ft::FaultInjector::Global().Hit(ft::faultpoint::kCommitOffsets));
  for (const auto& [key, offset] : offsets) {
    auto slash = key.rfind('/');
    if (slash == std::string::npos || key.substr(0, slash) != topic_) continue;
    size_t p = std::stoul(key.substr(slash + 1));
    CQ_RETURN_NOT_OK(broker_->Commit(group_, topic_, p, offset));
  }
  return Status::OK();
}

Result<std::map<std::string, int64_t>> BrokerSourceDriver::EndOffsets() const {
  CQ_ASSIGN_OR_RETURN(Topic * t, broker_->GetTopic(topic_));
  std::map<std::string, int64_t> out;
  for (size_t p = 0; p < t->num_partitions(); ++p) {
    out[topic_ + "/" + std::to_string(p)] = t->partition(p).EndOffset();
  }
  return out;
}

Status BrokerSourceDriver::SeekTo(
    const std::map<std::string, int64_t>& offsets) {
  for (const auto& [key, offset] : offsets) {
    auto slash = key.rfind('/');
    if (slash == std::string::npos || key.substr(0, slash) != topic_) continue;
    size_t p = std::stoul(key.substr(slash + 1));
    CQ_RETURN_NOT_OK(broker_->Commit(group_, topic_, p, offset));
  }
  // Watermark generators and read positions restart from the committed
  // offsets just written; replayed elements re-advance the watermark.
  initialized_ = false;
  return Status::OK();
}

}  // namespace cq

#include "runtime/columnar_batch.h"

#include <algorithm>

#include "types/serde.h"

namespace cq {

namespace {
size_t PopCount(uint64_t w) {
  return static_cast<size_t>(__builtin_popcountll(w));
}
}  // namespace

void ColumnarBatch::ReplaceColumns(std::vector<Column> cols) {
  columns_ = std::move(cols);
}

Status ColumnarBatch::AppendRow(const Tuple& tuple, Timestamp ts) {
  if (num_rows_ == 0 && columns_.empty()) {
    columns_.resize(tuple.size());
  }
  if (tuple.size() != columns_.size()) {
    return Status::TypeError("columnar batch: ragged row arity");
  }
  // Pre-check types so the row appends below cannot fail midway (a partial
  // row would break the equal-length column invariant).
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Value& v = tuple[c];
    if (!v.is_null() && columns_[c].type() != ValueType::kNull &&
        columns_[c].type() != v.type()) {
      return Status::TypeError("columnar batch: mixed-type column");
    }
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    Status s = columns_[c].Append(tuple[c]);
    (void)s;  // cannot fail: types pre-checked above
  }
  timestamps_.push_back(ts);
  if (!selection_.empty()) {
    if ((num_rows_ >> 6) == selection_.size()) selection_.push_back(0);
    selection_[num_rows_ >> 6] |= uint64_t{1} << (num_rows_ & 63);
    ++selected_count_;
  }
  ++num_rows_;
  return Status::OK();
}

void ColumnarBatch::MaterialiseSelection() {
  if (!selection_.empty() || num_rows_ == 0) return;
  selection_.assign((num_rows_ + 63) / 64, ~uint64_t{0});
  size_t tail = num_rows_ & 63;
  if (tail != 0) selection_.back() = ~uint64_t{0} >> (64 - tail);
  selected_count_ = num_rows_;
}

void ColumnarBatch::FilterSelection(const Column& keep) {
  if (num_rows_ == 0) return;
  if (keep.type() != ValueType::kBool) {
    // Untyped (all-NULL) predicate column: NULL matches nothing.
    ClearSelection();
    return;
  }
  MaterialiseSelection();
  const uint8_t* vals = keep.bool_data();
  for (size_t w = 0; w < selection_.size(); ++w) {
    if (selection_[w] == 0) continue;
    size_t base = w << 6;
    size_t n = std::min<size_t>(64, num_rows_ - base);
    uint64_t mask = 0;
    if (keep.has_nulls()) {
      for (size_t b = 0; b < n; ++b) {
        if (vals[base + b] != 0 && !keep.IsNull(base + b)) {
          mask |= uint64_t{1} << b;
        }
      }
    } else {
      for (size_t b = 0; b < n; ++b) {
        if (vals[base + b] != 0) mask |= uint64_t{1} << b;
      }
    }
    selection_[w] &= mask;
  }
  selected_count_ = 0;
  for (uint64_t w : selection_) selected_count_ += PopCount(w);
}

void ColumnarBatch::ClearSelection() {
  selection_.assign((num_rows_ + 63) / 64, 0);
  selected_count_ = 0;
  if (selection_.empty()) {
    // Zero rows: nothing to deselect; keep the "all selected" encoding.
    selection_.clear();
  }
}

Timestamp ColumnarBatch::MaxSelectedTimestamp() const {
  Timestamp m = kMinTimestamp;
  if (selection_.empty()) {
    for (Timestamp ts : timestamps_) {
      if (ts > m) m = ts;
    }
    return m;
  }
  for (size_t i = 0; i < num_rows_; ++i) {
    if (IsSelected(i) && timestamps_[i] > m) m = timestamps_[i];
  }
  return m;
}

Result<ColumnarBatch> ColumnarBatch::FromRows(const StreamBatch& rows) {
  ColumnarBatch out;
  out.timestamps_.reserve(rows.num_records());
  for (const StreamElement& e : rows) {
    if (e.is_record()) {
      CQ_RETURN_NOT_OK(out.AppendRow(e.tuple, e.timestamp));
    } else if (e.is_watermark()) {
      out.AppendWatermark(e.timestamp);
    } else {
      // Barriers are runtime punctuation consumed outside operators; batches
      // carrying them stay on the row path.
      return Status::InvalidArgument("columnar batch: in-band barrier");
    }
  }
  out.trace_ = rows.trace();
  out.enqueue_ns_ = rows.enqueue_ns();
  return out;
}

StreamBatch ColumnarBatch::ToRows() const {
  StreamBatch out;
  out.reserve(SelectedCount() + watermarks_.size());
  size_t k = 0;
  for (size_t i = 0; i < num_rows_; ++i) {
    while (k < watermarks_.size() && watermarks_[k].pos <= i) {
      out.AddWatermark(watermarks_[k].ts);
      ++k;
    }
    if (IsSelected(i)) out.AddRecord(RowAt(i), timestamps_[i]);
  }
  while (k < watermarks_.size()) {
    out.AddWatermark(watermarks_[k].ts);
    ++k;
  }
  out.set_trace(trace_);
  out.set_enqueue_ns(enqueue_ns_);
  return out;
}

void ColumnarBatch::AppendRowsTo(StreamBatch* out, size_t begin,
                                 size_t end) const {
  for (size_t i = begin; i < end; ++i) {
    if (IsSelected(i)) out->AddRecord(RowAt(i), timestamps_[i]);
  }
}

Status ColumnarBatch::AppendGathered(const ColumnarBatch& src,
                                     const std::vector<uint64_t>& take) {
  if (num_rows_ == 0 && columns_.empty()) columns_.resize(src.num_columns());
  if (src.num_columns() != columns_.size()) {
    return Status::TypeError("columnar gather: arity mismatch");
  }
  // Pre-check types so the typed appends below cannot fail midway (same
  // invariant-protection as AppendRow).
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ValueType st = src.columns_[c].type();
    const ValueType dt = columns_[c].type();
    if (st != ValueType::kNull && dt != ValueType::kNull && st != dt) {
      return Status::TypeError("columnar gather: mixed-type column");
    }
  }
  for (size_t w = 0; w < take.size(); ++w) {
    uint64_t bits = take[w];
    while (bits != 0) {
      const size_t i = (w << 6) + static_cast<size_t>(__builtin_ctzll(bits));
      bits &= bits - 1;
      if (i >= src.num_rows_) break;
      for (size_t c = 0; c < columns_.size(); ++c) {
        const Column& s = src.columns_[c];
        Column& d = columns_[c];
        if (s.IsNull(i)) {
          d.AppendNull();
          continue;
        }
        switch (s.type()) {
          case ValueType::kInt64:
            d.AppendInt64(s.int64_data()[i]);
            break;
          case ValueType::kDouble:
            d.AppendDouble(s.double_data()[i]);
            break;
          case ValueType::kBool:
            d.AppendBool(s.bool_data()[i] != 0);
            break;
          case ValueType::kString:
            d.AppendString(s.string_at(i));
            break;
          case ValueType::kNull:
            d.AppendNull();
            break;
        }
      }
      timestamps_.push_back(src.timestamps_[i]);
      if (!selection_.empty()) {
        if ((num_rows_ >> 6) == selection_.size()) selection_.push_back(0);
        selection_[num_rows_ >> 6] |= uint64_t{1} << (num_rows_ & 63);
        ++selected_count_;
      }
      ++num_rows_;
    }
  }
  return Status::OK();
}

Tuple ColumnarBatch::RowAt(size_t i) const {
  std::vector<Value> vals;
  vals.reserve(columns_.size());
  for (const Column& col : columns_) vals.push_back(col.ValueAt(i));
  return Tuple(std::move(vals));
}

size_t ColumnarBatch::ApproxBytes() const {
  size_t bytes = timestamps_.size() * sizeof(Timestamp) +
                 selection_.size() * sizeof(uint64_t) +
                 watermarks_.size() * sizeof(WatermarkMark);
  for (const Column& col : columns_) bytes += col.ApproxBytes();
  return bytes;
}

void ColumnarBatch::Clear() {
  columns_.clear();
  timestamps_.clear();
  selection_.clear();
  selected_count_ = 0;
  num_rows_ = 0;
  watermarks_.clear();
  trace_ = TraceContext();
  enqueue_ns_ = 0;
}

void ColumnarBatch::EncodeTo(std::string* out) const {
  EncodeU32(static_cast<uint32_t>(columns_.size()), out);
  EncodeU64(num_rows_, out);
  for (const Column& col : columns_) EncodeColumn(col, out);
  for (Timestamp ts : timestamps_) EncodeI64(ts, out);
  out->push_back(selection_.empty() ? 0 : 1);
  if (!selection_.empty()) {
    EncodeU32(static_cast<uint32_t>(selection_.size()), out);
    for (uint64_t w : selection_) EncodeU64(w, out);
  }
  EncodeU32(static_cast<uint32_t>(watermarks_.size()), out);
  for (const WatermarkMark& wm : watermarks_) {
    EncodeU32(wm.pos, out);
    EncodeI64(wm.ts, out);
  }
}

Result<ColumnarBatch> ColumnarBatch::DecodeFrom(std::string_view* in) {
  ColumnarBatch out;
  CQ_ASSIGN_OR_RETURN(uint32_t ncols, DecodeU32(in));
  CQ_ASSIGN_OR_RETURN(uint64_t nrows, DecodeU64(in));
  out.num_rows_ = nrows;
  out.columns_.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    CQ_ASSIGN_OR_RETURN(Column col, DecodeColumn(in));
    if (col.size() != nrows) {
      return Status::ParseError("columnar batch: column size mismatch");
    }
    out.columns_.push_back(std::move(col));
  }
  out.timestamps_.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    CQ_ASSIGN_OR_RETURN(int64_t ts, DecodeI64(in));
    out.timestamps_.push_back(ts);
  }
  if (in->empty()) return Status::ParseError("columnar batch: underflow");
  bool has_sel = (*in)[0] != 0;
  in->remove_prefix(1);
  if (has_sel) {
    CQ_ASSIGN_OR_RETURN(uint32_t words, DecodeU32(in));
    if (words != (nrows + 63) / 64) {
      return Status::ParseError("columnar batch: selection bitmap size");
    }
    out.selection_.reserve(words);
    for (uint32_t i = 0; i < words; ++i) {
      CQ_ASSIGN_OR_RETURN(uint64_t w, DecodeU64(in));
      out.selection_.push_back(w);
    }
    for (uint64_t w : out.selection_) out.selected_count_ += PopCount(w);
  }
  CQ_ASSIGN_OR_RETURN(uint32_t nwms, DecodeU32(in));
  out.watermarks_.reserve(nwms);
  for (uint32_t i = 0; i < nwms; ++i) {
    WatermarkMark wm;
    CQ_ASSIGN_OR_RETURN(wm.pos, DecodeU32(in));
    CQ_ASSIGN_OR_RETURN(wm.ts, DecodeI64(in));
    if (wm.pos > nrows) {
      return Status::ParseError("columnar batch: watermark position");
    }
    out.watermarks_.push_back(wm);
  }
  return out;
}

}  // namespace cq

#ifndef CQ_RUNTIME_BATCH_H_
#define CQ_RUNTIME_BATCH_H_

/// \file batch.h
/// \brief StreamBatch: the unit of exchange in the unified runtime core.
///
/// Modern engines moved from element-at-a-time shipping to batched exchange
/// (Fragkoulis et al.): a producer accumulates elements into a batch and the
/// batch travels as one unit through channels and operator hooks, amortising
/// queue synchronisation and virtual dispatch over many elements. A
/// StreamBatch is an ordered run of stream elements — records interleaved
/// with the watermarks that were current when they were produced — so
/// delivering a batch element-by-element and delivering it as a batch are
/// observably equivalent for linear pipelines.

#include <memory>
#include <utility>
#include <vector>

#include "common/time.h"
#include "obs/trace.h"
#include "stream/stream.h"

namespace cq {

class ColumnarBatch;

/// \brief An ordered run of stream elements exchanged as one unit.
class StreamBatch {
 public:
  StreamBatch() = default;
  explicit StreamBatch(std::vector<StreamElement> elements)
      : elements_(std::move(elements)), cache_dirty_(true) {}

  void AddRecord(Tuple tuple, Timestamp ts) {
    ++num_records_;
    if (ts > max_ts_) max_ts_ = ts;
    elements_.push_back(StreamElement::Record(std::move(tuple), ts));
  }
  void AddWatermark(Timestamp ts) {
    elements_.push_back(StreamElement::Watermark(ts));
  }
  void Add(StreamElement element) {
    if (element.is_record()) {
      ++num_records_;
      if (element.timestamp > max_ts_) max_ts_ = element.timestamp;
    }
    elements_.push_back(std::move(element));
  }

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty() && columnar_ == nullptr; }
  void clear() {
    elements_.clear();
    columnar_.reset();
    trace_ = TraceContext();
    enqueue_ns_ = 0;
    num_records_ = 0;
    max_ts_ = kMinTimestamp;
    cache_dirty_ = false;
  }
  void reserve(size_t n) { elements_.reserve(n); }

  const StreamElement& at(size_t i) const { return elements_[i]; }
  const StreamElement& operator[](size_t i) const { return elements_[i]; }

  auto begin() const { return elements_.begin(); }
  auto end() const { return elements_.end(); }

  const std::vector<StreamElement>& elements() const { return elements_; }
  /// \brief Mutable element access invalidates the cached record-count /
  /// max-timestamp (they are lazily recomputed on next read).
  std::vector<StreamElement>& mutable_elements() {
    cache_dirty_ = true;
    return elements_;
  }

  /// \brief Number of data records (excludes watermarks). O(1): maintained
  /// on Add* and recomputed lazily only after mutable_elements() access.
  size_t num_records() const {
    if (cache_dirty_) RecomputeCache();
    return num_records_;
  }

  /// \brief Largest record timestamp in the batch (kMinTimestamp if none).
  /// O(1) like num_records().
  Timestamp MaxTimestamp() const {
    if (cache_dirty_) RecomputeCache();
    return max_ts_;
  }

  /// \brief Sampled trace context stamped at the ingest edge (default:
  /// unsampled). Travels with the batch through channels and workers so
  /// spans recorded downstream join the batch's trace tree.
  const TraceContext& trace() const { return trace_; }
  void set_trace(const TraceContext& trace) { trace_ = trace; }

  /// \brief Channel bookkeeping: when the batch was enqueued (0 = never),
  /// stamped by Channel on push and consumed for the queue-wait histogram
  /// and queue spans on pop.
  int64_t enqueue_ns() const { return enqueue_ns_; }
  void set_enqueue_ns(int64_t ns) { enqueue_ns_ = ns; }

  /// \brief Optional columnar payload: a batch that travels through a
  /// Channel still in columnar layout (hash-exchange envelopes). A payload
  /// batch carries no row elements — producers ship either rows or a
  /// payload, never both — and the consumer hands the payload straight to
  /// PushColumnar, so columns cross the exchange without re-materialising
  /// rows. Channels treat the envelope as one opaque unit.
  const std::shared_ptr<ColumnarBatch>& columnar() const { return columnar_; }
  void set_columnar(std::shared_ptr<ColumnarBatch> payload) {
    columnar_ = std::move(payload);
  }

 private:
  void RecomputeCache() const {
    num_records_ = 0;
    max_ts_ = kMinTimestamp;
    for (const auto& e : elements_) {
      if (e.is_record()) {
        ++num_records_;
        if (e.timestamp > max_ts_) max_ts_ = e.timestamp;
      }
    }
    cache_dirty_ = false;
  }

  std::vector<StreamElement> elements_;
  std::shared_ptr<ColumnarBatch> columnar_;  // exchange envelope (or null)
  TraceContext trace_;
  int64_t enqueue_ns_ = 0;
  mutable size_t num_records_ = 0;
  mutable Timestamp max_ts_ = kMinTimestamp;
  mutable bool cache_dirty_ = false;
};

}  // namespace cq

#endif  // CQ_RUNTIME_BATCH_H_

#ifndef CQ_RUNTIME_CHANNEL_H_
#define CQ_RUNTIME_CHANNEL_H_

/// \file channel.h
/// \brief Bounded inter-thread channel with credit-based backpressure.
///
/// The unified runtime's only inter-thread queue. A Channel carries
/// StreamBatch units from producers to one consumer and enforces flow
/// control the way modern engines do (Fragkoulis et al., §"network flow
/// control"): the consumer side extends a fixed number of *credits* (queue
/// slots); a producer spends one credit per pushed batch and blocks — or,
/// via TryPush, backs off — once credits are exhausted. Credits return as
/// the consumer pops batches, so a slow consumer throttles its producers
/// instead of letting backlog grow without bound.
///
/// Consumers acknowledge each popped batch after processing it
/// (Acknowledge), which lets WaitUntilIdle detect full quiescence (queue
/// empty and nothing in flight) — the hook checkpoint alignment uses.
///
/// When a metrics registry is attached the channel exports
/// `cq_channel_depth`, `cq_channel_credits`, `cq_channel_pushes_total`,
/// `cq_channel_records_total`, `cq_channel_blocked_total` (the credit-stall
/// counter), and `cq_channel_queue_wait_us` — a histogram of how long each
/// popped batch sat queued, the channel half of latency attribution. With a
/// tracer attached, popping a sampled batch additionally records a
/// queue-kind span into its trace, and credit stalls record flight-recorder
/// events.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/batch.h"

namespace cq {

class Channel {
 public:
  /// \brief `credits` bounds the number of queued batches; 0 means
  /// unbounded (no backpressure — measurement/testing only).
  explicit Channel(size_t credits = 64) : credits_(credits) {}

  /// \brief Pushes a batch, blocking while no credits are available.
  /// Returns Closed once the channel is closed.
  Status Push(StreamBatch batch);

  /// \brief Non-blocking push: returns false (and leaves `batch` intact)
  /// when no credits are available. `status` (optional) receives Closed when
  /// the channel is closed.
  bool TryPush(StreamBatch* batch, Status* status = nullptr);

  /// \brief Pops the next batch, blocking while empty; returns false once
  /// closed and drained. Each successful Pop must be matched by an
  /// Acknowledge after the batch has been processed.
  bool Pop(StreamBatch* batch);

  /// \brief Non-blocking pop: returns false when the queue is currently
  /// empty (open or closed). A successful TryPop must be matched by an
  /// Acknowledge, exactly like Pop. Subscription consumers use this to drain
  /// whatever the pipeline has pushed without parking a thread.
  bool TryPop(StreamBatch* batch);

  /// \brief Marks the most recently popped batch as fully processed.
  void Acknowledge();

  /// \brief Blocks until the queue is empty and every popped batch has been
  /// acknowledged — or the channel is closed (a failed consumer closes its
  /// channel; callers re-check consumer health after waking). Producers must
  /// be quiescent for this to be meaningful.
  void WaitUntilIdle();

  /// \brief Closes the channel: wakes blocked producers (Closed) and lets
  /// the consumer drain what is queued.
  void Close();

  /// \brief Queued batches.
  size_t depth() const;

  /// \brief Credits currently available to producers (SIZE_MAX when
  /// unbounded).
  size_t credits_available() const;

  bool closed() const;

  /// \brief Total pushes that had to wait (or were refused) for a credit.
  uint64_t blocked_pushes() const;

  /// \brief Creates this channel's gauges/counters in `registry` under
  /// `labels` (e.g. {{"channel", "worker-0"}}); nullptr detaches.
  void AttachMetrics(MetricsRegistry* registry, const LabelSet& labels);

  /// \brief Attaches a span recorder: popping a sampled batch records a
  /// queue-kind span named `name` covering the batch's time in the queue,
  /// parented to the batch's current trace position. nullptr detaches.
  void AttachTracer(TraceRecorder* tracer, std::string name = "channel");

 private:
  bool HasCreditLocked() const {
    return credits_ == 0 || queue_.size() < credits_;
  }
  void PushLocked(StreamBatch&& batch);
  /// Queue-wait observation for a just-popped batch; callers hold mu_.
  void ObserveDequeueLocked(StreamBatch* batch);
  void NoteStallLocked();

  size_t credits_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable idle_;
  std::deque<StreamBatch> queue_;
  size_t in_flight_ = 0;  // popped but not yet acknowledged
  bool closed_ = false;
  uint64_t blocked_pushes_ = 0;

  // Metrics (nullptr until AttachMetrics); updated under mu_.
  Gauge* depth_gauge_ = nullptr;
  Gauge* credits_gauge_ = nullptr;
  Counter* pushes_total_ = nullptr;
  Counter* records_total_ = nullptr;
  Counter* blocked_total_ = nullptr;
  Histogram* queue_wait_us_ = nullptr;

  // Tracing (nullptr until AttachTracer); read under mu_.
  TraceRecorder* tracer_ = nullptr;
  std::string trace_name_;
};

}  // namespace cq

#endif  // CQ_RUNTIME_CHANNEL_H_

#ifndef CQ_RUNTIME_COLUMNAR_BATCH_H_
#define CQ_RUNTIME_COLUMNAR_BATCH_H_

/// \file columnar_batch.h
/// \brief ColumnarBatch: the columnar unit of exchange (survey §5).
///
/// Where StreamBatch ships rows of Value variants, a ColumnarBatch holds the
/// same run of stream elements decomposed by attribute: one typed Column per
/// tuple position, a parallel timestamp column, and an out-of-band watermark
/// list. Vectorized operator kernels run tight typed loops over the columns
/// instead of per-row std::variant dispatch, and filters narrow the batch by
/// flipping bits in a selection bitmap instead of materialising survivors.
///
/// Layout invariants:
///  - Every column has exactly num_rows() entries; so does timestamps().
///  - The selection bitmap is either empty (all rows selected) or holds one
///    bit per row (bit = 1 -> selected). Rows are never physically removed
///    by filtering, so row indexes — and the watermark positions below —
///    stay stable across kernels.
///  - Watermarks are out-of-band marks {pos, ts}: the watermark precedes the
///    row at index `pos` (pos == num_rows() -> after the last row). Marks
///    are ordered by pos, insertion order preserved within equal pos, so
///    ToRows() reproduces the original record/watermark interleaving.
///
/// Conversion is lossless in both directions for batches of fixed-arity,
/// consistently-typed records; FromRows() fails (and the caller stays on the
/// row path) for ragged arity, mixed-type columns, or in-band barriers.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "obs/trace.h"
#include "runtime/batch.h"
#include "types/column.h"
#include "types/tuple.h"

namespace cq {

/// \brief An out-of-band watermark: precedes the row at index `pos`.
struct WatermarkMark {
  uint32_t pos = 0;
  Timestamp ts = 0;
};

/// \brief A run of stream elements in columnar layout.
class ColumnarBatch {
 public:
  ColumnarBatch() = default;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  bool empty() const { return num_rows_ == 0 && watermarks_.empty(); }

  const Column& column(size_t c) const { return columns_[c]; }
  Column* mutable_column(size_t c) { return &columns_[c]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// \brief Swaps in a new column set (projection / expression kernels).
  /// Precondition: every new column has exactly num_rows() entries.
  void ReplaceColumns(std::vector<Column> cols);

  Timestamp timestamp(size_t i) const { return timestamps_[i]; }
  const std::vector<Timestamp>& timestamps() const { return timestamps_; }

  /// \brief Appends a record row. The first row fixes the batch arity;
  /// later rows must match it and per-column types (TypeError otherwise —
  /// the appender is expected to fall back to the row path).
  Status AppendRow(const Tuple& tuple, Timestamp ts);

  /// \brief Appends a watermark positioned after all rows appended so far.
  void AppendWatermark(Timestamp ts) {
    watermarks_.push_back({static_cast<uint32_t>(num_rows_), ts});
  }

  /// \brief Appends a watermark at an explicit row position (exchange
  /// split: the producer computes each shard's mark position from prefix
  /// counts). Preconditions: pos <= num_rows() and positions non-decreasing
  /// across calls — the mark-ordering invariant above.
  void AddWatermarkMark(uint32_t pos, Timestamp ts) {
    watermarks_.push_back({pos, ts});
  }

  /// \brief Gathers rows of `src` whose bit is set in `take` (one bit per
  /// src row, little-endian like the selection bitmap) onto the end of this
  /// batch: typed column-to-column copies plus the timestamp column — no
  /// Tuple is ever materialised. The destination must be empty or have
  /// matching arity and column types; src watermarks and selection are NOT
  /// carried over (the exchange broadcasts marks itself and `take` already
  /// folds selection in). TypeError on arity/type mismatch.
  Status AppendGathered(const ColumnarBatch& src,
                        const std::vector<uint64_t>& take);

  const std::vector<WatermarkMark>& watermarks() const { return watermarks_; }

  // --- Selection bitmap -----------------------------------------------

  /// \brief Whether a (possibly narrowing) selection bitmap exists. When
  /// false, every row is selected and kernels can skip per-row checks.
  bool has_selection() const { return !selection_.empty(); }
  bool IsSelected(size_t i) const {
    return selection_.empty() ||
           ((selection_[i >> 6] >> (i & 63)) & 1) != 0;
  }
  /// \brief Number of selected rows (O(1); cached).
  size_t SelectedCount() const {
    return selection_.empty() ? num_rows_ : selected_count_;
  }

  /// \brief Narrows the selection: row i stays selected iff it was selected
  /// and `keep` is non-null true at i (filter kernel output). `keep` must
  /// have num_rows() entries and be of bool type — or untyped/all-null, in
  /// which case every row is deselected (NULL predicate -> no match).
  void FilterSelection(const Column& keep);

  /// \brief Deselects every row (watermarks still flow).
  void ClearSelection();

  /// \brief Largest selected-row timestamp (kMinTimestamp if none) — the
  /// columnar analogue of StreamBatch::MaxTimestamp().
  Timestamp MaxSelectedTimestamp() const;

  // --- Row interop -----------------------------------------------------

  /// \brief Converts a row batch. Fails (TypeError / InvalidArgument) on
  /// ragged arity, mixed-type columns, or in-band barriers; the caller then
  /// keeps the original row batch on the fallback path.
  static Result<ColumnarBatch> FromRows(const StreamBatch& rows);

  /// \brief Materialises the batch back to rows: selected records and
  /// watermarks in their original interleaving. Lossless inverse of
  /// FromRows() for all-selected batches.
  StreamBatch ToRows() const;

  /// \brief Appends the selected records of row range [begin, end) to `out`
  /// (no watermarks) — used by consume-kernel fallbacks that re-materialise
  /// one watermark-delimited segment.
  void AppendRowsTo(StreamBatch* out, size_t begin, size_t end) const;

  /// \brief Materialises row `i` as a Tuple.
  Tuple RowAt(size_t i) const;

  // --- Bookkeeping (mirrors StreamBatch) -------------------------------

  const TraceContext& trace() const { return trace_; }
  void set_trace(const TraceContext& trace) { trace_ = trace; }
  int64_t enqueue_ns() const { return enqueue_ns_; }
  void set_enqueue_ns(int64_t ns) { enqueue_ns_ = ns; }

  size_t ApproxBytes() const;
  void Clear();

  /// \brief Binary codec (exchange / checkpoint images).
  void EncodeTo(std::string* out) const;
  static Result<ColumnarBatch> DecodeFrom(std::string_view* in);

 private:
  /// Materialises the implicit all-selected bitmap so bits can be cleared.
  void MaterialiseSelection();

  std::vector<Column> columns_;
  std::vector<Timestamp> timestamps_;
  std::vector<uint64_t> selection_;  // empty -> all selected; bit=1 selected
  size_t selected_count_ = 0;        // valid only when !selection_.empty()
  size_t num_rows_ = 0;
  std::vector<WatermarkMark> watermarks_;
  TraceContext trace_;
  int64_t enqueue_ns_ = 0;
};

}  // namespace cq

#endif  // CQ_RUNTIME_COLUMNAR_BATCH_H_

#include "runtime/channel.h"

#include "ft/fault.h"
#include "obs/flight_recorder.h"

namespace cq {

void Channel::PushLocked(StreamBatch&& batch) {
  if (pushes_total_ != nullptr) {
    pushes_total_->Increment();
    records_total_->Increment(batch.num_records());
  }
  if (queue_wait_us_ != nullptr || tracer_ != nullptr) {
    batch.set_enqueue_ns(MonotonicNanos());
  }
  queue_.push_back(std::move(batch));
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    if (credits_ != 0) {
      credits_gauge_->Set(static_cast<int64_t>(credits_ - queue_.size()));
    }
  }
  not_empty_.notify_one();
}

Status Channel::Push(StreamBatch batch) {
  CQ_RETURN_NOT_OK(
      ft::FaultInjector::Global().Hit(ft::faultpoint::kChannelPush));
  std::unique_lock<std::mutex> lock(mu_);
  if (!HasCreditLocked() && !closed_) {
    NoteStallLocked();
    not_full_.wait(lock, [this] { return HasCreditLocked() || closed_; });
  }
  if (closed_) return Status::Closed("channel closed");
  PushLocked(std::move(batch));
  return Status::OK();
}

bool Channel::TryPush(StreamBatch* batch, Status* status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    if (status != nullptr) *status = Status::Closed("channel closed");
    return false;
  }
  if (status != nullptr) *status = Status::OK();
  if (!HasCreditLocked()) {
    NoteStallLocked();
    return false;
  }
  PushLocked(std::move(*batch));
  return true;
}

bool Channel::Pop(StreamBatch* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;  // closed and drained
  *batch = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  ObserveDequeueLocked(batch);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    if (credits_ != 0) {
      credits_gauge_->Set(static_cast<int64_t>(credits_ - queue_.size()));
    }
  }
  not_full_.notify_one();
  return true;
}

bool Channel::TryPop(StreamBatch* batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return false;
  *batch = std::move(queue_.front());
  queue_.pop_front();
  ++in_flight_;
  ObserveDequeueLocked(batch);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
    if (credits_ != 0) {
      credits_gauge_->Set(static_cast<int64_t>(credits_ - queue_.size()));
    }
  }
  not_full_.notify_one();
  return true;
}

void Channel::ObserveDequeueLocked(StreamBatch* batch) {
  if (batch->enqueue_ns() == 0) return;
  int64_t waited_ns = MonotonicNanos() - batch->enqueue_ns();
  if (waited_ns < 0) waited_ns = 0;
  if (queue_wait_us_ != nullptr) {
    queue_wait_us_->Observe(static_cast<double>(waited_ns) / 1e3);
  }
  if (tracer_ != nullptr && batch->trace().sampled()) {
    Span span;
    span.trace_id = batch->trace().trace_id;
    span.span_id = NextSpanId();
    span.parent_id = batch->trace().parent_span;
    span.kind = SpanKind::kQueue;
    span.name = trace_name_;
    span.start_ns = batch->enqueue_ns();
    span.duration_ns = waited_ns;
    tracer_->Record(std::move(span));
  }
  batch->set_enqueue_ns(0);
}

void Channel::NoteStallLocked() {
  ++blocked_pushes_;
  if (blocked_total_ != nullptr) blocked_total_->Increment();
  if (tracer_ != nullptr) {
    FlightRecorder::Global().Record(
        "channel", "stall", trace_name_,
        static_cast<int64_t>(queue_.size()), static_cast<int64_t>(credits_));
  }
}

void Channel::Acknowledge() {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
}

void Channel::WaitUntilIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  // A closed channel counts as idle: a failed consumer closes its channel
  // and stops popping, so waiting for queue drain would never return.
  // Callers re-check consumer health after waking.
  idle_.wait(lock,
             [this] { return (queue_.empty() && in_flight_ == 0) || closed_; });
}

void Channel::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_empty_.notify_all();
  not_full_.notify_all();
  idle_.notify_all();
}

size_t Channel::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t Channel::credits_available() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (credits_ == 0) return SIZE_MAX;
  return credits_ - queue_.size();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t Channel::blocked_pushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocked_pushes_;
}

void Channel::AttachMetrics(MetricsRegistry* registry, const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    depth_gauge_ = credits_gauge_ = nullptr;
    pushes_total_ = records_total_ = blocked_total_ = nullptr;
    queue_wait_us_ = nullptr;
    return;
  }
  depth_gauge_ = registry->GetGauge("cq_channel_depth", labels);
  credits_gauge_ = registry->GetGauge("cq_channel_credits", labels);
  pushes_total_ = registry->GetCounter("cq_channel_pushes_total", labels);
  records_total_ = registry->GetCounter("cq_channel_records_total", labels);
  blocked_total_ = registry->GetCounter("cq_channel_blocked_total", labels);
  queue_wait_us_ = registry->GetHistogram("cq_channel_queue_wait_us", labels);
  depth_gauge_->Set(static_cast<int64_t>(queue_.size()));
  if (credits_ != 0) {
    credits_gauge_->Set(static_cast<int64_t>(credits_ - queue_.size()));
  }
}

void Channel::AttachTracer(TraceRecorder* tracer, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  tracer_ = tracer;
  trace_name_ = std::move(name);
}

}  // namespace cq

#ifndef CQ_RUNTIME_DRIVER_H_
#define CQ_RUNTIME_DRIVER_H_

/// \file driver.h
/// \brief BrokerSourceDriver: the single ingestion path from broker topics.
///
/// The survey's Fig. 5 architecture is a distributed queue feeding a DAG of
/// computational nodes. This driver is the queue-facing half of that
/// substrate: it polls a topic's partitions in batches at the consumer
/// group's committed offsets, derives a per-partition bounded-out-of-
/// orderness watermark (min-combined across partitions, as production
/// systems do), commits offsets, and hands the result over as one
/// StreamBatch. Everything that consumes broker data — synchronous drains,
/// parallel pipelines, benches — sits on this one poll/commit/watermark
/// implementation instead of hand-rolling its own loop.
///
/// Commit-on-checkpoint: the driver reads at in-memory per-partition
/// *positions* and only commits to the broker when told the data up to a
/// position is durable (CommitThrough, called by the checkpoint machinery
/// after a snapshot reaches disk). A crash between polls therefore replays
/// from the last durable epoch instead of losing the uncommitted window —
/// the at-least-once half of effectively-once delivery.
///
/// Credit-aware pumping: PumpInto refuses to poll while the downstream
/// Channel has no credits, so a slow consumer pauses ingestion and the
/// in-flight queue depth stays bounded by the credit cap — backlog stays in
/// the broker (where it is durable and observable via `cq_queue_backlog`)
/// instead of accumulating in process memory.

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "queue/broker.h"
#include "runtime/batch.h"
#include "runtime/channel.h"
#include "runtime/columnar_batch.h"

namespace cq {

/// \brief Event-time watermark generator: assumes elements are at most
/// `max_out_of_orderness` behind the maximum timestamp seen.
class BoundedOutOfOrdernessWatermark {
 public:
  explicit BoundedOutOfOrdernessWatermark(Duration max_out_of_orderness)
      : max_ooo_(max_out_of_orderness) {}

  /// \brief Observes an element timestamp.
  void Observe(Timestamp ts) {
    if (ts > max_ts_) max_ts_ = ts;
  }

  /// \brief Current watermark: max seen minus the disorder bound.
  Timestamp Current() const {
    if (max_ts_ == kMinTimestamp) return kMinTimestamp;
    return max_ts_ - max_ooo_;
  }

 private:
  Duration max_ooo_;
  Timestamp max_ts_ = kMinTimestamp;
};

struct BrokerSourceDriverOptions {
  /// Max records polled per partition per round.
  size_t max_poll_records = 256;
  /// Disorder bound for the derived watermark.
  Duration max_out_of_orderness = 0;
  /// Optional span recorder: every `trace_sample_every`-th non-empty poll
  /// stamps its batch with a fresh TraceContext and records an ingest-kind
  /// "poll:<topic>" span — the root of that element's trace tree. The
  /// recorder must outlive the driver.
  TraceRecorder* tracer = nullptr;
  /// 0 disables sampling; 1 traces every poll.
  size_t trace_sample_every = 0;
};

/// \brief Drives pipelines from a broker topic: batched polls, committed
/// offsets, per-partition watermark derivation, credit-aware pumping.
class BrokerSourceDriver {
 public:
  BrokerSourceDriver(Broker* broker, std::string topic, std::string group,
                     BrokerSourceDriverOptions options = {});

  /// \brief Polls every partition once (up to `max_per_partition` messages
  /// each, 0 = the configured default), advances the in-memory read
  /// positions (broker offsets are NOT committed — see CommitThrough), and
  /// returns the records followed by the updated source watermark (appended
  /// only when it advanced). An empty batch means the group is caught up.
  Result<StreamBatch> PollBatch(size_t max_per_partition = 0);

  /// \brief PollBatch's columnar twin: accumulates the polled records
  /// straight into typed column vectors (no row materialisation at the
  /// ingestion edge) for PipelineExecutor::PushColumnar. Fetch-then-commit:
  /// read positions and watermark state advance only after every record
  /// appended cleanly, so a schema conflict (ragged arity, mixed-type
  /// column) returns an error with positions untouched and the caller can
  /// re-poll the same window through the row path.
  Result<ColumnarBatch> PollColumnarBatch(size_t max_per_partition = 0);

  /// \brief Credit-aware pump: polls only when `out` has a credit available,
  /// pushing the polled batch into the channel. When credits are exhausted
  /// the poll is skipped entirely (positions stay put, backlog stays in the
  /// broker) and `*paused` is set. Returns records moved.
  Result<size_t> PumpInto(Channel* out, bool* paused = nullptr);

  /// \brief Pumps until the topic is drained (blocking on channel credits),
  /// then pushes a final watermark past the topic's max timestamp
  /// (end-of-input for bounded replays). Does not close the channel.
  Status DrainInto(Channel* out);

  /// \brief Current min-across-partitions source watermark.
  Timestamp CurrentWatermark() const;

  /// \brief One past the topic's max event timestamp (end-of-input
  /// watermark), or kMinTimestamp when the topic is empty.
  Result<Timestamp> FinalWatermark() const;

  /// \brief Current read positions per partition ("topic/partition" ->
  /// offset): what a checkpoint taken now should record. These run ahead of
  /// the broker's committed offsets until CommitThrough.
  Result<std::map<std::string, int64_t>> Offsets();

  /// \brief Commits the broker's consumer-group offsets through `offsets`
  /// (same "topic/partition" keys as Offsets). Called after the checkpoint
  /// covering those positions is durable; a crash before this replays the
  /// window, a crash after it does not.
  Status CommitThrough(const std::map<std::string, int64_t>& offsets);

  /// \brief End offsets per partition ("topic/partition" -> one past the
  /// last message) — with Offsets, the replay volume a crash would incur.
  Result<std::map<std::string, int64_t>> EndOffsets() const;

  /// \brief Rewinds read positions AND committed offsets (checkpoint
  /// restore). Watermark derivation restarts conservatively; replayed
  /// elements re-advance it.
  Status SeekTo(const std::map<std::string, int64_t>& offsets);

  const std::string& topic() const { return topic_; }
  const std::string& group() const { return group_; }

 private:
  Status EnsureInitialized();

  Broker* broker_;
  std::string topic_;
  std::string group_;
  BrokerSourceDriverOptions options_;
  std::vector<BoundedOutOfOrdernessWatermark> partition_watermarks_;
  // In-memory read position per partition; runs ahead of the broker's
  // committed offset between checkpoints.
  std::vector<int64_t> positions_;
  Timestamp last_emitted_wm_ = kMinTimestamp;
  bool initialized_ = false;
  uint64_t polls_ = 0;  // sampling counter for trace_sample_every
};

}  // namespace cq

#endif  // CQ_RUNTIME_DRIVER_H_

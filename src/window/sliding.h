#ifndef CQ_WINDOW_SLIDING_H_
#define CQ_WINDOW_SLIDING_H_

/// \file sliding.h
/// \brief Window-aggregation evaluation strategies (§4.1.3).
///
/// The survey highlights sliding-window aggregation as the "most delicate
/// contact" between continuous querying and streaming systems, citing general
/// window-aggregation frameworks (Scotty [87]) and window surveys [88]. We
/// implement three evaluation strategies over the same (window, aggregate)
/// specification so bench E2 can compare them:
///
///  - NaiveWindowAggregator: buffers raw tuples, recomputes each window from
///    scratch — O(size) work per window.
///  - SlicingWindowAggregator: stream slicing — partial aggregates per
///    non-overlapping slice, each window result combines size/slide partials;
///    each element is lifted exactly once (shared across overlapping
///    windows).
///  - TwoStacksSlidingAggregator: amortised O(1) insert/evict FIFO sliding
///    aggregation for arbitrary (also non-invertible) aggregates, the classic
///    two-stacks trick used for count-based windows.
///  - RetractingAggregator: O(1) insert/evict for invertible aggregates via
///    Retract.

#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/time.h"
#include "window/aggregate.h"
#include "window/window.h"

namespace cq {

/// \brief A (window, aggregate value) result.
struct WindowResult {
  TimeInterval window;
  Value value;

  bool operator==(const WindowResult& other) const = default;
};

/// \brief Common interface: feed timestamped values, harvest results whose
/// windows are complete when the event-time watermark passes.
class WindowedAggregator {
 public:
  virtual ~WindowedAggregator() = default;

  /// \brief Incorporates one element. Elements may arrive out of order up to
  /// the current watermark; elements at or below the watermark are rejected
  /// with Status::LateData.
  virtual Status Add(Timestamp ts, const Value& v) = 0;

  /// \brief Advances the watermark; returns results of every window whose
  /// end <= watermark (ascending by window), each exactly once.
  virtual std::vector<WindowResult> AdvanceWatermark(Timestamp watermark) = 0;

  /// \brief Resident state footprint in "units" (buffered elements or
  /// partial aggregates) — exposed so benches can report memory shape.
  virtual size_t StateSize() const = 0;
};

/// \brief Baseline: buffer everything in-window, recompute per window.
class NaiveWindowAggregator : public WindowedAggregator {
 public:
  NaiveWindowAggregator(std::shared_ptr<WindowAssigner> assigner,
                        std::shared_ptr<AggregateFunction> func);

  Status Add(Timestamp ts, const Value& v) override;
  std::vector<WindowResult> AdvanceWatermark(Timestamp watermark) override;
  size_t StateSize() const override { return buffer_.size(); }

 private:
  std::shared_ptr<WindowAssigner> assigner_;
  std::shared_ptr<AggregateFunction> func_;
  std::multimap<Timestamp, Value> buffer_;
  // Ends of windows already emitted are < emitted_up_to_.
  Timestamp watermark_ = kMinTimestamp;
  // Pending windows keyed by interval, discovered on Add.
  std::map<TimeInterval, bool> pending_;
};

/// \brief Stream slicing: one partial aggregate per slide-aligned slice.
///
/// Requires a sliding/tumbling window spec (size, slide) with size a
/// multiple of slide for exact sharing; enforced at construction.
class SlicingWindowAggregator : public WindowedAggregator {
 public:
  /// \brief Creates a slicing aggregator; size must be a positive multiple
  /// of slide.
  static Result<std::unique_ptr<SlicingWindowAggregator>> Make(
      Duration size, Duration slide, std::shared_ptr<AggregateFunction> func);

  Status Add(Timestamp ts, const Value& v) override;
  std::vector<WindowResult> AdvanceWatermark(Timestamp watermark) override;
  size_t StateSize() const override { return slices_.size(); }

 private:
  SlicingWindowAggregator(Duration size, Duration slide,
                          std::shared_ptr<AggregateFunction> func)
      : size_(size), slide_(slide), func_(std::move(func)) {}

  Timestamp SliceStart(Timestamp ts) const {
    Timestamp rem = ts % slide_;
    if (rem < 0) rem += slide_;
    return ts - rem;
  }

  Duration size_;
  Duration slide_;
  std::shared_ptr<AggregateFunction> func_;
  std::map<Timestamp, AggState> slices_;  // slice start -> partial
  Timestamp watermark_ = kMinTimestamp;
  bool emitted_any_ = false;
  Timestamp next_window_end_ = 0;  // valid once emitted_any_ or first Add
  bool has_data_ = false;
  Timestamp min_ts_seen_ = 0;
};

/// \brief Two-stacks FIFO aggregator: amortised O(1) push/evict for any
/// associative aggregate, no invertibility required.
///
/// This is the evaluation core for count-based ("last N") windows and a
/// building block for eager time-window evaluation.
class TwoStacksSlidingAggregator {
 public:
  explicit TwoStacksSlidingAggregator(std::shared_ptr<AggregateFunction> func)
      : func_(std::move(func)) {}

  /// \brief Pushes a value at the back of the FIFO window.
  void Push(const Value& v);

  /// \brief Evicts the oldest value. Precondition: !Empty().
  void Pop();

  /// \brief Aggregate over the current window contents.
  Value Query() const;

  size_t Size() const { return front_.size() + back_.size(); }
  bool Empty() const { return Size() == 0; }

 private:
  struct Entry {
    AggState lifted;  // lift of this element
    AggState agg;     // running combine (suffix for front, prefix for back)
  };

  void FlipIfNeeded();

  std::shared_ptr<AggregateFunction> func_;
  std::vector<Entry> front_;  // eviction side; agg = combine of this..bottom
  std::vector<Entry> back_;   // insertion side; agg = combine of bottom..this
};

/// \brief O(1) insert/evict sliding aggregation for invertible aggregates.
class RetractingAggregator {
 public:
  explicit RetractingAggregator(std::shared_ptr<AggregateFunction> func)
      : func_(std::move(func)), state_(func_->Identity()) {}

  void Push(const Value& v) {
    state_ = func_->Combine(state_, func_->Lift(v));
    window_.push_back(v);
  }

  void Pop() {
    state_ = func_->Retract(state_, window_.front());
    window_.pop_front();
  }

  Value Query() const { return func_->Lower(state_); }
  size_t Size() const { return window_.size(); }

 private:
  std::shared_ptr<AggregateFunction> func_;
  AggState state_;
  std::deque<Value> window_;
};

}  // namespace cq

#endif  // CQ_WINDOW_SLIDING_H_

#include "window/sliding.h"

#include <algorithm>

namespace cq {

// ---- NaiveWindowAggregator ----

NaiveWindowAggregator::NaiveWindowAggregator(
    std::shared_ptr<WindowAssigner> assigner,
    std::shared_ptr<AggregateFunction> func)
    : assigner_(std::move(assigner)), func_(std::move(func)) {}

Status NaiveWindowAggregator::Add(Timestamp ts, const Value& v) {
  if (ts < watermark_) {
    return Status::LateData("element at " + std::to_string(ts) +
                            " behind watermark " + std::to_string(watermark_));
  }
  buffer_.emplace(ts, v);
  for (const TimeInterval& w : assigner_->AssignWindows(ts)) {
    pending_.emplace(w, true);
  }
  return Status::OK();
}

std::vector<WindowResult> NaiveWindowAggregator::AdvanceWatermark(
    Timestamp watermark) {
  if (watermark > watermark_) watermark_ = watermark;
  std::vector<WindowResult> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    const TimeInterval& w = it->first;
    if (w.end > watermark_) {
      ++it;
      continue;
    }
    // Recompute from the raw buffer: the naive strategy's defining cost.
    AggState state = func_->Identity();
    auto lo = buffer_.lower_bound(w.start);
    auto hi = buffer_.lower_bound(w.end);
    for (auto b = lo; b != hi; ++b) {
      state = func_->Combine(state, func_->Lift(b->second));
    }
    out.push_back({w, func_->Lower(state)});
    it = pending_.erase(it);
  }
  // Evict buffered elements all of whose windows have been emitted. For the
  // stateless assigners the last window containing ts has the maximal end
  // among AssignWindows(ts), which is monotone in ts, so a prefix scan works.
  while (!buffer_.empty()) {
    Timestamp ts = buffer_.begin()->first;
    Timestamp max_end = kMinTimestamp;
    for (const TimeInterval& w : assigner_->AssignWindows(ts)) {
      max_end = std::max(max_end, w.end);
    }
    if (max_end > watermark_) break;
    buffer_.erase(buffer_.begin());
  }
  std::sort(out.begin(), out.end(),
            [](const WindowResult& a, const WindowResult& b) {
              return a.window < b.window;
            });
  return out;
}

// ---- SlicingWindowAggregator ----

Result<std::unique_ptr<SlicingWindowAggregator>> SlicingWindowAggregator::Make(
    Duration size, Duration slide, std::shared_ptr<AggregateFunction> func) {
  if (size <= 0 || slide <= 0) {
    return Status::InvalidArgument("window size and slide must be positive");
  }
  if (size % slide != 0) {
    return Status::InvalidArgument(
        "slicing aggregation requires size to be a multiple of slide");
  }
  return std::unique_ptr<SlicingWindowAggregator>(
      new SlicingWindowAggregator(size, slide, std::move(func)));
}

Status SlicingWindowAggregator::Add(Timestamp ts, const Value& v) {
  if (ts < watermark_) {
    return Status::LateData("element at " + std::to_string(ts) +
                            " behind watermark " + std::to_string(watermark_));
  }
  Timestamp slice = SliceStart(ts);
  auto it = slices_.find(slice);
  if (it == slices_.end()) {
    slices_.emplace(slice, func_->Lift(v));
  } else {
    it->second = func_->Combine(it->second, func_->Lift(v));
  }
  if (!has_data_) {
    has_data_ = true;
    min_ts_seen_ = ts;
    if (!emitted_any_) next_window_end_ = SliceStart(ts) + slide_;
  } else if (ts < min_ts_seen_) {
    min_ts_seen_ = ts;
    if (!emitted_any_) {
      next_window_end_ = std::min(next_window_end_, SliceStart(ts) + slide_);
    }
  }
  return Status::OK();
}

std::vector<WindowResult> SlicingWindowAggregator::AdvanceWatermark(
    Timestamp watermark) {
  std::vector<WindowResult> out;
  if (watermark > watermark_) watermark_ = watermark;
  if (!has_data_) return out;
  while (next_window_end_ <= watermark_) {
    if (slices_.empty()) {
      // Nothing buffered: skip ahead to the first window end past the
      // watermark, keeping grid alignment.
      Timestamp gap = watermark_ - next_window_end_;
      next_window_end_ += (gap / slide_ + 1) * slide_;
      break;
    }
    Timestamp first_slice = slices_.begin()->first;
    if (first_slice >= next_window_end_) {
      // Skip empty windows up to the first window that contains data.
      next_window_end_ = first_slice + slide_;
      continue;
    }
    TimeInterval w{next_window_end_ - size_, next_window_end_};
    AggState state = func_->Identity();
    bool any = false;
    auto lo = slices_.lower_bound(w.start);
    for (auto it = lo; it != slices_.end() && it->first < w.end; ++it) {
      state = func_->Combine(state, it->second);
      any = true;
    }
    if (any) out.push_back({w, func_->Lower(state)});
    emitted_any_ = true;
    next_window_end_ += slide_;
    // Evict slices whose last containing window has now been emitted.
    while (!slices_.empty() &&
           slices_.begin()->first + size_ < next_window_end_) {
      slices_.erase(slices_.begin());
    }
  }
  return out;
}

// ---- TwoStacksSlidingAggregator ----

void TwoStacksSlidingAggregator::Push(const Value& v) {
  Entry e;
  e.lifted = func_->Lift(v);
  e.agg = back_.empty() ? e.lifted : func_->Combine(back_.back().agg, e.lifted);
  back_.push_back(std::move(e));
}

void TwoStacksSlidingAggregator::FlipIfNeeded() {
  if (!front_.empty()) return;
  while (!back_.empty()) {
    Entry e = std::move(back_.back());
    back_.pop_back();
    e.agg = front_.empty() ? e.lifted
                           : func_->Combine(e.lifted, front_.back().agg);
    front_.push_back(std::move(e));
  }
}

void TwoStacksSlidingAggregator::Pop() {
  FlipIfNeeded();
  front_.pop_back();
}

Value TwoStacksSlidingAggregator::Query() const {
  if (front_.empty() && back_.empty()) {
    return func_->Lower(func_->Identity());
  }
  if (front_.empty()) return func_->Lower(back_.back().agg);
  if (back_.empty()) return func_->Lower(front_.back().agg);
  return func_->Lower(func_->Combine(front_.back().agg, back_.back().agg));
}

}  // namespace cq

#include "window/aggregate.h"

#include <cassert>

namespace cq {

const char* AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kAvg:
      return "AVG";
  }
  return "?";
}

AggState AggregateFunction::Retract(const AggState&, const Value&) const {
  assert(false && "Retract called on non-invertible aggregate");
  return AggState{};
}

std::unique_ptr<AggregateFunction> AggregateFunction::Make(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return std::make_unique<CountAggregate>();
    case AggregateKind::kSum:
      return std::make_unique<SumAggregate>();
    case AggregateKind::kMin:
      return std::make_unique<MinAggregate>();
    case AggregateKind::kMax:
      return std::make_unique<MaxAggregate>();
    case AggregateKind::kAvg:
      return std::make_unique<AvgAggregate>();
  }
  return nullptr;
}

// ---- COUNT ----

AggState CountAggregate::Lift(const Value& v) const {
  AggState s;
  s.count = v.is_null() ? 0 : 1;  // SQL: COUNT ignores NULLs
  return s;
}

AggState CountAggregate::Combine(const AggState& a, const AggState& b) const {
  AggState s;
  s.count = a.count + b.count;
  return s;
}

Value CountAggregate::Lower(const AggState& s) const { return Value(s.count); }

AggState CountAggregate::Retract(const AggState& s, const Value& v) const {
  AggState out = s;
  if (!v.is_null()) out.count -= 1;
  return out;
}

// ---- SUM ----

AggState SumAggregate::Lift(const Value& v) const {
  AggState s;
  if (!v.is_null()) {
    s.count = 1;
    s.sum = v.AsDouble();
  }
  return s;
}

AggState SumAggregate::Combine(const AggState& a, const AggState& b) const {
  AggState s;
  s.count = a.count + b.count;
  s.sum = a.sum + b.sum;
  return s;
}

Value SumAggregate::Lower(const AggState& s) const {
  if (s.count == 0) return Value::Null();  // SUM of empty set is NULL
  return Value(s.sum);
}

AggState SumAggregate::Retract(const AggState& s, const Value& v) const {
  AggState out = s;
  if (!v.is_null()) {
    out.count -= 1;
    out.sum -= v.AsDouble();
  }
  return out;
}

// ---- AVG ----

AggState AvgAggregate::Lift(const Value& v) const {
  AggState s;
  if (!v.is_null()) {
    s.count = 1;
    s.sum = v.AsDouble();
  }
  return s;
}

AggState AvgAggregate::Combine(const AggState& a, const AggState& b) const {
  AggState s;
  s.count = a.count + b.count;
  s.sum = a.sum + b.sum;
  return s;
}

Value AvgAggregate::Lower(const AggState& s) const {
  if (s.count == 0) return Value::Null();
  return Value(s.sum / static_cast<double>(s.count));
}

AggState AvgAggregate::Retract(const AggState& s, const Value& v) const {
  AggState out = s;
  if (!v.is_null()) {
    out.count -= 1;
    out.sum -= v.AsDouble();
  }
  return out;
}

// ---- MIN ----

AggState MinAggregate::Lift(const Value& v) const {
  AggState s;
  s.min = v;
  return s;
}

AggState MinAggregate::Combine(const AggState& a, const AggState& b) const {
  AggState s;
  if (a.min.is_null()) {
    s.min = b.min;
  } else if (b.min.is_null()) {
    s.min = a.min;
  } else {
    s.min = a.min <= b.min ? a.min : b.min;
  }
  return s;
}

Value MinAggregate::Lower(const AggState& s) const { return s.min; }

// ---- MAX ----

AggState MaxAggregate::Lift(const Value& v) const {
  AggState s;
  s.max = v;
  return s;
}

AggState MaxAggregate::Combine(const AggState& a, const AggState& b) const {
  AggState s;
  if (a.max.is_null()) {
    s.max = b.max;
  } else if (b.max.is_null()) {
    s.max = a.max;
  } else {
    s.max = a.max >= b.max ? a.max : b.max;
  }
  return s;
}

Value MaxAggregate::Lower(const AggState& s) const { return s.max; }

}  // namespace cq

#include "window/window.h"

#include <algorithm>
#include <cassert>

namespace cq {

namespace {

/// Floor of ts to the window grid defined by (size, offset), robust to
/// negative timestamps.
Timestamp AlignToGrid(Timestamp ts, Duration size, Timestamp offset) {
  Timestamp shifted = ts - offset;
  Timestamp rem = shifted % size;
  if (rem < 0) rem += size;
  return ts - rem;
}

}  // namespace

TumblingWindowAssigner::TumblingWindowAssigner(Duration size, Timestamp offset)
    : size_(size), offset_(offset) {
  assert(size > 0 && "tumbling window size must be positive");
}

std::vector<TimeInterval> TumblingWindowAssigner::AssignWindows(
    Timestamp ts) const {
  Timestamp start = AlignToGrid(ts, size_, offset_);
  return {{start, start + size_}};
}

std::string TumblingWindowAssigner::ToString() const {
  return "Tumbling(size=" + std::to_string(size_) + ")";
}

SlidingWindowAssigner::SlidingWindowAssigner(Duration size, Duration slide,
                                             Timestamp offset)
    : size_(size), slide_(slide), offset_(offset) {
  assert(size > 0 && slide > 0 && "sliding window size/slide must be positive");
}

std::vector<TimeInterval> SlidingWindowAssigner::AssignWindows(
    Timestamp ts) const {
  std::vector<TimeInterval> out;
  // Last window that starts at or before ts.
  Timestamp last_start = AlignToGrid(ts, slide_, offset_);
  for (Timestamp start = last_start; start > ts - size_; start -= slide_) {
    out.push_back({start, start + size_});
  }
  // Emit ascending by start for determinism.
  std::reverse(out.begin(), out.end());
  return out;
}

size_t SlidingWindowAssigner::MaxWindowsPerElement() const {
  return static_cast<size_t>((size_ + slide_ - 1) / slide_);
}

std::string SlidingWindowAssigner::ToString() const {
  return "Sliding(size=" + std::to_string(size_) +
         ", slide=" + std::to_string(slide_) + ")";
}

SessionWindowAssigner::SessionWindowAssigner(Duration gap) : gap_(gap) {
  assert(gap > 0 && "session gap must be positive");
}

std::vector<TimeInterval> SessionWindowAssigner::AssignWindows(
    Timestamp ts) const {
  return {{ts, ts + gap_}};
}

std::string SessionWindowAssigner::ToString() const {
  return "Session(gap=" + std::to_string(gap_) + ")";
}

TimeInterval SessionWindowMerger::AddElement(
    Timestamp ts, std::vector<TimeInterval>* absorbed) {
  TimeInterval proto{ts, ts + gap_};
  // Find all active sessions overlapping (or touching) the proto window and
  // merge them. Sessions touch if one's end >= other's start.
  Timestamp merged_start = proto.start;
  Timestamp merged_end = proto.end;
  // First candidate: the last session starting at or before proto.start.
  auto it = sessions_.upper_bound(proto.start);
  if (it != sessions_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= proto.start) it = prev;
  }
  while (it != sessions_.end() && it->first <= merged_end) {
    if (absorbed != nullptr) absorbed->push_back({it->first, it->second});
    merged_start = std::min(merged_start, it->first);
    merged_end = std::max(merged_end, it->second);
    it = sessions_.erase(it);
  }
  sessions_[merged_start] = merged_end;
  return {merged_start, merged_end};
}

std::vector<TimeInterval> SessionWindowMerger::CloseUpTo(Timestamp watermark) {
  std::vector<TimeInterval> closed;
  auto it = sessions_.begin();
  while (it != sessions_.end() && it->second <= watermark) {
    closed.push_back({it->first, it->second});
    it = sessions_.erase(it);
  }
  return closed;
}

std::vector<TimeInterval> SessionWindowMerger::ActiveSessions() const {
  std::vector<TimeInterval> out;
  out.reserve(sessions_.size());
  for (const auto& [s, e] : sessions_) out.push_back({s, e});
  return out;
}

std::optional<Tuple> RowsWindow::Add(Tuple t) {
  buffer_.push_back(std::move(t));
  if (buffer_.size() > n_) {
    Tuple evicted = std::move(buffer_.front());
    buffer_.pop_front();
    return evicted;
  }
  return std::nullopt;
}

std::optional<Tuple> PartitionedRowsWindow::Add(const Tuple& t) {
  Tuple key = t.Project(key_indexes_);
  auto it = partitions_.find(key);
  if (it == partitions_.end()) {
    it = partitions_.emplace(std::move(key), RowsWindow(n_)).first;
  }
  return it->second.Add(t);
}

std::vector<Tuple> PartitionedRowsWindow::Contents() const {
  std::vector<Tuple> out;
  for (const auto& [key, window] : partitions_) {
    for (const auto& t : window.contents()) out.push_back(t);
  }
  return out;
}

}  // namespace cq

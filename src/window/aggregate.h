#ifndef CQ_WINDOW_AGGREGATE_H_
#define CQ_WINDOW_AGGREGATE_H_

/// \file aggregate.h
/// \brief Aggregate functions in lift/combine/lower form.
///
/// Window-aggregation sharing techniques (stream slicing, two-stacks) require
/// aggregates decomposed into: lift (value -> partial), combine (associative
/// merge of partials), lower (partial -> final value). Invertible aggregates
/// additionally support retract; the engine picks evaluation strategies based
/// on these capabilities, mirroring the general window-aggregation frameworks
/// the survey cites (Scotty [87], window surveys [88]).

#include <memory>
#include <string>

#include "common/status.h"
#include "types/value.h"

namespace cq {

/// \brief Identifier of a built-in aggregate.
enum class AggregateKind { kCount, kSum, kMin, kMax, kAvg };

const char* AggregateKindToString(AggregateKind kind);

/// \brief A partial aggregate state, generic across built-ins.
struct AggState {
  int64_t count = 0;     // COUNT / AVG denominator
  double sum = 0;        // SUM / AVG numerator (double; exact for int sums
                         // within 2^53, acceptable for this engine)
  Value min;             // MIN partial (Null = empty)
  Value max;             // MAX partial (Null = empty)
};

/// \brief An aggregate function decomposed for shared evaluation.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual AggregateKind kind() const = 0;

  /// \brief Neutral element of combine().
  virtual AggState Identity() const { return AggState{}; }

  /// \brief Lifts a single input value into a partial.
  virtual AggState Lift(const Value& v) const = 0;

  /// \brief Associative merge of two partials.
  virtual AggState Combine(const AggState& a, const AggState& b) const = 0;

  /// \brief Final value of a partial.
  virtual Value Lower(const AggState& s) const = 0;

  /// \brief Whether Retract() is supported (true for COUNT/SUM/AVG, false
  /// for MIN/MAX, whose inverses do not exist).
  virtual bool Invertible() const = 0;

  /// \brief Removes `v`'s contribution. Precondition: Invertible().
  virtual AggState Retract(const AggState& s, const Value& v) const;

  std::string ToString() const { return AggregateKindToString(kind()); }

  /// \brief Factory for built-ins.
  static std::unique_ptr<AggregateFunction> Make(AggregateKind kind);
};

class CountAggregate : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kCount; }
  AggState Lift(const Value& v) const override;
  AggState Combine(const AggState& a, const AggState& b) const override;
  Value Lower(const AggState& s) const override;
  bool Invertible() const override { return true; }
  AggState Retract(const AggState& s, const Value& v) const override;
};

class SumAggregate : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kSum; }
  AggState Lift(const Value& v) const override;
  AggState Combine(const AggState& a, const AggState& b) const override;
  Value Lower(const AggState& s) const override;
  bool Invertible() const override { return true; }
  AggState Retract(const AggState& s, const Value& v) const override;
};

class AvgAggregate : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kAvg; }
  AggState Lift(const Value& v) const override;
  AggState Combine(const AggState& a, const AggState& b) const override;
  Value Lower(const AggState& s) const override;
  bool Invertible() const override { return true; }
  AggState Retract(const AggState& s, const Value& v) const override;
};

class MinAggregate : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kMin; }
  AggState Lift(const Value& v) const override;
  AggState Combine(const AggState& a, const AggState& b) const override;
  Value Lower(const AggState& s) const override;
  bool Invertible() const override { return false; }
};

class MaxAggregate : public AggregateFunction {
 public:
  AggregateKind kind() const override { return AggregateKind::kMax; }
  AggState Lift(const Value& v) const override;
  AggState Combine(const AggState& a, const AggState& b) const override;
  Value Lower(const AggState& s) const override;
  bool Invertible() const override { return false; }
};

}  // namespace cq

#endif  // CQ_WINDOW_AGGREGATE_H_

#ifndef CQ_WINDOW_WINDOW_H_
#define CQ_WINDOW_WINDOW_H_

/// \file window.h
/// \brief Window operators (paper Definition 2.4 and §4.1.3).
///
/// Windows are functions W : T -> T x T that segment an unbounded stream
/// into finite, queryable extents. We implement the window families the
/// survey discusses: time-based tumbling, sliding (hopping), and session
/// windows, plus tuple(count)-based and partitioned windows from CQL (§3.1).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "types/tuple.h"

namespace cq {

/// \brief Assigns each event-time instant to the set of time windows it
/// belongs to. Stateless; suitable for tumbling and sliding windows.
class WindowAssigner {
 public:
  virtual ~WindowAssigner() = default;

  /// \brief All windows containing an element with timestamp `ts`.
  virtual std::vector<TimeInterval> AssignWindows(Timestamp ts) const = 0;

  /// \brief Maximum number of windows a single element can belong to.
  virtual size_t MaxWindowsPerElement() const = 0;

  virtual std::string ToString() const = 0;
};

/// \brief Tumbling windows: consecutive, non-overlapping intervals of fixed
/// `size`, aligned to multiples of `size` plus `offset`.
class TumblingWindowAssigner : public WindowAssigner {
 public:
  explicit TumblingWindowAssigner(Duration size, Timestamp offset = 0);

  std::vector<TimeInterval> AssignWindows(Timestamp ts) const override;
  size_t MaxWindowsPerElement() const override { return 1; }
  std::string ToString() const override;

  Duration size() const { return size_; }
  Timestamp offset() const { return offset_; }

 private:
  Duration size_;
  Timestamp offset_;
};

/// \brief Sliding (hopping) windows: intervals of fixed `size` starting every
/// `slide`; each element belongs to ceil(size/slide) windows.
class SlidingWindowAssigner : public WindowAssigner {
 public:
  SlidingWindowAssigner(Duration size, Duration slide, Timestamp offset = 0);

  std::vector<TimeInterval> AssignWindows(Timestamp ts) const override;
  size_t MaxWindowsPerElement() const override;
  std::string ToString() const override;

  Duration size() const { return size_; }
  Duration slide() const { return slide_; }
  Timestamp offset() const { return offset_; }

 private:
  Duration size_;
  Duration slide_;
  Timestamp offset_;
};

/// \brief Session windows: per-element proto-windows [ts, ts+gap) that are
/// merged while they overlap. Unlike tumbling/sliding assigners, session
/// windowing is stateful; SessionWindowMerger tracks the merge.
class SessionWindowAssigner : public WindowAssigner {
 public:
  explicit SessionWindowAssigner(Duration gap);

  std::vector<TimeInterval> AssignWindows(Timestamp ts) const override;
  size_t MaxWindowsPerElement() const override { return 1; }
  std::string ToString() const override;

  Duration gap() const { return gap_; }

 private:
  Duration gap_;
};

/// \brief Incremental merger for session windows (one instance per key).
///
/// Feeding timestamps produces the current set of merged sessions; sessions
/// whose end precedes the watermark are *closed* and can be emitted/expired.
class SessionWindowMerger {
 public:
  explicit SessionWindowMerger(Duration gap) : gap_(gap) {}

  /// \brief Incorporates an element; returns the merged session it now
  /// belongs to. When `absorbed` is non-null it receives the pre-existing
  /// sessions that were merged away (callers migrate per-session state).
  TimeInterval AddElement(Timestamp ts,
                          std::vector<TimeInterval>* absorbed = nullptr);

  /// \brief Sessions with end <= watermark, removed from the active set.
  std::vector<TimeInterval> CloseUpTo(Timestamp watermark);

  /// \brief Currently open (unmerged-into-closed) sessions, ascending.
  std::vector<TimeInterval> ActiveSessions() const;

 private:
  Duration gap_;
  // start -> end of active sessions; non-overlapping by construction.
  std::map<Timestamp, Timestamp> sessions_;
};

/// \brief CQL "[Rows N]": count-based window over arrival order — the last N
/// tuples. Stateful sliding buffer; windows are defined on sequence numbers.
class RowsWindow {
 public:
  explicit RowsWindow(size_t n) : n_(n) {}

  /// \brief Appends a tuple; evicts the oldest once more than N are held.
  /// Returns the evicted tuple if any.
  std::optional<Tuple> Add(Tuple t);

  const std::deque<Tuple>& contents() const { return buffer_; }
  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return n_; }

 private:
  size_t n_;
  std::deque<Tuple> buffer_;
};

/// \brief CQL "[Partition By k Rows N]": an independent RowsWindow per
/// partition key — the last N tuples *per key*.
class PartitionedRowsWindow {
 public:
  PartitionedRowsWindow(size_t n, std::vector<size_t> key_indexes)
      : n_(n), key_indexes_(std::move(key_indexes)) {}

  /// \brief Appends a tuple to its partition; returns any evicted tuple.
  std::optional<Tuple> Add(const Tuple& t);

  /// \brief Union of all per-partition window contents (deterministic order:
  /// sorted by key, then arrival).
  std::vector<Tuple> Contents() const;

  size_t num_partitions() const { return partitions_.size(); }

 private:
  size_t n_;
  std::vector<size_t> key_indexes_;
  std::map<Tuple, RowsWindow> partitions_;
};

}  // namespace cq

#endif  // CQ_WINDOW_WINDOW_H_

#ifndef CQ_KVSTORE_WAL_H_
#define CQ_KVSTORE_WAL_H_

/// \file wal.h
/// \brief Write-ahead log for the embedded KV store.
///
/// Every mutation is appended to the WAL before being applied to the
/// memtable; on open, the store replays the log to rebuild its state. The
/// record format is length-prefixed binary with a per-record checksum so a
/// torn tail write is detected and truncated rather than corrupting replay.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cq {

/// \brief One logical WAL record.
struct WalRecord {
  enum class Op : uint8_t { kPut = 1, kDelete = 2 };
  Op op = Op::kPut;
  std::string key;
  std::string value;  // empty for deletes
};

/// \brief Appender over a WAL file.
class WalWriter {
 public:
  ~WalWriter();

  /// \brief Opens (creating or appending to) the log at `path`.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path);

  Status Append(const WalRecord& record);

  /// \brief Flushes buffered records to the OS.
  Status Flush();

 private:
  explicit WalWriter(FILE* f) : file_(f) {}
  FILE* file_;
};

/// \brief Reads all intact records from a WAL file. A trailing partial or
/// checksum-failing record ends the replay cleanly (crash-consistent).
Result<std::vector<WalRecord>> ReadWal(const std::string& path);

}  // namespace cq

#endif  // CQ_KVSTORE_WAL_H_

#include "kvstore/kvstore.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cq {

namespace {
constexpr uint64_t kLiveSeqno = std::numeric_limits<uint64_t>::max();
}  // namespace

// ---- MergingIterator ----

/// K-way merge over the memtable (copied under lock at creation) and the
/// immutable runs (shared ownership). Yields the newest visible version per
/// user key, ascending; tombstoned keys are skipped.
class MergingIterator : public KVIterator {
 public:
  MergingIterator(std::vector<KVStore::Entry> memtable,
                  std::vector<std::shared_ptr<const std::vector<KVStore::Entry>>>
                      runs,
                  uint64_t max_seqno)
      : memtable_(std::move(memtable)), max_seqno_(max_seqno) {
    sources_.push_back({&memtable_, 0});
    run_refs_ = std::move(runs);
    for (const auto& r : run_refs_) sources_.push_back({r.get(), 0});
    FindNextVisible();
  }

  bool Valid() const override { return valid_; }

  void Next() override { FindNextVisible(); }

  const std::string& key() const override { return key_; }
  const std::string& value() const override { return value_; }

  void Seek(const std::string& target) override {
    KVStore::VersionedKey probe{target, kLiveSeqno};
    for (auto& s : sources_) {
      auto it = std::lower_bound(
          s.data->begin(), s.data->end(), probe,
          [](const KVStore::Entry& e, const KVStore::VersionedKey& k) {
            return e.vkey < k;
          });
      s.pos = static_cast<size_t>(it - s.data->begin());
    }
    has_last_key_ = false;
    FindNextVisible();
  }

 private:
  struct Source {
    const std::vector<KVStore::Entry>* data;
    size_t pos;
  };

  // Advances a source past versions invisible to the snapshot.
  void SkipInvisible(Source* s) {
    while (s->pos < s->data->size() &&
           (*s->data)[s->pos].vkey.seqno > max_seqno_) {
      ++s->pos;
    }
  }

  void FindNextVisible() {
    while (true) {
      const KVStore::Entry* best = nullptr;
      for (auto& s : sources_) {
        SkipInvisible(&s);
        // Also skip versions of the key we already emitted/decided.
        while (s.pos < s.data->size() && has_last_key_ &&
               (*s.data)[s.pos].vkey.user_key == last_key_) {
          ++s.pos;
          SkipInvisible(&s);
        }
        if (s.pos >= s.data->size()) continue;
        const KVStore::Entry& e = (*s.data)[s.pos];
        if (best == nullptr || e.vkey < best->vkey) best = &e;
      }
      if (best == nullptr) {
        valid_ = false;
        return;
      }
      last_key_ = best->vkey.user_key;
      has_last_key_ = true;
      if (best->value.has_value()) {
        key_ = best->vkey.user_key;
        value_ = *best->value;
        valid_ = true;
        return;
      }
      // Tombstone: the key is deleted at this snapshot; loop to the next key.
    }
  }

  std::vector<KVStore::Entry> memtable_;
  std::vector<std::shared_ptr<const std::vector<KVStore::Entry>>> run_refs_;
  std::vector<Source> sources_;
  uint64_t max_seqno_;
  bool valid_ = false;
  bool has_last_key_ = false;
  std::string last_key_;
  std::string key_;
  std::string value_;
};

// ---- KVStore ----

Result<std::unique_ptr<KVStore>> KVStore::Open(KVStoreOptions options) {
  auto store = std::unique_ptr<KVStore>(new KVStore(options));
  if (!options.wal_path.empty()) {
    CQ_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                        ReadWal(options.wal_path));
    for (const auto& rec : records) {
      std::optional<std::string> v;
      if (rec.op == WalRecord::Op::kPut) v = rec.value;
      CQ_RETURN_NOT_OK(store->WriteInternal(rec.key, std::move(v),
                                            /*log=*/false));
    }
    CQ_ASSIGN_OR_RETURN(store->wal_, WalWriter::Open(options.wal_path));
  }
  return store;
}

KVStore::~KVStore() {
  if (wal_ != nullptr) {
    Status s = wal_->Flush();
    (void)s;
  }
}

Status KVStore::Put(const std::string& key, const std::string& value) {
  return WriteInternal(key, value, /*log=*/true);
}

Status KVStore::Delete(const std::string& key) {
  return WriteInternal(key, std::nullopt, /*log=*/true);
}

Status KVStore::WriteInternal(const std::string& key,
                              std::optional<std::string> value, bool log) {
  std::lock_guard<std::mutex> lock(mu_);
  if (log && wal_ != nullptr) {
    WalRecord rec;
    rec.op = value.has_value() ? WalRecord::Op::kPut : WalRecord::Op::kDelete;
    rec.key = key;
    rec.value = value.value_or("");
    CQ_RETURN_NOT_OK(wal_->Append(rec));
  }
  memtable_.emplace(VersionedKey{key, next_seqno_++}, std::move(value));
  if (memtable_.size() >= options_.memtable_max_entries) {
    CQ_RETURN_NOT_OK(FlushLocked());
  }
  return Status::OK();
}

Status KVStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status KVStore::FlushLocked() {
  if (memtable_.empty()) return Status::OK();
  auto run = std::make_shared<Run>();
  run->entries.reserve(memtable_.size());
  run->bloom = std::make_unique<BloomFilter>(memtable_.size());
  for (auto& [vkey, value] : memtable_) {
    run->bloom->Add(vkey.user_key);
    run->entries.push_back({vkey, std::move(value)});
  }
  run->min_key = run->entries.front().vkey.user_key;
  run->max_key = run->entries.back().vkey.user_key;
  memtable_.clear();
  runs_.insert(runs_.begin(), std::move(run));  // newest first
  ++stats_.flushes;
  if (runs_.size() > options_.max_runs_before_compaction) {
    return CompactLocked();
  }
  return Status::OK();
}

uint64_t KVStore::OldestLiveSnapshot() const {
  return live_snapshots_.empty() ? kLiveSeqno : *live_snapshots_.begin();
}

Status KVStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Status KVStore::CompactLocked() {
  if (runs_.empty()) return Status::OK();
  // Gather all run entries in sorted order (k-way merge via sort: runs are
  // individually sorted; a std::merge cascade would be faster but this is a
  // full compaction, already O(n log n) overall).
  std::vector<Entry> all;
  size_t total = 0;
  for (const auto& r : runs_) total += r->entries.size();
  all.reserve(total);
  for (const auto& r : runs_) {
    all.insert(all.end(), r->entries.begin(), r->entries.end());
  }
  std::sort(all.begin(), all.end(),
            [](const Entry& a, const Entry& b) { return a.vkey < b.vkey; });

  std::vector<uint64_t> snaps(live_snapshots_.begin(), live_snapshots_.end());

  auto run = std::make_shared<Run>();
  run->bloom = std::make_unique<BloomFilter>(all.size());
  size_t i = 0;
  while (i < all.size()) {
    size_t j = i;
    while (j < all.size() &&
           all[j].vkey.user_key == all[i].vkey.user_key) {
      ++j;
    }
    // Versions of one key, newest (largest seqno) first: [i, j).
    // Keep: (a) the newest version for live reads — unless it is a
    // tombstone, which after a full compaction shadows nothing;
    // (b) for each live snapshot s, the newest version with seqno <= s.
    std::vector<bool> keep(j - i, false);
    if (all[i].value.has_value()) keep[0] = true;
    for (uint64_t s : snaps) {
      for (size_t k = i; k < j; ++k) {
        if (all[k].vkey.seqno <= s) {
          keep[k - i] = true;
          break;
        }
      }
    }
    for (size_t k = i; k < j; ++k) {
      if (keep[k - i]) {
        run->bloom->Add(all[k].vkey.user_key);
        run->entries.push_back(std::move(all[k]));
      }
    }
    i = j;
  }
  runs_.clear();
  if (!run->entries.empty()) {
    run->min_key = run->entries.front().vkey.user_key;
    run->max_key = run->entries.back().vkey.user_key;
    runs_.push_back(std::move(run));
  }
  ++stats_.compactions;
  return Status::OK();
}

Result<std::string> KVStore::Get(const std::string& key) const {
  return GetAtSeqno(key, kLiveSeqno);
}

Result<std::string> KVStore::Get(const std::string& key,
                                 const KVSnapshot& snapshot) const {
  return GetAtSeqno(key, snapshot.seqno());
}

Result<std::string> KVStore::GetAtSeqno(const std::string& key,
                                        uint64_t max_seqno) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Memtable: first entry with vkey >= {key, max_seqno} is the newest
  // visible version of the key, if its user_key matches.
  auto it = memtable_.lower_bound(VersionedKey{key, max_seqno});
  if (it != memtable_.end() && it->first.user_key == key) {
    if (!it->second.has_value()) {
      return Status::NotFound("key '" + key + "' deleted");
    }
    return *it->second;
  }
  // Runs, newest first. Seqno ranges across sources are disjoint, so the
  // first source holding any visible version holds the newest one.
  for (const auto& r : runs_) {
    if (key < r->min_key || key > r->max_key) continue;
    if (!r->bloom->MayContain(key)) {
      ++stats_.bloom_negative;
      continue;
    }
    VersionedKey probe{key, max_seqno};
    auto rit = std::lower_bound(
        r->entries.begin(), r->entries.end(), probe,
        [](const Entry& e, const VersionedKey& k) { return e.vkey < k; });
    if (rit != r->entries.end() && rit->vkey.user_key == key) {
      if (!rit->value.has_value()) {
        return Status::NotFound("key '" + key + "' deleted");
      }
      return *rit->value;
    }
  }
  return Status::NotFound("key '" + key + "' not found");
}

KVSnapshot KVStore::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = next_seqno_ - 1;
  live_snapshots_.insert(seq);
  return KVSnapshot(seq);
}

void KVStore::ReleaseSnapshot(const KVSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_snapshots_.find(snapshot.seqno());
  if (it != live_snapshots_.end()) live_snapshots_.erase(it);
}

std::unique_ptr<KVIterator> KVStore::NewIterator() const {
  return NewIterator(KVSnapshot(kLiveSeqno));
}

std::unique_ptr<KVIterator> KVStore::NewIterator(
    const KVSnapshot& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> mem;
  mem.reserve(memtable_.size());
  for (const auto& [vkey, value] : memtable_) {
    if (vkey.seqno <= snapshot.seqno()) mem.push_back({vkey, value});
  }
  std::vector<std::shared_ptr<const std::vector<Entry>>> run_views;
  run_views.reserve(runs_.size());
  for (const auto& r : runs_) {
    run_views.push_back(
        std::shared_ptr<const std::vector<Entry>>(r, &r->entries));
  }
  return std::make_unique<MergingIterator>(std::move(mem),
                                           std::move(run_views),
                                           snapshot.seqno());
}

KVStoreStats KVStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  KVStoreStats s = stats_;
  s.memtable_entries = memtable_.size();
  s.num_runs = runs_.size();
  s.run_entries = 0;
  for (const auto& r : runs_) s.run_entries += r->entries.size();
  return s;
}

void KVStore::ExportMetrics(MetricsRegistry* registry,
                            const std::string& store_label) const {
  if (registry == nullptr) return;
  KVStoreStats s = stats();
  LabelSet labels{{"store", store_label}};
  registry->GetGauge("cq_kvstore_memtable_entries", labels)
      ->Set(static_cast<int64_t>(s.memtable_entries));
  registry->GetGauge("cq_kvstore_runs", labels)
      ->Set(static_cast<int64_t>(s.num_runs));
  registry->GetGauge("cq_kvstore_run_entries", labels)
      ->Set(static_cast<int64_t>(s.run_entries));
  registry->GetGauge("cq_kvstore_flushes", labels)
      ->Set(static_cast<int64_t>(s.flushes));
  registry->GetGauge("cq_kvstore_compactions", labels)
      ->Set(static_cast<int64_t>(s.compactions));
  registry->GetGauge("cq_kvstore_bloom_negative", labels)
      ->Set(static_cast<int64_t>(s.bloom_negative));
}

}  // namespace cq

#include "kvstore/wal.h"

#include <cstdio>
#include <memory>

#include "common/hash.h"

namespace cq {

namespace {

// Record layout: [u32 crc][u8 op][u32 klen][u32 vlen][key bytes][val bytes].
// crc covers everything after itself. "crc" is a 32-bit fold of FNV-1a —
// adequate for torn-write detection in this store.

uint32_t Checksum(uint8_t op, const std::string& key,
                  const std::string& value) {
  uint64_t h = Fnv1a64(key);
  h = HashCombine(h, Fnv1a64(value));
  h = HashCombine(h, op);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

bool WriteU32(FILE* f, uint32_t v) {
  return fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(FILE* f, uint32_t* v) {
  return fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

WalWriter::~WalWriter() {
  if (file_ != nullptr) fclose(file_);
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  FILE* f = fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("cannot open WAL at '" + path + "'");
  }
  return std::unique_ptr<WalWriter>(new WalWriter(f));
}

Status WalWriter::Append(const WalRecord& record) {
  uint8_t op = static_cast<uint8_t>(record.op);
  uint32_t crc = Checksum(op, record.key, record.value);
  uint32_t klen = static_cast<uint32_t>(record.key.size());
  uint32_t vlen = static_cast<uint32_t>(record.value.size());
  if (!WriteU32(file_, crc) || fwrite(&op, 1, 1, file_) != 1 ||
      !WriteU32(file_, klen) || !WriteU32(file_, vlen)) {
    return Status::IOError("WAL header write failed");
  }
  if (klen > 0 && fwrite(record.key.data(), 1, klen, file_) != klen) {
    return Status::IOError("WAL key write failed");
  }
  if (vlen > 0 && fwrite(record.value.data(), 1, vlen, file_) != vlen) {
    return Status::IOError("WAL value write failed");
  }
  return Status::OK();
}

Status WalWriter::Flush() {
  if (fflush(file_) != 0) return Status::IOError("WAL flush failed");
  return Status::OK();
}

Result<std::vector<WalRecord>> ReadWal(const std::string& path) {
  std::vector<WalRecord> out;
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return out;  // no log yet: empty store
  std::unique_ptr<FILE, int (*)(FILE*)> closer(f, fclose);
  while (true) {
    uint32_t crc, klen, vlen;
    uint8_t op;
    if (!ReadU32(f, &crc)) break;  // clean end
    if (fread(&op, 1, 1, f) != 1 || !ReadU32(f, &klen) || !ReadU32(f, &vlen)) {
      break;  // torn header: stop replay
    }
    WalRecord rec;
    rec.op = static_cast<WalRecord::Op>(op);
    rec.key.resize(klen);
    rec.value.resize(vlen);
    if (klen > 0 && fread(rec.key.data(), 1, klen, f) != klen) break;
    if (vlen > 0 && fread(rec.value.data(), 1, vlen, f) != vlen) break;
    if (Checksum(op, rec.key, rec.value) != crc) break;  // corrupt tail
    if (rec.op != WalRecord::Op::kPut && rec.op != WalRecord::Op::kDelete) {
      break;
    }
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace cq

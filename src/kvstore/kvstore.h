#ifndef CQ_KVSTORE_KVSTORE_H_
#define CQ_KVSTORE_KVSTORE_H_

/// \file kvstore.h
/// \brief Embedded ordered key-value store (Fig. 5 substrate).
///
/// Stateful streaming operators (windows, aggregations, joins) persist
/// intermediate results in an embedded KV store — RocksDB in the systems the
/// survey describes. This is the in-tree substitute: an LSM-shaped store
/// with a versioned memtable, write-ahead log, immutable sorted runs with
/// bloom filters, k-way merging iterators, snapshot isolation via sequence
/// numbers, and full-merge compaction.

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "kvstore/bloom.h"
#include "kvstore/wal.h"
#include "obs/metrics.h"

namespace cq {

/// \brief Store configuration.
struct KVStoreOptions {
  /// Memtable entry budget; exceeding it flushes to an immutable run.
  size_t memtable_max_entries = 4096;
  /// Merge all runs into one when their count exceeds this.
  size_t max_runs_before_compaction = 8;
  /// WAL path; empty disables durability (pure in-memory store).
  std::string wal_path;
};

/// \brief A read view at a fixed sequence number.
class KVSnapshot {
 public:
  explicit KVSnapshot(uint64_t seqno) : seqno_(seqno) {}
  uint64_t seqno() const { return seqno_; }

 private:
  uint64_t seqno_;
};

/// \brief Observability counters.
struct KVStoreStats {
  size_t memtable_entries = 0;
  size_t num_runs = 0;
  size_t run_entries = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bloom_negative = 0;  // point lookups short-circuited by blooms
};

/// \brief Forward iteration over the live (or snapshot) key space, keys
/// ascending, newest visible version per key, tombstones skipped.
class KVIterator {
 public:
  virtual ~KVIterator() = default;
  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual const std::string& key() const = 0;
  virtual const std::string& value() const = 0;
  /// \brief Repositions at the first key >= target.
  virtual void Seek(const std::string& target) = 0;
};

class KVStore {
 public:
  /// \brief Opens a store, replaying the WAL when one is configured.
  static Result<std::unique_ptr<KVStore>> Open(KVStoreOptions options);

  ~KVStore();

  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);

  /// \brief Point lookup against the live version.
  Result<std::string> Get(const std::string& key) const;

  /// \brief Point lookup against a snapshot.
  Result<std::string> Get(const std::string& key,
                          const KVSnapshot& snapshot) const;

  /// \brief Takes a snapshot pinning the current state for readers.
  KVSnapshot GetSnapshot() const;

  /// \brief Releases a snapshot (allows compaction to drop its versions).
  void ReleaseSnapshot(const KVSnapshot& snapshot);

  /// \brief Iterator over the live state (or a snapshot if provided).
  std::unique_ptr<KVIterator> NewIterator() const;
  std::unique_ptr<KVIterator> NewIterator(const KVSnapshot& snapshot) const;

  /// \brief Forces a memtable flush (tests / benches).
  Status Flush();

  /// \brief Forces a full compaction of all runs.
  Status Compact();

  KVStoreStats stats() const;

  /// \brief Publishes stats() into `registry` as
  /// `cq_kvstore_<stat>{store="<store_label>"}` gauges (memtable entries,
  /// run count/entries, flushes, compactions, bloom negatives). Snapshot
  /// semantics: call at metrics-dump cadence.
  void ExportMetrics(MetricsRegistry* registry,
                     const std::string& store_label) const;

 private:
  explicit KVStore(KVStoreOptions options) : options_(std::move(options)) {}

  struct VersionedKey {
    std::string user_key;
    uint64_t seqno;
    // user_key ascending, then seqno DESCENDING: the first version seen in
    // iteration order for a key is the newest.
    bool operator<(const VersionedKey& other) const {
      if (user_key != other.user_key) return user_key < other.user_key;
      return seqno > other.seqno;
    }
  };

  struct Entry {
    VersionedKey vkey;
    std::optional<std::string> value;  // nullopt == tombstone
  };

  /// An immutable sorted run (in-memory SST analogue).
  struct Run {
    std::vector<Entry> entries;  // sorted by VersionedKey
    std::unique_ptr<BloomFilter> bloom;
    std::string min_key;
    std::string max_key;
  };

  Status WriteInternal(const std::string& key,
                       std::optional<std::string> value, bool log);
  Status FlushLocked();
  Status CompactLocked();
  Result<std::string> GetAtSeqno(const std::string& key,
                                 uint64_t max_seqno) const;
  /// Smallest seqno any live snapshot can see (or UINT64_MAX when none).
  uint64_t OldestLiveSnapshot() const;

  friend class MergingIterator;

  KVStoreOptions options_;
  mutable std::mutex mu_;
  std::map<VersionedKey, std::optional<std::string>> memtable_;
  std::vector<std::shared_ptr<Run>> runs_;  // newest first
  std::unique_ptr<WalWriter> wal_;
  uint64_t next_seqno_ = 1;
  mutable std::multiset<uint64_t> live_snapshots_;
  mutable KVStoreStats stats_;
};

}  // namespace cq

#endif  // CQ_KVSTORE_KVSTORE_H_

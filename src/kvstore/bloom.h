#ifndef CQ_KVSTORE_BLOOM_H_
#define CQ_KVSTORE_BLOOM_H_

/// \file bloom.h
/// \brief Per-run bloom filters for point-lookup short-circuiting, as in
/// LSM stores (RocksDB-style full filters).

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace cq {

/// \brief A fixed-size bloom filter using double hashing (Kirsch-
/// Mitzenmacher): k probe positions derived from two base hashes.
class BloomFilter {
 public:
  /// \brief Sizes the filter for `expected_keys` at ~10 bits/key, 6 probes
  /// (~1% false positive rate).
  explicit BloomFilter(size_t expected_keys);

  void Add(std::string_view key);

  /// \brief False means definitely absent; true means probably present.
  bool MayContain(std::string_view key) const;

  size_t SizeBits() const { return bits_.size() * 64; }

 private:
  static constexpr int kNumProbes = 6;
  std::vector<uint64_t> bits_;
};

inline BloomFilter::BloomFilter(size_t expected_keys) {
  size_t nbits = expected_keys * 10;
  if (nbits < 64) nbits = 64;
  bits_.assign((nbits + 63) / 64, 0);
}

inline void BloomFilter::Add(std::string_view key) {
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = MixU64(h1);
  size_t nbits = bits_.size() * 64;
  for (int i = 0; i < kNumProbes; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    bits_[bit / 64] |= (1ULL << (bit % 64));
  }
}

inline bool BloomFilter::MayContain(std::string_view key) const {
  uint64_t h1 = Fnv1a64(key);
  uint64_t h2 = MixU64(h1);
  size_t nbits = bits_.size() * 64;
  for (int i = 0; i < kNumProbes; ++i) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    if (!(bits_[bit / 64] & (1ULL << (bit % 64)))) return false;
  }
  return true;
}

}  // namespace cq

#endif  // CQ_KVSTORE_BLOOM_H_

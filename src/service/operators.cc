#include "service/operators.h"

#include <algorithm>

#include "runtime/columnar_batch.h"
#include "types/serde.h"

namespace cq {

Tuple MakeDeltaTuple(const Tuple& t, int64_t sign) {
  Tuple d = t;
  d.Append(Value(sign));
  return d;
}

Result<std::pair<Tuple, int64_t>> SplitDeltaTuple(const Tuple& t) {
  if (t.empty() || !t.at(t.size() - 1).is_int64()) {
    return Status::InvalidArgument(
        "delta tuple is missing its trailing INT64 sign column");
  }
  int64_t sign = t.at(t.size() - 1).int64_value();
  std::vector<Value> vals(t.values().begin(), t.values().end() - 1);
  return std::make_pair(Tuple(std::move(vals)), sign);
}

// --- WindowDeltaOperator ---

WindowDeltaOperator::WindowDeltaOperator(std::string name, S2RSpec spec)
    : Operator(std::move(name)), spec_(std::move(spec)) {}

Status WindowDeltaOperator::ProcessElement(size_t, const StreamElement& element,
                                           const OperatorContext& ctx,
                                           Collector* out) {
  const Tuple& t = element.tuple;
  const Timestamp ts = element.timestamp;
  switch (spec_.kind) {
    case S2RKind::kRange:
    case S2RKind::kNow: {
      CQ_ASSIGN_OR_RETURN(TimeInterval validity, TupleValidity(spec_, ts));
      if (validity.Empty() || validity.end <= ctx.watermark) {
        // The tuple's entire visibility lies behind the watermark: the
        // instants at which it was in the window have already been emitted.
        ++dropped_late_;
        if (late_drop_counter_ != nullptr) late_drop_counter_->Increment();
        return Status::OK();
      }
      out->Emit(StreamElement::Record(MakeDeltaTuple(t, 1), ts));
      expiry_.emplace(validity.end, t);
      return Status::OK();
    }
    case S2RKind::kUnbounded:
      out->Emit(StreamElement::Record(MakeDeltaTuple(t, 1), ts));
      return Status::OK();
    case S2RKind::kRows:
    case S2RKind::kPartitionedRows: {
      std::string key;
      if (spec_.kind == S2RKind::kPartitionedRows) {
        key = TupleToBytes(t.Project(spec_.partition_keys));
      }
      std::deque<Tuple>& part = rows_[key];
      part.push_back(t);
      out->Emit(StreamElement::Record(MakeDeltaTuple(t, 1), ts));
      if (part.size() > spec_.rows) {
        out->Emit(StreamElement::Record(MakeDeltaTuple(part.front(), -1), ts));
        part.pop_front();
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown S2R kind");
}

Status WindowDeltaOperator::ProcessColumnarSegment(
    size_t, const ColumnarBatch& batch, size_t begin, size_t end,
    const OperatorContext& ctx, Collector* out, bool* handled) {
  *handled = false;
  if (spec_.kind != S2RKind::kRange && spec_.kind != S2RKind::kNow &&
      spec_.kind != S2RKind::kUnbounded) {
    return Status::OK();  // row-based windows: per-partition FIFO, row path
  }
  *handled = true;
  for (size_t i = begin; i < end; ++i) {
    if (!batch.IsSelected(i)) continue;
    const Timestamp ts = batch.timestamp(i);
    if (spec_.kind == S2RKind::kUnbounded) {
      out->Emit(StreamElement::Record(MakeDeltaTuple(batch.RowAt(i), 1), ts));
      continue;
    }
    CQ_ASSIGN_OR_RETURN(TimeInterval validity, TupleValidity(spec_, ts));
    if (validity.Empty() || validity.end <= ctx.watermark) {
      ++dropped_late_;
      if (late_drop_counter_ != nullptr) late_drop_counter_->Increment();
      continue;
    }
    Tuple t = batch.RowAt(i);
    out->Emit(StreamElement::Record(MakeDeltaTuple(t, 1), ts));
    expiry_.emplace(validity.end, std::move(t));
  }
  return Status::OK();
}

Status WindowDeltaOperator::OnWatermark(Timestamp watermark,
                                        const OperatorContext&,
                                        Collector* out) {
  // Expire every tuple whose validity interval [start, end) has fully
  // passed: end <= watermark. Emitted before the executor forwards the
  // watermark, so downstream sees the expirations within the same instant.
  auto it = expiry_.begin();
  while (it != expiry_.end() && it->first <= watermark) {
    out->Emit(StreamElement::Record(MakeDeltaTuple(it->second, -1), watermark));
    it = expiry_.erase(it);
  }
  return Status::OK();
}

Result<std::string> WindowDeltaOperator::SnapshotState() const {
  std::string out;
  EncodeU64(static_cast<uint64_t>(expiry_.size()), &out);
  for (const auto& [ts, tuple] : expiry_) {
    EncodeI64(ts, &out);
    EncodeTuple(tuple, &out);
  }
  EncodeU64(static_cast<uint64_t>(rows_.size()), &out);
  for (const auto& [key, part] : rows_) {
    EncodeString(key, &out);
    EncodeU64(static_cast<uint64_t>(part.size()), &out);
    for (const Tuple& t : part) EncodeTuple(t, &out);
  }
  EncodeU64(dropped_late_, &out);
  return out;
}

Status WindowDeltaOperator::RestoreState(std::string_view snapshot) {
  expiry_.clear();
  rows_.clear();
  dropped_late_ = 0;
  if (snapshot.empty()) return Status::OK();
  std::string_view in = snapshot;
  CQ_ASSIGN_OR_RETURN(uint64_t n_expiry, DecodeU64(&in));
  for (uint64_t i = 0; i < n_expiry; ++i) {
    CQ_ASSIGN_OR_RETURN(int64_t ts, DecodeI64(&in));
    CQ_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&in));
    expiry_.emplace(ts, std::move(t));
  }
  CQ_ASSIGN_OR_RETURN(uint64_t n_parts, DecodeU64(&in));
  for (uint64_t i = 0; i < n_parts; ++i) {
    CQ_ASSIGN_OR_RETURN(std::string key, DecodeString(&in));
    CQ_ASSIGN_OR_RETURN(uint64_t n_rows, DecodeU64(&in));
    std::deque<Tuple>& part = rows_[key];
    for (uint64_t j = 0; j < n_rows; ++j) {
      CQ_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&in));
      part.push_back(std::move(t));
    }
  }
  CQ_ASSIGN_OR_RETURN(dropped_late_, DecodeU64(&in));
  return Status::OK();
}

size_t WindowDeltaOperator::StateSize() const {
  size_t n = expiry_.size();
  for (const auto& [key, part] : rows_) n += part.size();
  return n;
}

size_t WindowDeltaOperator::StateBytesApprox() const {
  // Cheap shape estimate: entries times a nominal tuple footprint.
  return StateSize() * 48;
}

void WindowDeltaOperator::AttachMetrics(MetricsRegistry* registry,
                                        const LabelSet& labels) {
  if (registry == nullptr) {
    late_drop_counter_ = nullptr;
    return;
  }
  late_drop_counter_ =
      registry->GetCounter("cq_dataflow_late_records_dropped_total", labels);
}

// --- PlanDeltaOperator ---

PlanDeltaOperator::PlanDeltaOperator(std::string name, RelOpPtr plan,
                                     size_t num_slots, R2SKind output)
    : Operator(std::move(name), num_slots),
      output_(output),
      num_slots_(num_slots),
      exec_(std::move(plan), num_slots),
      pending_(num_slots) {}

Status PlanDeltaOperator::ProcessElement(size_t port,
                                         const StreamElement& element,
                                         const OperatorContext&, Collector*) {
  if (port >= num_slots_) {
    return Status::InvalidArgument("plan operator has no slot " +
                                   std::to_string(port));
  }
  CQ_ASSIGN_OR_RETURN(auto split, SplitDeltaTuple(element.tuple));
  pending_[port].Add(split.first, split.second);
  has_pending_ = true;
  return Status::OK();
}

Status PlanDeltaOperator::OnWatermark(Timestamp watermark,
                                      const OperatorContext&, Collector* out) {
  if (!has_pending_) return Status::OK();
  CQ_ASSIGN_OR_RETURN(MultisetRelation delta, exec_.ApplyDeltas(pending_));
  for (auto& p : pending_) p = MultisetRelation();
  has_pending_ = false;
  switch (output_) {
    case R2SKind::kIStream:
      for (const auto& [row, mult] : delta.entries()) {
        for (int64_t i = 0; i < mult; ++i) {
          out->Emit(StreamElement::Record(row, watermark));
        }
      }
      return Status::OK();
    case R2SKind::kDStream:
      for (const auto& [row, mult] : delta.entries()) {
        for (int64_t i = 0; i < -mult; ++i) {
          out->Emit(StreamElement::Record(row, watermark));
        }
      }
      return Status::OK();
    case R2SKind::kRStream:
      for (const auto& [row, mult] : exec_.current_output().entries()) {
        for (int64_t i = 0; i < mult; ++i) {
          out->Emit(StreamElement::Record(row, watermark));
        }
      }
      return Status::OK();
    case R2SKind::kRelation:
      // No R2S operator: deliver the result as a signed changefeed so the
      // subscriber can maintain the relation (InvaliDB-style push view).
      for (const auto& [row, mult] : delta.entries()) {
        if (mult != 0) {
          out->Emit(
              StreamElement::Record(MakeDeltaTuple(row, mult), watermark));
        }
      }
      return Status::OK();
  }
  return Status::Internal("unknown R2S kind");
}

Result<std::string> PlanDeltaOperator::SnapshotState() const {
  std::string out;
  EncodeU32(static_cast<uint32_t>(num_slots_), &out);
  for (const auto& p : pending_) {
    EncodeU32(static_cast<uint32_t>(p.entries().size()), &out);
    for (const auto& [t, c] : p.entries()) {
      EncodeTuple(t, &out);
      EncodeI64(c, &out);
    }
  }
  out.push_back(has_pending_ ? 1 : 0);
  CQ_ASSIGN_OR_RETURN(std::string exec_blob, exec_.SnapshotState());
  EncodeString(exec_blob, &out);
  return out;
}

Status PlanDeltaOperator::RestoreState(std::string_view snapshot) {
  std::string_view in = snapshot;
  CQ_ASSIGN_OR_RETURN(uint32_t slots, DecodeU32(&in));
  if (slots != num_slots_) {
    return Status::InvalidArgument(
        "plan operator '" + name() + "' snapshot has " +
        std::to_string(slots) + " slots, operator has " +
        std::to_string(num_slots_));
  }
  for (auto& p : pending_) {
    p = MultisetRelation();
    CQ_ASSIGN_OR_RETURN(uint32_t n, DecodeU32(&in));
    for (uint32_t i = 0; i < n; ++i) {
      CQ_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&in));
      CQ_ASSIGN_OR_RETURN(int64_t c, DecodeI64(&in));
      p.Add(t, c);
    }
  }
  if (in.empty()) {
    return Status::IOError("plan operator snapshot truncated");
  }
  has_pending_ = in.front() != 0;
  in.remove_prefix(1);
  CQ_ASSIGN_OR_RETURN(std::string exec_blob, DecodeString(&in));
  if (!in.empty()) {
    return Status::IOError("trailing bytes after plan operator snapshot");
  }
  return exec_.RestoreState(exec_blob);
}

size_t PlanDeltaOperator::StateSize() const {
  size_t n = exec_.StateSize();
  for (const auto& p : pending_) n += p.NumDistinct();
  return n;
}

size_t PlanDeltaOperator::StateBytesApprox() const {
  return StateSize() * 48;
}

// --- Subscription / SubscriptionSinkOperator ---

bool Subscription::Poll(StreamBatch* out) {
  if (!channel_.Pop(out)) return false;
  channel_.Acknowledge();
  return true;
}

bool Subscription::TryPoll(StreamBatch* out) {
  if (!channel_.TryPop(out)) return false;
  channel_.Acknowledge();
  return true;
}

uint64_t Subscription::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

Status SubscriptionSinkOperator::ProcessElement(size_t,
                                                const StreamElement& element,
                                                const OperatorContext&,
                                                Collector*) {
  pending_.push_back(element);
  return Status::OK();
}

Status SubscriptionSinkOperator::OnWatermark(Timestamp watermark,
                                             const OperatorContext& ctx,
                                             Collector*) {
  if (output_records_ != nullptr && !pending_.empty()) {
    output_records_->Increment(pending_.size());
  }
  total_emitted_ += pending_.size();
  pending_.push_back(StreamElement::Watermark(watermark));
  // Publish-kind span for the fan-out, nested under this sink's operator
  // span; outgoing batches are re-stamped so subscription queue-wait spans
  // parent under the publish.
  const bool tracing = tracer_ != nullptr && ctx.trace != nullptr &&
                       ctx.trace->sampled();
  Span publish;
  TraceContext out_tc;
  if (tracing) {
    publish.trace_id = ctx.trace->trace_id;
    publish.span_id = NextSpanId();
    publish.parent_id = ctx.trace->parent_span;
    publish.kind = SpanKind::kPublish;
    publish.name = "publish:" + name();
    publish.start_ns = MonotonicNanos();
    out_tc = *ctx.trace;
    out_tc.parent_span = publish.span_id;
  }
  bool any_closed = false;
  for (const SubscriptionPtr& sub : subs_) {
    StreamBatch batch(pending_);  // per-subscription copy
    if (tracing) batch.set_trace(out_tc);
    Status st;
    if (!sub->channel_.TryPush(&batch, &st)) {
      if (st.ok()) {
        // Credits exhausted: this subscriber falls behind alone.
        sub->dropped_.fetch_add(1, std::memory_order_relaxed);
        if (sub->drops_counter_ != nullptr) sub->drops_counter_->Increment();
        if (dropped_pushes_ != nullptr) dropped_pushes_->Increment();
      } else {
        any_closed = true;  // cancelled subscriber; collect below
      }
    }
  }
  if (tracing) {
    publish.duration_ns = MonotonicNanos() - publish.start_ns;
    tracer_->Record(std::move(publish));
  }
  // End-to-end latency: ingest stamp (service push / broker poll) to
  // publish complete. Attributed even on unsampled pushes.
  if (latency_us_ != nullptr && ctx.trace != nullptr &&
      ctx.trace->ingest_ns != 0) {
    latency_us_->Observe(
        static_cast<double>(MonotonicNanos() - ctx.trace->ingest_ns) / 1e3);
  }
  if (any_closed) {
    subs_.erase(std::remove_if(subs_.begin(), subs_.end(),
                               [](const SubscriptionPtr& s) {
                                 return s->closed();
                               }),
                subs_.end());
  }
  pending_.clear();
  return Status::OK();
}

void SubscriptionSinkOperator::CloseAll() {
  for (const SubscriptionPtr& sub : subs_) sub->Cancel();
  subs_.clear();
}

}  // namespace cq

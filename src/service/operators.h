#ifndef CQ_SERVICE_OPERATORS_H_
#define CQ_SERVICE_OPERATORS_H_

/// \file operators.h
/// \brief Dataflow operators that execute registered continuous queries on
/// the shared graph (the Fig. 1 DSMS core of the service layer).
///
/// A registered query compiles into a per-slot *prefix chain* — source ->
/// (lifted filters) -> window — shared across queries via fingerprints, and
/// a per-plan suffix — residual R2R plan + R2S — fanning out to per-query
/// subscriptions. Between window and plan the stream changes meaning: it
/// carries *relation deltas* instead of raw records. A delta record is the
/// original tuple with one trailing INT64 sign column (+n / -n); the window
/// operator produces deltas (insertions on arrival, expirations on
/// watermark), the plan operator folds them through an
/// IncrementalPlanExecutor and emits the query's output stream.

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cql/continuous_query.h"
#include "cql/r2s.h"
#include "cql/s2r.h"
#include "dataflow/operator.h"
#include "runtime/channel.h"

namespace cq {

/// \brief Appends the delta sign column to a tuple.
Tuple MakeDeltaTuple(const Tuple& t, int64_t sign);

/// \brief Splits a delta tuple into (tuple, sign); InvalidArgument when the
/// trailing column is missing or not INT64.
Result<std::pair<Tuple, int64_t>> SplitDeltaTuple(const Tuple& t);

/// \brief S2R as a streaming operator: converts raw records into window
/// content deltas.
///
/// On each record the tuple enters the window (+1 delta); its exit is
/// scheduled by window kind: Range/Now windows expire by validity interval
/// when the watermark passes (TupleValidity), Rows/PartitionedRows windows
/// evict the oldest tuple immediately when a partition exceeds `n`,
/// Unbounded windows never expire. Expiration deltas (-1) are emitted in
/// OnWatermark before the watermark is forwarded downstream, so a
/// downstream plan operator firing on that watermark sees a consistent
/// window image. Records whose validity already fully precedes the
/// watermark are dropped as late (counted).
class WindowDeltaOperator : public Operator {
 public:
  WindowDeltaOperator(std::string name, S2RSpec spec);

  Status ProcessElement(size_t port, const StreamElement& element,
                        const OperatorContext& ctx, Collector* out) override;
  Status OnWatermark(Timestamp watermark, const OperatorContext& ctx,
                     Collector* out) override;

  /// \brief Columnar kernel for time-based windows (Range/Now/Unbounded):
  /// validity comes straight off the timestamp column, so late rows drop
  /// without ever materialising a tuple; admitted rows materialise once.
  /// Row-based windows (Rows/PartitionedRows) decline via *handled=false.
  ColumnarSupport columnar_support() const override {
    return ColumnarSupport::kConsume;
  }
  bool CanProcessColumnar(const std::vector<ValueType>&,
                          std::vector<ValueType>*) const override {
    return spec_.kind == S2RKind::kRange || spec_.kind == S2RKind::kNow ||
           spec_.kind == S2RKind::kUnbounded;
  }
  Status ProcessColumnarSegment(size_t port, const ColumnarBatch& batch,
                                size_t begin, size_t end,
                                const OperatorContext& ctx, Collector* out,
                                bool* handled) override;

  Result<std::string> SnapshotState() const override;
  Status RestoreState(std::string_view snapshot) override;
  size_t StateSize() const override;
  size_t StateBytesApprox() const override;
  bool IsStateless() const override { return false; }
  void AttachMetrics(MetricsRegistry* registry,
                     const LabelSet& labels) override;

  uint64_t dropped_late() const { return dropped_late_; }

 private:
  S2RSpec spec_;
  /// Range/Now: tuples pending expiration, keyed by expiry instant
  /// (validity.end); multiset per instant preserves duplicates.
  std::multimap<Timestamp, Tuple> expiry_;
  /// Rows / PartitionedRows: per-partition FIFO of resident tuples (key ""
  /// for the unpartitioned kRows form).
  std::map<std::string, std::deque<Tuple>> rows_;
  uint64_t dropped_late_ = 0;
  Counter* late_drop_counter_ = nullptr;
};

/// \brief Residual R2R plan + R2S output as a streaming operator.
///
/// Consumes per-slot window deltas (one input port per slot), buffers them,
/// and on each watermark advance applies the batch through an
/// IncrementalPlanExecutor — per-update cost proportional to what the update
/// touches — then emits the R2S rendering of the output change at that
/// instant: IStream emits insertions, DStream deletions, RStream the whole
/// instantaneous result, and kRelation a signed changefeed (delta tuples
/// with the trailing sign column, like its inputs).
class PlanDeltaOperator : public Operator {
 public:
  PlanDeltaOperator(std::string name, RelOpPtr plan, size_t num_slots,
                    R2SKind output);

  Status ProcessElement(size_t port, const StreamElement& element,
                        const OperatorContext& ctx, Collector* out) override;
  Status OnWatermark(Timestamp watermark, const OperatorContext& ctx,
                     Collector* out) override;

  /// The full incremental state round-trips: per-slot pending delta
  /// buffers plus the IncrementalPlanExecutor's accumulated output, node
  /// caches, join indexes, and aggregation groups (keyed by plan preorder
  /// index, so the restored operator may hold a different — but
  /// structurally identical — plan tree).
  Result<std::string> SnapshotState() const override;
  Status RestoreState(std::string_view snapshot) override;
  size_t StateSize() const override;
  size_t StateBytesApprox() const override;
  bool IsStateless() const override { return false; }

  const MultisetRelation& current_output() const {
    return exec_.current_output();
  }

 private:
  R2SKind output_;
  size_t num_slots_;
  IncrementalPlanExecutor exec_;
  std::vector<MultisetRelation> pending_;  // per-slot buffered deltas
  bool has_pending_ = false;
};

/// \brief One client's result feed: a bounded runtime::Channel the pipeline
/// pushes output batches into. The subscriber drains from its own thread
/// (or inline) via Poll/TryPoll; the pipeline never blocks on a slow
/// subscriber — once the subscription's credits are exhausted further
/// batches are dropped and counted, so one stalled client cannot stall the
/// shared plan or its co-subscribers.
class Subscription {
 public:
  Subscription(uint64_t query_id, uint64_t sub_id, size_t credits)
      : query_id_(query_id), sub_id_(sub_id), channel_(credits) {}

  uint64_t query_id() const { return query_id_; }
  uint64_t sub_id() const { return sub_id_; }

  /// \brief Blocking pop (acknowledged internally); false once the
  /// subscription is closed and drained.
  bool Poll(StreamBatch* out);

  /// \brief Non-blocking pop; false when nothing is queued right now.
  bool TryPoll(StreamBatch* out);

  /// \brief Queued batches not yet consumed.
  size_t depth() const { return channel_.depth(); }

  /// \brief Batches dropped because the subscriber's credits ran dry.
  uint64_t dropped() const;

  bool closed() const { return channel_.closed(); }

  /// \brief Detaches the subscriber: closes the channel; the sink garbage
  /// collects the subscription on its next delivery.
  void Cancel() { channel_.Close(); }

 private:
  friend class SubscriptionSinkOperator;
  friend class QueryService;  // wires the drops counter at Subscribe time

  uint64_t query_id_;
  uint64_t sub_id_;
  Channel channel_;
  std::atomic<uint64_t> dropped_{0};
  Counter* drops_counter_ = nullptr;  // service-attached, may stay null
};

using SubscriptionPtr = std::shared_ptr<Subscription>;

/// \brief Terminal node of a registered query: fans the query's output out
/// to its subscriptions. Records accumulate per watermark interval and ship
/// as one batch (with the watermark appended) per subscription when the
/// watermark arrives — TryPush only, so a full subscription drops the batch
/// rather than exerting backpressure on the shared pipeline.
class SubscriptionSinkOperator : public Operator {
 public:
  explicit SubscriptionSinkOperator(std::string name)
      : Operator(std::move(name)) {}

  Status ProcessElement(size_t port, const StreamElement& element,
                        const OperatorContext& ctx, Collector* out) override;
  Status OnWatermark(Timestamp watermark, const OperatorContext& ctx,
                     Collector* out) override;

  /// Pending (unflushed) records are re-derivable from upstream state;
  /// the sink itself checkpoints empty.
  bool IsStateless() const override { return true; }

  /// \brief Wires the per-query instruments (any may be null). On each
  /// watermark flush the sink observes end-to-end latency (now minus the
  /// ingest timestamp the service stamped on the push), counts output
  /// records, and counts fan-out pushes dropped on exhausted credits. With
  /// a tracer, the fan-out is recorded as a publish-kind span nested under
  /// the sink's operator span, and outgoing batches are re-stamped so
  /// subscription queue-wait spans parent under it.
  void AttachQueryInstruments(Histogram* latency_us, Counter* output_records,
                              Counter* dropped_pushes, TraceRecorder* tracer) {
    latency_us_ = latency_us;
    output_records_ = output_records;
    dropped_pushes_ = dropped_pushes;
    tracer_ = tracer;
  }

  /// Subscription list mutations happen under the service lock, the same
  /// lock every pipeline push holds — no extra synchronisation here.
  void AddSubscription(SubscriptionPtr sub) {
    subs_.push_back(std::move(sub));
  }

  /// \brief Closes every subscription (DropQuery teardown).
  void CloseAll();

  size_t num_subscriptions() const { return subs_.size(); }
  uint64_t total_emitted() const { return total_emitted_; }

 private:
  std::vector<SubscriptionPtr> subs_;
  std::vector<StreamElement> pending_;
  uint64_t total_emitted_ = 0;
  Histogram* latency_us_ = nullptr;
  Counter* output_records_ = nullptr;
  Counter* dropped_pushes_ = nullptr;
  TraceRecorder* tracer_ = nullptr;
};

}  // namespace cq

#endif  // CQ_SERVICE_OPERATORS_H_

#include "service/service.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

#include "dataflow/operators.h"
#include "obs/flight_recorder.h"
#include "sql/fingerprint.h"
#include "sql/planner.h"

namespace cq {

const char* QueryStateToString(QueryState state) {
  switch (state) {
    case QueryState::kRegistering:
      return "registering";
    case QueryState::kRunning:
      return "running";
    case QueryState::kDraining:
      return "draining";
    case QueryState::kDropped:
      return "dropped";
  }
  return "unknown";
}

namespace {

/// True when the window commutes with per-tuple filters: a tuple's presence
/// in a time-based window depends only on its own timestamp, so
/// window(filter(S)) == filter(window(S)) and the filter may run before the
/// (shared) window. Tuple-count windows do NOT commute — the last n of the
/// filtered stream is not the filtered last n.
bool WindowCommutesWithFilter(const S2RSpec& spec) {
  switch (spec.kind) {
    case S2RKind::kRange:
    case S2RKind::kNow:
    case S2RKind::kUnbounded:
      return true;
    case S2RKind::kRows:
    case S2RKind::kPartitionedRows:
      return false;
  }
  return false;
}

/// Rewrites the plan by stripping Select chains that sit directly on a Scan
/// of a liftable slot, collecting the predicates per slot (innermost
/// first). The lifted predicates become pre-window FilterOperators in the
/// shared chain; the residual plan scans the already-filtered slot.
RelOpPtr StripLiftableFilters(const RelOpPtr& op,
                              const std::set<size_t>& liftable,
                              std::map<size_t, std::vector<ExprPtr>>* lifted) {
  if (op->kind() == RelOpKind::kSelect) {
    std::vector<ExprPtr> preds;
    RelOpPtr cur = op;
    while (cur->kind() == RelOpKind::kSelect) {
      preds.push_back(cur->predicate());
      cur = cur->children()[0];
    }
    if (cur->kind() == RelOpKind::kScan &&
        liftable.count(cur->input_index()) > 0) {
      auto& out = (*lifted)[cur->input_index()];
      // Collected top-down; the innermost filter (closest to the scan) runs
      // first in the lifted chain.
      out.insert(out.end(), preds.rbegin(), preds.rend());
      return cur;
    }
  }
  if (op->children().empty()) return op;
  std::vector<RelOpPtr> kids;
  kids.reserve(op->children().size());
  bool changed = false;
  for (const RelOpPtr& c : op->children()) {
    RelOpPtr nc = StripLiftableFilters(c, liftable, lifted);
    changed = changed || nc != c;
    kids.push_back(std::move(nc));
  }
  return changed ? op->WithChildren(std::move(kids)) : op;
}

/// Short hex rendering of a plan fingerprint for metric labels.
std::string FingerprintLabel(const std::string& fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(FingerprintHash(fp)));
  return buf;
}

}  // namespace

QueryService::QueryService(Catalog catalog, ServiceConfig config)
    : catalog_(std::move(catalog)), config_(config) {
  auto graph = std::make_unique<DataflowGraph>();
  graph_ = graph.get();
  executor_ = std::make_unique<PipelineExecutor>(std::move(graph));
  if (config_.tracer != nullptr) executor_->AttachTracer(config_.tracer);
  if (config_.metrics != nullptr) {
    executor_->AttachMetrics(config_.metrics);
    MetricsRegistry* m = config_.metrics;
    registered_total_ = m->GetCounter("cq_service_queries_registered_total");
    dropped_total_ = m->GetCounter("cq_service_queries_dropped_total");
    rejected_total_ = m->GetCounter("cq_service_queries_rejected_total");
    nodes_created_total_ = m->GetCounter("cq_service_nodes_created_total");
    nodes_reused_total_ = m->GetCounter("cq_service_nodes_reused_total");
    active_gauge_ = m->GetGauge("cq_service_queries_active");
    live_nodes_gauge_ = m->GetGauge("cq_service_nodes_live");
    subscriptions_gauge_ = m->GetGauge("cq_service_subscriptions_active");
  }
}

Status QueryService::RegisterStream(const std::string& name,
                                    SchemaPtr schema) {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_.RegisterStream(name, std::move(schema));
}

Result<NodeId> QueryService::AcquireNode(
    const std::string& fp,
    const std::function<std::unique_ptr<Operator>()>& factory, NodeId parent,
    size_t port, QueryRecord* rec) {
  ++rec->nodes_total;
  auto it = shared_.find(fp);
  if (it != shared_.end()) {
    ++it->second.refs;
    ++rec->nodes_reused;
    rec->ref_order.push_back(fp);
    if (nodes_reused_total_ != nullptr) nodes_reused_total_->Increment();
    return it->second.node;
  }
  NodeId id = graph_->AddNode(factory());
  if (parent != kNoParent) {
    CQ_RETURN_NOT_OK(graph_->Connect(parent, id, port));
  }
  shared_.emplace(fp, SharedNode{id, 1});
  rec->ref_order.push_back(fp);
  if (nodes_created_total_ != nullptr) nodes_created_total_->Increment();
  return id;
}

Status QueryService::ReleaseNode(const std::string& fp) {
  auto it = shared_.find(fp);
  if (it == shared_.end()) {
    return Status::Internal("shared-node index lost fingerprint '" + fp + "'");
  }
  if (--it->second.refs > 0) return Status::OK();
  NodeId id = it->second.node;
  shared_.erase(it);
  // Sources are also listed in the per-stream routing table.
  for (auto& [stream, nodes] : sources_) {
    nodes.erase(std::remove(nodes.begin(), nodes.end(), id), nodes.end());
  }
  return graph_->RemoveNode(id).status();
}

void QueryService::ReleaseAll(const std::vector<std::string>& ref_order) {
  for (auto it = ref_order.rbegin(); it != ref_order.rend(); ++it) {
    // Internal-inconsistency errors only; teardown continues regardless.
    (void)ReleaseNode(*it);
  }
}

Result<QueryId> QueryService::RegisterQuery(const std::string& sql) {
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterQueryLocked(sql);
}

Result<QueryId> QueryService::RegisterQueryLocked(const std::string& sql) {
  // --- Admission control ---
  if (NumActiveQueriesLocked() >= config_.max_queries) {
    if (rejected_total_ != nullptr) rejected_total_->Increment();
    FlightRecorder::Global().Record(
        "service", "reject_query", "max_queries",
        static_cast<int64_t>(config_.max_queries));
    return Status::OutOfRange(
        "query admission rejected: " + std::to_string(config_.max_queries) +
        " queries already registered");
  }
  if (config_.max_state_bytes != 0 &&
      ApproxStateBytes() >= config_.max_state_bytes) {
    if (rejected_total_ != nullptr) rejected_total_->Increment();
    FlightRecorder::Global().Record(
        "service", "reject_query", "max_state_bytes",
        static_cast<int64_t>(ApproxStateBytes()),
        static_cast<int64_t>(config_.max_state_bytes));
    return Status::OutOfRange(
        "query admission rejected: service state is " +
        std::to_string(ApproxStateBytes()) + " bytes, cap is " +
        std::to_string(config_.max_state_bytes));
  }

  // --- Plan + optimise through the existing SQL frontend ---
  CQ_ASSIGN_OR_RETURN(PlannedQuery planned, PlanSql(sql, catalog_));
  CQ_ASSIGN_OR_RETURN(
      RelOpPtr plan, OptimizePlan(planned.query.plan, config_.optimizer));
  const std::vector<S2RSpec>& windows = planned.query.input_windows;
  const size_t num_slots = windows.size();
  if (planned.input_streams.size() != num_slots) {
    return Status::Internal("planner slot/stream binding mismatch");
  }

  // --- Filter lifting: move scan-local predicates below the window so
  // they join the shared prefix. Only when the window commutes with
  // filtering and the slot is scanned exactly once (a second scan of the
  // same slot must not observe the first scan's filters). ---
  std::vector<size_t> scan_slots;
  plan->CollectInputs(&scan_slots);
  std::set<size_t> liftable;
  for (size_t i = 0; i < num_slots; ++i) {
    if (WindowCommutesWithFilter(windows[i]) &&
        std::count(scan_slots.begin(), scan_slots.end(), i) == 1) {
      liftable.insert(i);
    }
  }
  std::map<size_t, std::vector<ExprPtr>> lifted;
  RelOpPtr residual = StripLiftableFilters(plan, liftable, &lifted);

  QueryId qid = next_query_id_++;
  QueryRecord rec;
  rec.id = qid;
  rec.state = QueryState::kRegistering;
  rec.sql = sql;
  rec.output_schema = planned.output_schema;
  rec.hints = config_.optimizer.selectivity_hints;

  // With sharing disabled every fingerprint is salted with the query id, so
  // the index never matches and each query gets a private chain (the bench
  // ablation baseline).
  const std::string salt =
      config_.share_subplans ? "" : "#q" + std::to_string(qid);

  // --- Per-slot prefix chains: source -> lifted filters -> window ---
  auto splice = [&]() -> Status {
    std::vector<std::string> slot_chains(num_slots);
    std::vector<NodeId> slot_nodes(num_slots);
    for (size_t i = 0; i < num_slots; ++i) {
      const std::string& stream = planned.input_streams[i];
      std::string fp = ComposeSourceStage(stream) + salt;
      bool source_created = shared_.find(fp) == shared_.end();
      CQ_ASSIGN_OR_RETURN(
          NodeId node,
          AcquireNode(
              fp,
              [&] {
                return std::make_unique<PassThroughOperator>("src:" + stream);
              },
              kNoParent, 0, &rec));
      if (source_created) sources_[stream].push_back(node);
      auto lit = lifted.find(i);
      if (lit != lifted.end()) {
        for (const ExprPtr& pred : lit->second) {
          fp = ComposeFilterStage(fp, *pred);
          CQ_ASSIGN_OR_RETURN(
              node, AcquireNode(
                        fp,
                        [&] {
                          return std::make_unique<FilterOperator>(
                              "flt:" + std::to_string(FingerprintHash(fp) &
                                                      0xffffff),
                              pred);
                        },
                        node, 0, &rec));
        }
      }
      fp = ComposeWindowStage(fp, windows[i]);
      CQ_ASSIGN_OR_RETURN(
          node, AcquireNode(
                    fp,
                    [&] {
                      return std::make_unique<WindowDeltaOperator>(
                          "win:" + windows[i].ToString(), windows[i]);
                    },
                    node, 0, &rec));
      slot_chains[i] = fp;
      slot_nodes[i] = node;
    }

    // --- Shared residual plan stage ---
    std::string plan_fp =
        ComposePlanStage(slot_chains, *residual, planned.query.output);
    bool plan_created = shared_.find(plan_fp) == shared_.end();
    CQ_ASSIGN_OR_RETURN(
        NodeId plan_node,
        AcquireNode(
            plan_fp,
            [&] {
              return std::make_unique<PlanDeltaOperator>(
                  "plan:q" + std::to_string(qid), residual, num_slots,
                  planned.query.output);
            },
            kNoParent, 0, &rec));
    if (plan_created) {
      for (size_t i = 0; i < num_slots; ++i) {
        CQ_RETURN_NOT_OK(graph_->Connect(slot_nodes[i], plan_node, i));
      }
    }

    // --- Per-query subscription sink (never shared) ---
    auto sink = std::make_unique<SubscriptionSinkOperator>(
        "sink:q" + std::to_string(qid));
    rec.sink = sink.get();
    rec.sink_node = graph_->AddNode(std::move(sink));
    ++rec.nodes_total;
    CQ_RETURN_NOT_OK(graph_->Connect(plan_node, rec.sink_node, 0));

    // --- Per-query durable fence sink (only with an attached log) ---
    if (output_log_ != nullptr) {
      auto fence = std::make_unique<ft::EpochSinkOperator>(
          "fence:q" + std::to_string(qid), output_log_,
          /*part=*/static_cast<size_t>(qid));
      rec.fence = fence.get();
      rec.fence_node = graph_->AddNode(std::move(fence));
      ++rec.nodes_total;
      CQ_RETURN_NOT_OK(graph_->Connect(plan_node, rec.fence_node, 0));
    }

    CQ_RETURN_NOT_OK(graph_->Validate());
    executor_->SyncWithGraph();
    return Status::OK();
  };

  Status st = splice();
  if (!st.ok()) {
    // Roll back: drop the sinks (if they made it into the graph) and unref
    // every acquired fingerprint so the graph is exactly as before.
    if (rec.sink != nullptr && graph_->is_live(rec.sink_node)) {
      (void)graph_->RemoveNode(rec.sink_node);
    }
    if (rec.fence != nullptr && graph_->is_live(rec.fence_node)) {
      (void)graph_->RemoveNode(rec.fence_node);
    }
    ReleaseAll(rec.ref_order);
    if (rejected_total_ != nullptr) rejected_total_->Increment();
    FlightRecorder::Global().Record("service", "reject_query", st.ToString(),
                                    static_cast<int64_t>(qid));
    return st;
  }

  // Per-query instruments, labeled by id and plan-stage fingerprint so a
  // re-registered identical query aggregates under the same fingerprint.
  {
    Histogram* lat = nullptr;
    Counter* outc = nullptr;
    Counter* drops = nullptr;
    if (config_.metrics != nullptr && !rec.ref_order.empty()) {
      LabelSet qlabels{{"query", std::to_string(qid)},
                       {"fingerprint", FingerprintLabel(rec.ref_order.back())}};
      MetricsRegistry* m = config_.metrics;
      lat = m->GetHistogram("cq_query_latency_us", qlabels);
      outc = m->GetCounter("cq_query_output_records_total", qlabels);
      drops = m->GetCounter("cq_query_dropped_pushes_total", qlabels);
    }
    rec.sink->AttachQueryInstruments(lat, outc, drops, config_.tracer);
  }

  rec.state = QueryState::kRunning;
  FlightRecorder::Global().Record("service", "register_query", rec.sql,
                                  static_cast<int64_t>(qid),
                                  static_cast<int64_t>(rec.nodes_reused));
  queries_.emplace(qid, std::move(rec));
  if (registered_total_ != nullptr) registered_total_->Increment();
  if (active_gauge_ != nullptr) {
    active_gauge_->Set(static_cast<int64_t>(NumActiveQueriesLocked()));
  }
  if (live_nodes_gauge_ != nullptr) {
    live_nodes_gauge_->Set(static_cast<int64_t>(graph_->num_live_nodes()));
  }
  return qid;
}

Status QueryService::DropQuery(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not registered");
  }
  QueryRecord& rec = it->second;
  if (rec.state != QueryState::kRunning) {
    return Status::Closed("query " + std::to_string(id) + " is " +
                          QueryStateToString(rec.state));
  }
  rec.state = QueryState::kDraining;

  // Subscribers see the channel close once queued batches drain.
  rec.sink->CloseAll();
  CQ_RETURN_NOT_OK(graph_->RemoveNode(rec.sink_node).status());
  rec.sink = nullptr;
  if (rec.fence != nullptr) {
    // Un-checkpointed fence output dies with the query — dropping a query
    // ends its externally published stream at the last durable epoch.
    CQ_RETURN_NOT_OK(graph_->RemoveNode(rec.fence_node).status());
    rec.fence = nullptr;
  }

  // Downstream-first: the plan stage (last acquired) unrefs before the
  // windows, filters, and sources feeding it.
  ReleaseAll(rec.ref_order);
  rec.ref_order.clear();
  CQ_RETURN_NOT_OK(graph_->Validate());

  rec.state = QueryState::kDropped;
  FlightRecorder::Global().Record("service", "drop_query", "",
                                  static_cast<int64_t>(id));
  if (dropped_total_ != nullptr) dropped_total_->Increment();
  if (active_gauge_ != nullptr) {
    active_gauge_->Set(static_cast<int64_t>(NumActiveQueriesLocked()));
  }
  if (live_nodes_gauge_ != nullptr) {
    live_nodes_gauge_->Set(static_cast<int64_t>(graph_->num_live_nodes()));
  }
  return Status::OK();
}

Result<SubscriptionPtr> QueryService::Subscribe(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not registered");
  }
  QueryRecord& rec = it->second;
  if (rec.state != QueryState::kRunning) {
    return Status::Closed("query " + std::to_string(id) + " is " +
                          QueryStateToString(rec.state));
  }
  uint64_t sub_id = next_sub_id_++;
  auto sub = std::make_shared<Subscription>(id, sub_id,
                                            config_.subscription_credits);
  if (config_.metrics != nullptr) {
    LabelSet labels = {{"query", std::to_string(id)},
                       {"subscription", std::to_string(sub_id)}};
    sub->drops_counter_ =
        config_.metrics->GetCounter("cq_service_subscription_drops_total",
                                    labels);
    sub->channel_.AttachMetrics(
        config_.metrics, {{"channel", "sub-" + std::to_string(sub_id)}});
  }
  if (config_.tracer != nullptr) {
    sub->channel_.AttachTracer(config_.tracer,
                               "sub-" + std::to_string(sub_id));
  }
  rec.sink->AddSubscription(sub);
  if (subscriptions_gauge_ != nullptr) subscriptions_gauge_->Add(1);
  return sub;
}

Status QueryService::PushRecord(const std::string& stream, Tuple tuple,
                                Timestamp ts) {
  return Push(stream, StreamElement::Record(std::move(tuple), ts));
}

Status QueryService::PushWatermark(const std::string& stream,
                                   Timestamp watermark) {
  return Push(stream, StreamElement::Watermark(watermark));
}

TraceContext QueryService::BeginIngestLocked(const std::string& stream) {
  (void)stream;
  TraceContext tc;
  // The ingest timestamp alone drives end-to-end latency attribution, so
  // it is stamped whenever anything downstream can consume it.
  if (config_.metrics != nullptr || config_.tracer != nullptr) {
    tc.ingest_ns = MonotonicNanos();
  }
  if (config_.tracer != nullptr && config_.trace_sample_every != 0 &&
      (pushes_++ % config_.trace_sample_every) == 0) {
    tc.trace_id = NextTraceId();
    tc.parent_span = NextSpanId();  // the ingest span's id (FinishIngest)
  }
  if (tc.ingest_ns != 0) executor_->SetActiveTrace(tc);
  return tc;
}

void QueryService::FinishIngestLocked(const TraceContext& tc,
                                      const std::string& stream,
                                      int64_t dispatch_end_ns) {
  if (tc.ingest_ns != 0) executor_->ClearActiveTrace();
  if (!tc.sampled()) return;
  // Ingest span = dispatch overhead only; operator spans nest under it and
  // carry the execution time, so the critical-path sum does not double
  // count.
  Span span;
  span.trace_id = tc.trace_id;
  span.span_id = tc.parent_span;
  span.kind = SpanKind::kIngest;
  span.name = "push:" + stream;
  span.start_ns = tc.ingest_ns;
  span.duration_ns = dispatch_end_ns - tc.ingest_ns;
  config_.tracer->Record(std::move(span));
}

Status QueryService::Push(const std::string& stream,
                          const StreamElement& element) {
  std::lock_guard<std::mutex> lock(mu_);
  CQ_RETURN_NOT_OK(catalog_.GetStream(stream).status());
  auto it = sources_.find(stream);
  if (it == sources_.end()) return Status::OK();  // no interested query
  TraceContext tc = BeginIngestLocked(stream);
  const int64_t dispatch_end_ns = tc.sampled() ? MonotonicNanos() : 0;
  Status st;
  for (NodeId source : it->second) {
    st = executor_->Push(source, element);
    if (!st.ok()) break;
  }
  FinishIngestLocked(tc, stream, dispatch_end_ns);
  return st;
}

Status QueryService::PushBatch(const std::string& stream,
                               const StreamBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  CQ_RETURN_NOT_OK(catalog_.GetStream(stream).status());
  auto it = sources_.find(stream);
  if (it == sources_.end()) return Status::OK();
  // A batch already stamped upstream (broker poll) keeps its trace; the
  // poll's ingest span is the root. Unstamped batches root here.
  const bool prestamped =
      batch.trace().sampled() || batch.trace().ingest_ns != 0;
  TraceContext tc =
      prestamped ? batch.trace() : BeginIngestLocked(stream);
  if (prestamped) executor_->SetActiveTrace(tc);
  const int64_t dispatch_end_ns =
      !prestamped && tc.sampled() ? MonotonicNanos() : 0;
  Status st;
  for (NodeId source : it->second) {
    st = executor_->PushBatch(source, batch);
    if (!st.ok()) break;
  }
  if (prestamped) {
    executor_->ClearActiveTrace();
  } else {
    FinishIngestLocked(tc, stream, dispatch_end_ns);
  }
  return st;
}

Result<QueryInfo> QueryService::GetQuery(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not registered");
  }
  return InfoLocked(it->second);
}

std::vector<QueryInfo> QueryService::ListQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryInfo> out;
  out.reserve(queries_.size());
  for (const auto& [id, rec] : queries_) out.push_back(InfoLocked(rec));
  return out;
}

QueryInfo QueryService::InfoLocked(const QueryRecord& rec) {
  QueryInfo info;
  info.id = rec.id;
  info.state = rec.state;
  info.sql = rec.sql;
  info.nodes_total = rec.nodes_total;
  info.nodes_reused = rec.nodes_reused;
  info.num_subscriptions =
      rec.sink != nullptr ? rec.sink->num_subscriptions() : 0;
  return info;
}

size_t QueryService::NumOperators() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_->num_live_nodes();
}

size_t QueryService::NumActiveQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NumActiveQueriesLocked();
}

size_t QueryService::NumActiveQueriesLocked() const {
  size_t n = 0;
  for (const auto& [id, rec] : queries_) {
    if (rec.state != QueryState::kDropped) ++n;
  }
  return n;
}

Result<size_t> QueryService::QueryStateBytes(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not registered");
  }
  size_t total = 0;
  for (const std::string& fp : it->second.ref_order) {
    auto sit = shared_.find(fp);
    if (sit == shared_.end()) continue;
    if (graph_->is_live(sit->second.node)) {
      total += graph_->node(sit->second.node)->StateBytesApprox();
    }
  }
  return total;
}

size_t QueryService::ApproxStateBytes() const {
  size_t total = 0;
  for (NodeId i = 0; i < graph_->num_nodes(); ++i) {
    if (graph_->is_live(i)) total += graph_->node(i)->StateBytesApprox();
  }
  return total;
}

std::string QueryService::DumpMetrics(MetricsFormat format) {
  std::lock_guard<std::mutex> lock(mu_);
  return executor_->DumpMetrics(format);
}

namespace {

/// The canonical predicate fingerprint of a filter-stage fingerprint, or ""
/// when `fp` names some other stage. Filter stages end "...|flt:<expr IR>"
/// with no window stage after them; the sharing-off salt lives in the
/// upstream part, so the suffix is always clean expression IR.
std::string FilterStagePredicate(const std::string& fp) {
  if (fp.rfind("plan:", 0) == 0) return "";
  size_t flt = fp.rfind("|flt:");
  if (flt == std::string::npos) return "";
  size_t win = fp.rfind("|win:");
  if (win != std::string::npos && win > flt) return "";
  return fp.substr(flt + 5);
}

}  // namespace

SelectivityHints QueryService::ObservedSelectivityHints() const {
  std::lock_guard<std::mutex> lock(mu_);
  SelectivityHints hints;
  for (const auto& [fp, sn] : shared_) {
    std::string pred = FilterStagePredicate(fp);
    if (pred.empty()) continue;
    double ewma = executor_->NodeSelectivityEwma(sn.node);
    if (ewma < 0.0) continue;  // unobserved
    hints[std::move(pred)] = ewma;
  }
  return hints;
}

void QueryService::SetSelectivityHints(SelectivityHints hints) {
  std::lock_guard<std::mutex> lock(mu_);
  config_.optimizer.selectivity_hints = std::move(hints);
}

SelectivityHints QueryService::CurrentSelectivityHints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_.optimizer.selectivity_hints;
}

size_t QueryService::RefreshSelectivityHints() {
  SelectivityHints observed = ObservedSelectivityHints();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [pred, sel] : observed) {
    config_.optimizer.selectivity_hints[pred] = sel;
  }
  return observed.size();
}

// --- Durability ---

namespace {

constexpr const char* kFenceKeyPrefix = "fence:q";

/// One registered query as persisted in the service registry blob.
struct PersistedQuery {
  QueryId id = 0;
  std::string sql;
  std::vector<std::string> ref_order;
  uint64_t nodes_total = 0;
  uint64_t nodes_reused = 0;
  /// Hints the query was planned with: restore-replay pins these so the
  /// replayed plan (and its fingerprints) match the checkpoint even if the
  /// service refreshed its hints afterwards.
  SelectivityHints hints;
};

void EncodeHints(const SelectivityHints& hints, std::string* out) {
  EncodeU32(static_cast<uint32_t>(hints.size()), out);
  for (const auto& [pred, sel] : hints) {
    EncodeString(pred, out);
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(sel));
    std::memcpy(&bits, &sel, sizeof(bits));
    EncodeU64(bits, out);
  }
}

Result<SelectivityHints> DecodeHints(std::string_view* in) {
  SelectivityHints hints;
  CQ_ASSIGN_OR_RETURN(uint32_t n, DecodeU32(in));
  for (uint32_t i = 0; i < n; ++i) {
    CQ_ASSIGN_OR_RETURN(std::string pred, DecodeString(in));
    CQ_ASSIGN_OR_RETURN(uint64_t bits, DecodeU64(in));
    double sel = 0.0;
    std::memcpy(&sel, &bits, sizeof(sel));
    hints[std::move(pred)] = sel;
  }
  return hints;
}

struct PersistedRegistry {
  uint64_t next_query_id = 1;
  uint64_t next_sub_id = 1;
  /// Catalog streams (name -> schema fields): queries replay through the
  /// SQL frontend, so streams registered at runtime must come back first.
  std::map<std::string, std::vector<Field>> streams;
  std::vector<PersistedQuery> queries;              // id order
  std::map<std::string, uint64_t> shared_refs;      // fingerprint -> refs
  /// The service's current hints (future registrations), restored after
  /// every query replays with its own pinned snapshot.
  SelectivityHints current_hints;
  std::vector<std::string> state_keys;              // aligns inner[1..]
};

Result<PersistedRegistry> DecodeRegistry(std::string_view blob) {
  std::string_view in = blob;
  PersistedRegistry reg;
  CQ_ASSIGN_OR_RETURN(reg.next_query_id, DecodeU64(&in));
  CQ_ASSIGN_OR_RETURN(reg.next_sub_id, DecodeU64(&in));
  CQ_ASSIGN_OR_RETURN(uint32_t nstreams, DecodeU32(&in));
  for (uint32_t i = 0; i < nstreams; ++i) {
    CQ_ASSIGN_OR_RETURN(std::string name, DecodeString(&in));
    CQ_ASSIGN_OR_RETURN(uint32_t nfields, DecodeU32(&in));
    std::vector<Field> fields(nfields);
    for (Field& f : fields) {
      CQ_ASSIGN_OR_RETURN(f.name, DecodeString(&in));
      CQ_ASSIGN_OR_RETURN(uint32_t type, DecodeU32(&in));
      if (type > static_cast<uint32_t>(ValueType::kString)) {
        return Status::IOError("unknown value type in persisted stream '" +
                               name + "'");
      }
      f.type = static_cast<ValueType>(type);
    }
    reg.streams[std::move(name)] = std::move(fields);
  }
  CQ_ASSIGN_OR_RETURN(uint32_t nq, DecodeU32(&in));
  reg.queries.resize(nq);
  for (PersistedQuery& q : reg.queries) {
    CQ_ASSIGN_OR_RETURN(q.id, DecodeU64(&in));
    CQ_ASSIGN_OR_RETURN(q.sql, DecodeString(&in));
    CQ_ASSIGN_OR_RETURN(q.ref_order, ft::DecodeBlobList(&in));
    CQ_ASSIGN_OR_RETURN(q.nodes_total, DecodeU64(&in));
    CQ_ASSIGN_OR_RETURN(q.nodes_reused, DecodeU64(&in));
    CQ_ASSIGN_OR_RETURN(q.hints, DecodeHints(&in));
  }
  CQ_ASSIGN_OR_RETURN(uint32_t ns, DecodeU32(&in));
  for (uint32_t i = 0; i < ns; ++i) {
    CQ_ASSIGN_OR_RETURN(std::string fp, DecodeString(&in));
    CQ_ASSIGN_OR_RETURN(reg.shared_refs[std::move(fp)], DecodeU64(&in));
  }
  CQ_ASSIGN_OR_RETURN(reg.current_hints, DecodeHints(&in));
  CQ_ASSIGN_OR_RETURN(reg.state_keys, ft::DecodeBlobList(&in));
  if (!in.empty()) {
    return Status::IOError("trailing bytes after service registry");
  }
  return reg;
}

}  // namespace

void QueryService::SetDurableOutputLog(ft::DurableOutputLog* log) {
  std::lock_guard<std::mutex> lock(mu_);
  output_log_ = log;
}

std::vector<std::string> QueryService::StateKeysLocked() const {
  std::vector<std::string> keys;
  for (const auto& [fp, sn] : shared_) keys.push_back(fp);
  for (const auto& [id, rec] : queries_) {
    if (rec.state == QueryState::kRunning && rec.fence != nullptr) {
      keys.push_back(kFenceKeyPrefix + std::to_string(id));
    }
  }
  return keys;
}

Result<std::vector<std::string>> QueryService::SnapshotSlots() {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotSlotsLocked();
}

Result<std::vector<std::string>> QueryService::SnapshotSlotsLocked() {
  const std::vector<std::string> keys = StateKeysLocked();

  // Registry blob: everything needed to re-splice an equivalent graph.
  std::string reg;
  EncodeU64(next_query_id_, &reg);
  EncodeU64(next_sub_id_, &reg);
  const std::vector<std::string> stream_names = catalog_.StreamNames();
  EncodeU32(static_cast<uint32_t>(stream_names.size()), &reg);
  for (const std::string& name : stream_names) {
    CQ_ASSIGN_OR_RETURN(SchemaPtr schema, catalog_.GetStream(name));
    EncodeString(name, &reg);
    EncodeU32(static_cast<uint32_t>(schema->num_fields()), &reg);
    for (const Field& f : schema->fields()) {
      EncodeString(f.name, &reg);
      EncodeU32(static_cast<uint32_t>(f.type), &reg);
    }
  }
  uint32_t nrunning = 0;
  for (const auto& [id, rec] : queries_) {
    if (rec.state == QueryState::kRunning) ++nrunning;
  }
  EncodeU32(nrunning, &reg);
  for (const auto& [id, rec] : queries_) {
    if (rec.state != QueryState::kRunning) continue;
    EncodeU64(id, &reg);
    EncodeString(rec.sql, &reg);
    ft::EncodeBlobList(rec.ref_order, &reg);
    EncodeU64(rec.nodes_total, &reg);
    EncodeU64(rec.nodes_reused, &reg);
    EncodeHints(rec.hints, &reg);
  }
  EncodeU32(static_cast<uint32_t>(shared_.size()), &reg);
  for (const auto& [fp, sn] : shared_) {
    EncodeString(fp, &reg);
    EncodeU64(sn.refs, &reg);
  }
  EncodeHints(config_.optimizer.selectivity_hints, &reg);
  ft::EncodeBlobList(keys, &reg);

  std::vector<std::string> inner;
  inner.reserve(keys.size() + 1);
  inner.push_back(std::move(reg));
  for (const std::string& key : keys) {
    CQ_ASSIGN_OR_RETURN(Operator * node, NodeForKeyLocked(key));
    CQ_ASSIGN_OR_RETURN(std::string state, node->SnapshotState());
    inner.push_back(std::move(state));
  }

  // Staged handoff (phase 1 of the publish fence): only after every node
  // captured cleanly do the fence sinks drop their live buffers — the image
  // owns them now.
  for (NodeId i = 0; i < graph_->num_nodes(); ++i) {
    if (!graph_->is_live(i)) continue;
    CQ_RETURN_NOT_OK(graph_->node(i)->OnSnapshotStaged());
  }

  std::string outer;
  ft::EncodeBlobList(inner, &outer);
  return std::vector<std::string>{std::move(outer)};
}

Result<Operator*> QueryService::NodeForKeyLocked(const std::string& key) {
  if (key.rfind(kFenceKeyPrefix, 0) == 0) {
    QueryId id = 0;
    try {
      id = std::stoull(key.substr(std::string(kFenceKeyPrefix).size()));
    } catch (const std::exception&) {
      return Status::IOError("malformed fence state key '" + key + "'");
    }
    auto it = queries_.find(id);
    if (it == queries_.end() || it->second.fence == nullptr) {
      return Status::Internal("state key '" + key +
                              "' names no live fence sink — was the durable "
                              "output log attached before restore?");
    }
    return static_cast<Operator*>(it->second.fence);
  }
  auto it = shared_.find(key);
  if (it == shared_.end()) {
    return Status::Internal("state key '" + key +
                            "' is not in the shared-node index");
  }
  return graph_->node(it->second.node);
}

Status QueryService::RestoreSlots(const std::vector<std::string>& slots) {
  if (slots.size() != 1) {
    return Status::InvalidArgument(
        "service image has " + std::to_string(slots.size()) +
        " slots, expected 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!queries_.empty() || !shared_.empty()) {
    return Status::InvalidArgument(
        "service restore requires a freshly constructed service");
  }
  std::string_view in = slots[0];
  CQ_ASSIGN_OR_RETURN(std::vector<std::string> inner, ft::DecodeBlobList(&in));
  if (!in.empty()) {
    return Status::IOError("trailing bytes after service image");
  }
  if (inner.empty()) {
    return Status::IOError("service image is missing its registry");
  }
  CQ_ASSIGN_OR_RETURN(PersistedRegistry reg, DecodeRegistry(inner[0]));
  if (inner.size() != reg.state_keys.size() + 1) {
    return Status::IOError(
        "service image has " + std::to_string(inner.size() - 1) +
        " state blobs for " + std::to_string(reg.state_keys.size()) +
        " keys");
  }

  // Streams first: replayed queries plan against the catalog, so every
  // persisted stream must exist (and mean the same thing) before any SQL
  // re-runs. Constructor-seeded streams are verified, runtime-registered
  // ones are recreated.
  for (const auto& [name, fields] : reg.streams) {
    auto existing = catalog_.GetStream(name);
    if (existing.ok()) {
      if ((*existing)->fields() != fields) {
        return Status::Internal("stream '" + name +
                                "' has a different schema than the "
                                "checkpoint — catalog drifted");
      }
      continue;
    }
    CQ_RETURN_NOT_OK(catalog_.RegisterStream(name, Schema::Make(fields)));
  }

  // Replay every persisted query through the normal frontend with its
  // original id pinned. Identical SQL against an identical catalog yields
  // identical fingerprints, so the shared graph re-splices into the same
  // shape — verified below, not assumed.
  for (const PersistedQuery& pq : reg.queries) {
    next_query_id_ = pq.id;
    // Pin the hints snapshot the query was originally planned with: hints
    // steer predicate ordering and join-input choice, so replaying with the
    // service's current hints could change fingerprints.
    config_.optimizer.selectivity_hints = pq.hints;
    CQ_ASSIGN_OR_RETURN(QueryId got, RegisterQueryLocked(pq.sql));
    if (got != pq.id) {
      return Status::Internal("restore replay assigned query id " +
                              std::to_string(got) + ", expected " +
                              std::to_string(pq.id));
    }
    const QueryRecord& rec = queries_.at(got);
    if (rec.ref_order != pq.ref_order) {
      return Status::Internal(
          "restore replay of query " + std::to_string(pq.id) +
          " produced different fingerprints than the checkpoint — catalog "
          "or optimizer configuration drifted");
    }
  }
  next_query_id_ = reg.next_query_id;
  next_sub_id_ = reg.next_sub_id;
  config_.optimizer.selectivity_hints = reg.current_hints;

  // The re-spliced graph must share exactly as the checkpointed one did.
  std::map<std::string, uint64_t> refs_now;
  for (const auto& [fp, sn] : shared_) refs_now[fp] = sn.refs;
  if (refs_now != reg.shared_refs) {
    return Status::Internal(
        "restore replay produced different shared-subplan refcounts than "
        "the checkpoint");
  }
  if (StateKeysLocked() != reg.state_keys) {
    return Status::Internal(
        "restore replay produced a different state-key layout than the "
        "checkpoint");
  }

  // With the graph shape verified, load every node's state by key.
  for (size_t i = 0; i < reg.state_keys.size(); ++i) {
    CQ_ASSIGN_OR_RETURN(Operator * node,
                        NodeForKeyLocked(reg.state_keys[i]));
    CQ_RETURN_NOT_OK(node->RestoreState(inner[i + 1]));
  }
  return Status::OK();
}

void QueryService::SetBarrierHandler(BarrierHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  barrier_handler_ = std::move(handler);
}

Status QueryService::InjectBarrier(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!barrier_handler_) {
    return Status::Internal(
        "barrier handler not installed (call SetBarrierHandler first)");
  }
  // Pushes serialise on mu_, so holding it IS the alignment: the snapshot
  // covers exactly the pushes that completed before this call.
  FlightRecorder::Global().Record("barrier", "service_align", "",
                                  static_cast<int64_t>(epoch));
  Result<std::vector<std::string>> slots = SnapshotSlotsLocked();
  if (slots.ok()) {
    barrier_handler_(epoch, 0, std::move((*slots)[0]));
  } else {
    barrier_handler_(epoch, 0, slots.status());
  }
  return Status::OK();
}

std::map<std::string, size_t> QueryService::SharedRefCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, size_t> out;
  for (const auto& [fp, sn] : shared_) out[fp] = sn.refs;
  return out;
}

Result<std::vector<std::string>> QueryService::QueryFingerprints(
    QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) +
                            " is not registered");
  }
  return it->second.ref_order;
}

}  // namespace cq

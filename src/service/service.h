#ifndef CQ_SERVICE_SERVICE_H_
#define CQ_SERVICE_SERVICE_H_

/// \file service.h
/// \brief The multi-query continuous-query service (survey Fig. 1).
///
/// The figure's loop — users register continuous queries against a DSMS,
/// data streams in, results are *pushed* to the registrants — is this
/// class. A QueryService owns one shared dataflow graph plus its executor
/// and accepts CQL text at runtime: RegisterQuery plans the SQL through the
/// existing frontend (parser -> planner -> optimiser), compiles the result
/// into dataflow operators, and splices them into the *running* graph;
/// DropQuery tears a query's operators back out without disturbing the
/// rest.
///
/// Multi-query sharing (NiagaraCQ lineage): every spliced node is named by
/// a fingerprint of the whole upstream prefix it terminates
/// (sql/fingerprint.h). Before creating a node the service consults its
/// shared-node index; a hit reuses the running node — state included — and
/// bumps a refcount, so K queries over the same source / filter / window
/// prefix run one copy of that prefix and fan out at the first divergence.
/// DropQuery unrefs in downstream-first order and removes only nodes whose
/// refcount reaches zero, so surviving queries keep producing byte-identical
/// output. Note the documented consequence of shared state: a query that
/// registers *later* against an already-warm prefix observes the prefix's
/// current window content, exactly like a new NiagaraCQ subscriber joining
/// a shared plan.
///
/// Results are pushed per query through bounded subscription channels
/// (credit-based); a slow subscriber exhausts only its own credits and
/// drops batches while co-subscribers and the shared pipeline keep
/// advancing. Admission control caps the number of registered queries and
/// the service's resident state bytes.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dataflow/executor.h"
#include "ft/checkpointable.h"
#include "ft/fence.h"
#include "service/operators.h"
#include "sql/catalog.h"
#include "sql/optimizer.h"

namespace cq {

using QueryId = uint64_t;

/// \brief Lifecycle of a registered query.
enum class QueryState {
  kRegistering,  // being planned / spliced (transient, under the lock)
  kRunning,      // live in the shared graph
  kDraining,     // DropQuery in progress (transient, under the lock)
  kDropped,      // torn down; id remains valid for inspection
};

const char* QueryStateToString(QueryState state);

struct ServiceConfig {
  /// Admission cap on concurrently registered (non-dropped) queries.
  size_t max_queries = 64;
  /// Admission cap on resident operator state bytes (approximate; checked
  /// at registration). 0 = unlimited.
  size_t max_state_bytes = 0;
  /// Credits (queued batches) per subscription channel.
  size_t subscription_credits = 64;
  /// Multi-query sharing. Off gives each query a private operator chain —
  /// the ablation baseline for bench E12.
  bool share_subplans = true;
  /// Optimiser configuration applied to every registered plan.
  OptimizerOptions optimizer;
  /// Optional registry for cq_service_* (and per-node cq_dataflow_*)
  /// instruments; must outlive the service.
  MetricsRegistry* metrics = nullptr;
  /// Optional span recorder: sampled pushes carry a TraceContext through
  /// the shared graph (ingest span, per-operator self-time spans, publish
  /// span, subscription queue-wait spans). Must outlive the service.
  TraceRecorder* tracer = nullptr;
  /// Every Nth push roots a new trace (0 disables, 1 traces every push).
  size_t trace_sample_every = 1;
};

/// \brief Inspection snapshot of one registered query.
struct QueryInfo {
  QueryId id = 0;
  QueryState state = QueryState::kRegistering;
  std::string sql;
  /// Operator nodes this query references (prefix chains + plan + sink).
  size_t nodes_total = 0;
  /// Of those, nodes that already existed when the query registered
  /// (shared-prefix hits).
  size_t nodes_reused = 0;
  size_t num_subscriptions = 0;
};

/// \brief A long-running continuous-query service over one shared dataflow.
///
/// Thread model: registration, teardown, subscription management and data
/// pushes serialise on one internal mutex (the executor is synchronous);
/// subscribers drain their channels concurrently without that lock.
///
/// Durability: the service is ft::Checkpointable — its image is ONE slot
/// holding a registry blob (query texts, fingerprint ref-orders, shared
/// refcounts, id counters) plus one state blob per fingerprint-named node,
/// keyed by fingerprint rather than NodeId so the image survives graph
/// renumbering. RestoreSlots re-registers every persisted query through the
/// normal SQL frontend with its original id pinned, verifies the resulting
/// fingerprints and refcounts byte-for-byte against the registry, then
/// restores node state by fingerprint. It is also ft::BarrierInjectable
/// (fan-in 1): pushes serialise on the service lock, so taking the lock IS
/// the barrier alignment — the snapshot covers exactly the pushes that
/// completed before it.
class QueryService : public ft::Checkpointable, public ft::BarrierInjectable {
 public:
  explicit QueryService(Catalog catalog, ServiceConfig config = {});

  /// \brief Registers a named input stream (must precede queries over it).
  Status RegisterStream(const std::string& name, SchemaPtr schema);

  /// \brief Plans `sql` and splices it into the running graph. Errors leave
  /// the graph exactly as it was.
  Result<QueryId> RegisterQuery(const std::string& sql);

  /// \brief Tears the query out of the graph: closes its subscriptions,
  /// removes its sink, and unrefs its shared nodes downstream-first; nodes
  /// still referenced by other queries stay untouched.
  Status DropQuery(QueryId id);

  /// \brief Opens a push subscription on a running query's output.
  Result<SubscriptionPtr> Subscribe(QueryId id);

  // --- Ingest (routed by stream name to the shared per-stream sources) ---

  Status PushRecord(const std::string& stream, Tuple tuple, Timestamp ts);
  Status PushWatermark(const std::string& stream, Timestamp watermark);
  Status Push(const std::string& stream, const StreamElement& element);
  Status PushBatch(const std::string& stream, const StreamBatch& batch);

  // --- Inspection ---

  Result<QueryInfo> GetQuery(QueryId id) const;
  std::vector<QueryInfo> ListQueries() const;

  /// \brief Live operator nodes in the shared graph (the sharing metric:
  /// K same-prefix queries need far fewer than K private chains' worth).
  size_t NumOperators() const;

  /// \brief Registered queries not yet dropped.
  size_t NumActiveQueries() const;

  /// \brief Serialized metrics registry contents ("" without a registry).
  std::string DumpMetrics(MetricsFormat format = MetricsFormat::kJson);

  const Catalog& catalog() const { return catalog_; }

  // --- Durability (ft::Checkpointable / ft::BarrierInjectable) ---

  /// \brief Attaches an idempotent output log: every subsequently registered
  /// query gets an epoch-fenced sink ("fence:q<id>", part = query id) beside
  /// its subscription sink, staging the query's output into checkpoint
  /// images for the coordinator's two-phase publish. Must be called before
  /// the first RegisterQuery (and before RestoreSlots on a recovering
  /// service). Not owned.
  void SetDurableOutputLog(ft::DurableOutputLog* log);

  Result<std::vector<std::string>> SnapshotSlots() override;
  Status RestoreSlots(const std::vector<std::string>& slots) override;

  void SetBarrierHandler(BarrierHandler handler) override;
  /// \brief Snapshots immediately under the service lock and reports slot 0
  /// to the handler: with pushes serialised on that lock, lock acquisition
  /// is the alignment point.
  Status InjectBarrier(uint64_t epoch) override;
  size_t BarrierFanIn() const override { return 1; }

  /// \brief Live shared-node refcounts by fingerprint (restore-equivalence
  /// checks and sharing diagnostics).
  std::map<std::string, size_t> SharedRefCounts() const;

  /// \brief The fingerprints a running query references, upstream to
  /// downstream — byte-identical across a checkpoint/restore cycle.
  Result<std::vector<std::string>> QueryFingerprints(QueryId id) const;

  // --- Optimizer selectivity feedback ---

  /// \brief Samples the observed-selectivity EWMAs of the shared filter
  /// stages (the `cq_dataflow_selectivity` gauges) and returns them keyed by
  /// canonical predicate fingerprint — directly usable as
  /// OptimizerOptions::selectivity_hints. Stages with no observations yet
  /// (or no metrics registry) are omitted.
  SelectivityHints ObservedSelectivityHints() const;

  /// \brief Replaces the selectivity hints applied to future registrations.
  /// Running queries keep the plan (and fingerprints) they registered with;
  /// each query's hints snapshot is persisted so restore-replay reproduces
  /// its fingerprints even after a refresh.
  void SetSelectivityHints(SelectivityHints hints);

  SelectivityHints CurrentSelectivityHints() const;

  /// \brief Merges ObservedSelectivityHints() into the current hints and
  /// returns how many stages contributed — the feedback edge from PR 6's
  /// attribution metrics back into the optimizer's cost model.
  size_t RefreshSelectivityHints();

  /// \brief Approximate resident state bytes attributed to one query: the
  /// sum of StateBytesApprox over every node in its ref_order. A shared
  /// node counts fully for each query referencing it (attribution, not a
  /// partition of ApproxStateBytes) — the per-tenant admission quota in
  /// src/net charges each tenant for the state its queries depend on,
  /// shared or not.
  Result<size_t> QueryStateBytes(QueryId id) const;

 private:
  /// One fingerprint-named node in the shared graph.
  struct SharedNode {
    NodeId node = 0;
    size_t refs = 0;
  };

  /// Bookkeeping for one registered query.
  struct QueryRecord {
    QueryId id = 0;
    QueryState state = QueryState::kRegistering;
    std::string sql;
    SchemaPtr output_schema;
    /// Referenced shared fingerprints, upstream -> downstream (per-slot
    /// chains first, the plan stage last). Torn down in reverse.
    std::vector<std::string> ref_order;
    NodeId sink_node = 0;
    SubscriptionSinkOperator* sink = nullptr;  // borrowed from the graph
    /// Epoch-fenced durable sink (only with SetDurableOutputLog; never
    /// shared, part = query id).
    NodeId fence_node = 0;
    ft::EpochSinkOperator* fence = nullptr;  // borrowed from the graph
    size_t nodes_total = 0;
    size_t nodes_reused = 0;
    /// The selectivity hints this query was planned with (a snapshot of the
    /// optimizer config at registration). Persisted and pinned during
    /// restore-replay: hints change plan shape, so replaying with newer
    /// hints would break fingerprint verification.
    SelectivityHints hints;
  };

  /// Takes (or creates) the node named `fp`; on creation invokes `factory`
  /// and wires `parent -> node:port` (parent == kNoParent for sources).
  /// Appends `fp` to `rec->ref_order` and updates reuse accounting.
  static constexpr NodeId kNoParent = static_cast<NodeId>(-1);
  Result<NodeId> AcquireNode(
      const std::string& fp,
      const std::function<std::unique_ptr<Operator>()>& factory, NodeId parent,
      size_t port, QueryRecord* rec);

  /// Drops one reference to `fp`; removes the node at refcount zero.
  Status ReleaseNode(const std::string& fp);

  /// Reverse-order release of everything in `ref_order` (teardown and
  /// registration rollback share this path).
  void ReleaseAll(const std::vector<std::string>& ref_order);

  /// RegisterQuery body; callers hold mu_. RestoreSlots replays through
  /// this with next_query_id_ pinned to each persisted id.
  Result<QueryId> RegisterQueryLocked(const std::string& sql);

  /// The ordered state-key list the snapshot image is aligned with: every
  /// shared fingerprint (map order), then "fence:q<id>" per running query.
  std::vector<std::string> StateKeysLocked() const;

  /// Resolves a state key to its live operator (shared fingerprint or
  /// per-query fence sink).
  Result<Operator*> NodeForKeyLocked(const std::string& key);

  /// Snapshot body (callers hold mu_): registry + per-key node states as
  /// one blob-list slot, then the staged-buffer handoff (OnSnapshotStaged)
  /// across all live nodes.
  Result<std::vector<std::string>> SnapshotSlotsLocked();

  size_t ApproxStateBytes() const;
  size_t NumActiveQueriesLocked() const;
  static QueryInfo InfoLocked(const QueryRecord& rec);

  /// Stamps the ingest timestamp (when anything consumes it) and, on every
  /// `trace_sample_every`-th push, roots a new trace whose ingest span is
  /// recorded by FinishIngest. Scopes the executor's active trace.
  TraceContext BeginIngestLocked(const std::string& stream);
  /// Records the ingest span (dispatch overhead only; operator spans are
  /// its siblings' children) and clears the executor's active trace.
  void FinishIngestLocked(const TraceContext& tc, const std::string& stream,
                          int64_t dispatch_end_ns);

  mutable std::mutex mu_;
  Catalog catalog_;
  ServiceConfig config_;
  std::unique_ptr<PipelineExecutor> executor_;
  DataflowGraph* graph_ = nullptr;  // owned by executor_

  std::map<std::string, SharedNode> shared_;          // fingerprint -> node
  std::map<std::string, std::vector<NodeId>> sources_;  // stream -> sources
  std::map<QueryId, QueryRecord> queries_;
  QueryId next_query_id_ = 1;
  uint64_t next_sub_id_ = 1;
  uint64_t pushes_ = 0;  // trace-sampling counter

  ft::DurableOutputLog* output_log_ = nullptr;  // not owned
  BarrierHandler barrier_handler_;

  // cq_service_* instruments (null without a registry).
  Counter* registered_total_ = nullptr;
  Counter* dropped_total_ = nullptr;
  Counter* rejected_total_ = nullptr;
  Counter* nodes_created_total_ = nullptr;
  Counter* nodes_reused_total_ = nullptr;
  Gauge* active_gauge_ = nullptr;
  Gauge* live_nodes_gauge_ = nullptr;
  Gauge* subscriptions_gauge_ = nullptr;
};

}  // namespace cq

#endif  // CQ_SERVICE_SERVICE_H_

#ifndef CQ_IVM_VIEW_H_
#define CQ_IVM_VIEW_H_

/// \file view.h
/// \brief Continuous views: maintenance strategies for in-database stream
/// processing (paper §5.1).
///
/// Streaming databases answer standing queries over high-velocity updates by
/// maintaining materialised views. The survey contrasts three strategies,
/// all implemented here behind one interface so bench E4 can reproduce the
/// trade-off:
///
///  - EagerView (PipelineDB / DBToaster style): every update propagates a
///    delta through the plan immediately. Slow inserts, instant queries.
///  - LazyView: updates only touch base tables; each query re-executes the
///    plan. Instant inserts, slow queries.
///  - SplitView (Winter et al., "Meet me halfway" [91]): updates append to a
///    cheap delta log; queries first fold the accumulated deltas
///    incrementally into the cached result, then read it. Work is split
///    between the two sides, sitting between the extremes.
///
/// A PushView (InvaliDB style [90]) wraps an eager view with subscriptions:
/// listeners receive the exact result delta caused by each update — the
/// push-based query interface on top of a pull-based store.

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "cql/continuous_query.h"
#include "cql/plan.h"
#include "obs/metrics.h"
#include "relation/relation.h"

namespace cq {

/// \brief A continuous view over `num_tables` base tables.
class MaterializedView {
 public:
  virtual ~MaterializedView() = default;

  /// \brief Applies a base-table delta (insertions and/or deletions).
  virtual Status ApplyDelta(size_t table, const MultisetRelation& delta) = 0;

  Status Insert(size_t table, const Tuple& t) {
    MultisetRelation d;
    d.Add(t, 1);
    return ApplyDelta(table, d);
  }
  Status Delete(size_t table, const Tuple& t) {
    MultisetRelation d;
    d.Add(t, -1);
    return ApplyDelta(table, d);
  }

  /// \brief The view's current contents. May perform deferred maintenance.
  virtual Result<MultisetRelation> Query() = 0;

  /// \brief Distinct tuples of auxiliary state the strategy retains.
  virtual size_t StateSize() const = 0;

  virtual const char* strategy() const = 0;

  /// \brief Publishes the view's state-size gauge
  /// (`cq_ivm_state_tuples{view=...,strategy=...}`) into `registry`.
  /// Snapshot semantics: call at metrics-dump cadence.
  void ExportMetrics(MetricsRegistry* registry,
                     const std::string& view_label) const;
};

/// \brief Eager incremental maintenance (delta propagation on every update).
class EagerView : public MaterializedView {
 public:
  EagerView(RelOpPtr plan, size_t num_tables);

  Status ApplyDelta(size_t table, const MultisetRelation& delta) override;
  Result<MultisetRelation> Query() override;
  size_t StateSize() const override { return executor_.StateSize(); }
  const char* strategy() const override { return "eager"; }

 private:
  size_t num_tables_;
  IncrementalPlanExecutor executor_;
};

/// \brief Lazy maintenance: full re-execution per query.
class LazyView : public MaterializedView {
 public:
  LazyView(RelOpPtr plan, size_t num_tables);

  Status ApplyDelta(size_t table, const MultisetRelation& delta) override;
  Result<MultisetRelation> Query() override;
  size_t StateSize() const override;
  const char* strategy() const override { return "lazy"; }

 private:
  RelOpPtr plan_;
  std::vector<MultisetRelation> tables_;
};

/// \brief Split maintenance (Winter et al. [91]): inserts append to delta
/// logs; queries fold pending deltas incrementally, then read the cache.
class SplitView : public MaterializedView {
 public:
  SplitView(RelOpPtr plan, size_t num_tables);

  Status ApplyDelta(size_t table, const MultisetRelation& delta) override;
  Result<MultisetRelation> Query() override;
  size_t StateSize() const override;
  const char* strategy() const override { return "split"; }

  /// \brief Pending (unfolded) delta tuples — shrinks to 0 on Query().
  size_t PendingDeltas() const;

 private:
  size_t num_tables_;
  IncrementalPlanExecutor executor_;
  std::vector<MultisetRelation> pending_;
};

/// \brief Push-based continuous query: subscribers get result deltas.
class PushView {
 public:
  /// \brief Called with the exact change to the result (a Z-set: positive
  /// entries are new result rows, negative entries invalidated ones).
  using Listener = std::function<void(const MultisetRelation& delta)>;

  PushView(RelOpPtr plan, size_t num_tables);

  /// \brief Registers a subscriber; returns its id.
  size_t Subscribe(Listener listener);
  void Unsubscribe(size_t id);

  /// \brief Applies an update; notifies subscribers iff the result changed.
  Status ApplyDelta(size_t table, const MultisetRelation& delta);

  Status Insert(size_t table, const Tuple& t) {
    MultisetRelation d;
    d.Add(t, 1);
    return ApplyDelta(table, d);
  }

  const MultisetRelation& Current() const { return executor_.current_output(); }

 private:
  size_t num_tables_;
  IncrementalPlanExecutor executor_;
  std::vector<std::pair<size_t, Listener>> listeners_;
  size_t next_id_ = 0;
};

}  // namespace cq

#endif  // CQ_IVM_VIEW_H_

#include "ivm/view.h"

namespace cq {

namespace {

std::vector<MultisetRelation> OneHotDeltas(size_t num_tables, size_t table,
                                           const MultisetRelation& delta) {
  std::vector<MultisetRelation> deltas(num_tables);
  deltas[table] = delta;
  return deltas;
}

}  // namespace

void MaterializedView::ExportMetrics(MetricsRegistry* registry,
                                     const std::string& view_label) const {
  if (registry == nullptr) return;
  registry
      ->GetGauge("cq_ivm_state_tuples",
                 {{"view", view_label}, {"strategy", strategy()}})
      ->Set(static_cast<int64_t>(StateSize()));
}

// ---- EagerView ----

EagerView::EagerView(RelOpPtr plan, size_t num_tables)
    : num_tables_(num_tables), executor_(std::move(plan), num_tables) {}

Status EagerView::ApplyDelta(size_t table, const MultisetRelation& delta) {
  if (table >= num_tables_) {
    return Status::InvalidArgument("table index out of range");
  }
  return executor_.ApplyDeltas(OneHotDeltas(num_tables_, table, delta))
      .status();
}

Result<MultisetRelation> EagerView::Query() {
  return executor_.current_output();
}

// ---- LazyView ----

LazyView::LazyView(RelOpPtr plan, size_t num_tables)
    : plan_(std::move(plan)), tables_(num_tables) {}

Status LazyView::ApplyDelta(size_t table, const MultisetRelation& delta) {
  if (table >= tables_.size()) {
    return Status::InvalidArgument("table index out of range");
  }
  tables_[table].PlusInPlace(delta);
  return Status::OK();
}

Result<MultisetRelation> LazyView::Query() { return plan_->Eval(tables_); }

size_t LazyView::StateSize() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.NumDistinct();
  return n;
}

// ---- SplitView ----

SplitView::SplitView(RelOpPtr plan, size_t num_tables)
    : num_tables_(num_tables),
      executor_(std::move(plan), num_tables),
      pending_(num_tables) {}

Status SplitView::ApplyDelta(size_t table, const MultisetRelation& delta) {
  if (table >= num_tables_) {
    return Status::InvalidArgument("table index out of range");
  }
  // Insert-side work is a cheap append into the delta partition.
  pending_[table].PlusInPlace(delta);
  return Status::OK();
}

Result<MultisetRelation> SplitView::Query() {
  bool any = false;
  for (const auto& p : pending_) {
    if (!p.Empty()) {
      any = true;
      break;
    }
  }
  if (any) {
    // Query-side work: fold all pending deltas incrementally (one batch).
    CQ_RETURN_NOT_OK(executor_.ApplyDeltas(pending_).status());
    for (auto& p : pending_) p = MultisetRelation();
  }
  return executor_.current_output();
}

size_t SplitView::StateSize() const {
  size_t n = executor_.StateSize();
  for (const auto& p : pending_) n += p.NumDistinct();
  return n;
}

size_t SplitView::PendingDeltas() const {
  size_t n = 0;
  for (const auto& p : pending_) n += p.NumDistinct();
  return n;
}

// ---- PushView ----

PushView::PushView(RelOpPtr plan, size_t num_tables)
    : num_tables_(num_tables), executor_(std::move(plan), num_tables) {}

size_t PushView::Subscribe(Listener listener) {
  listeners_.emplace_back(next_id_, std::move(listener));
  return next_id_++;
}

void PushView::Unsubscribe(size_t id) {
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == id) {
      listeners_.erase(it);
      return;
    }
  }
}

Status PushView::ApplyDelta(size_t table, const MultisetRelation& delta) {
  if (table >= num_tables_) {
    return Status::InvalidArgument("table index out of range");
  }
  CQ_ASSIGN_OR_RETURN(
      MultisetRelation result_delta,
      executor_.ApplyDeltas(OneHotDeltas(num_tables_, table, delta)));
  if (!result_delta.Empty()) {
    for (auto& [id, listener] : listeners_) listener(result_delta);
  }
  return Status::OK();
}

}  // namespace cq

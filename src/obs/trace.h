#ifndef CQ_OBS_TRACE_H_
#define CQ_OBS_TRACE_H_

/// \file trace.h
/// \brief Lightweight span tracing: ScopedTimer and a bounded span recorder.
///
/// Two levels of tracing cost:
///  - ScopedTimer: RAII wall-clock measurement into a Histogram. Null-safe —
///    constructed with a nullptr histogram it compiles down to two branch
///    tests, which is what keeps instrumentation near-zero-cost when no
///    registry is attached.
///  - TraceRecorder: an optional bounded ring of completed spans
///    (trace id, name, start, duration) for per-element flow debugging.
///    Intended for tests and ad-hoc diagnosis, not production hot paths.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace cq {

/// \brief Monotonic clock reading in nanoseconds.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief RAII timer: observes elapsed microseconds into `histogram` on
/// destruction. A nullptr histogram disables the timer entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ns_ = MonotonicNanos();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          static_cast<double>(MonotonicNanos() - start_ns_) / 1e3);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_ns_ = 0;
};

/// \brief A completed trace span.
struct Span {
  uint64_t trace_id = 0;  // groups spans of one logical element / request
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

/// \brief Process-unique trace-id source (per-element trace ids).
inline uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// \brief Bounded ring buffer of completed spans. Thread-safe.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1024) : capacity_(capacity) {}

  void Record(Span span) {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() < capacity_) {
      spans_.push_back(std::move(span));
    } else {
      spans_[next_slot_] = std::move(span);
    }
    next_slot_ = (next_slot_ + 1) % capacity_;
    ++total_;
  }

  /// \brief Snapshot of retained spans (oldest-first not guaranteed once
  /// the ring wraps).
  std::vector<Span> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  /// \brief Total spans ever recorded (>= retained count once wrapped).
  uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  std::string ToJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < spans_.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"trace_id\":" << spans_[i].trace_id << ",\"name\":\""
          << spans_[i].name << "\",\"start_ns\":" << spans_[i].start_ns
          << ",\"duration_ns\":" << spans_[i].duration_ns << "}";
    }
    out << "]";
    return out.str();
  }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  size_t next_slot_ = 0;
  uint64_t total_ = 0;
};

/// \brief RAII span: records into `recorder` on destruction. Null-safe.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string name, uint64_t trace_id = 0)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      span_.trace_id = trace_id;
      span_.name = std::move(name);
      span_.start_ns = MonotonicNanos();
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      span_.duration_ns = MonotonicNanos() - span_.start_ns;
      recorder_->Record(std::move(span_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  Span span_;
};

}  // namespace cq

#endif  // CQ_OBS_TRACE_H_

#ifndef CQ_OBS_TRACE_H_
#define CQ_OBS_TRACE_H_

/// \file trace.h
/// \brief Lightweight span tracing: ScopedTimer and a bounded span recorder.
///
/// Three levels of tracing cost:
///  - ScopedTimer: RAII wall-clock measurement into a Histogram. Null-safe —
///    constructed with a nullptr histogram it compiles down to two branch
///    tests, which is what keeps instrumentation near-zero-cost when no
///    registry is attached.
///  - TraceRecorder: an optional bounded ring of completed spans for
///    per-element flow debugging and critical-path attribution.
///  - TraceContext: a sampled per-batch context (trace id, parent span,
///    ingest timestamp) stamped onto StreamBatch at the ingest edge and
///    carried through channels, workers, and the service delta operators so
///    spans recorded along the way form one parent/child tree per sampled
///    element. An unsampled context (trace_id == 0) costs one branch at
///    every instrumentation point.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace cq {

/// \brief Monotonic clock reading in nanoseconds.
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// \brief RAII timer: observes elapsed microseconds into `histogram` on
/// destruction. A nullptr histogram disables the timer entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) : histogram_(histogram) {
    if (histogram_ != nullptr) start_ns_ = MonotonicNanos();
  }
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Observe(
          static_cast<double>(MonotonicNanos() - start_ns_) / 1e3);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_ns_ = 0;
};

/// \brief What a span's duration attributes time to. The critical-path sum
/// of a trace counts kIngest + kOp: those partition the synchronous path
/// from ingest to publish. kPublish is a sub-segment of the sink's kOp self
/// time and kQueue/kDeliver happen after publish (subscriber side), so they
/// are reported in the breakdown but excluded from the sum.
enum class SpanKind : uint8_t {
  kIngest,   // source poll / service push dispatch overhead
  kOp,       // one operator delivery's self time (downstream excluded)
  kQueue,    // time a batch waited inside a channel
  kPublish,  // fan-out of one output batch to subscriptions
  kDeliver,  // subscriber-side consumption
};

inline const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIngest:
      return "ingest";
    case SpanKind::kOp:
      return "op";
    case SpanKind::kQueue:
      return "queue";
    case SpanKind::kPublish:
      return "publish";
    case SpanKind::kDeliver:
      return "deliver";
  }
  return "unknown";
}

/// \brief A completed trace span.
struct Span {
  uint64_t trace_id = 0;  // groups spans of one logical element / request
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  SpanKind kind = SpanKind::kOp;
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

/// \brief Process-unique trace-id source (per-element trace ids).
inline uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// \brief Process-unique span-id source.
inline uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// \brief Sampled per-batch trace context, stamped at the ingest edge.
///
/// `trace_id == 0` means unsampled: span recording is skipped but
/// `ingest_ns` (when non-zero) still drives end-to-end latency metrics.
/// `parent_span` names the span a continuation should parent to — the
/// ingest span at stamp time, then the enclosing operator span as the
/// executor descends.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  int64_t ingest_ns = 0;

  bool sampled() const { return trace_id != 0; }
};

/// \brief Per-trace critical-path breakdown (nanoseconds by span kind).
struct TraceBreakdown {
  int64_t ingest_ns = 0;
  int64_t op_ns = 0;
  int64_t queue_ns = 0;
  int64_t publish_ns = 0;
  int64_t deliver_ns = 0;
  size_t num_spans = 0;

  /// The synchronous ingest-to-publish path (see SpanKind).
  int64_t CriticalPathNs() const { return ingest_ns + op_ns; }
};

/// \brief Bounded ring buffer of completed spans. Thread-safe.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1024) : capacity_(capacity) {}

  void Record(Span span) {
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() < capacity_) {
      spans_.push_back(std::move(span));
    } else {
      spans_[next_slot_] = std::move(span);
    }
    next_slot_ = (next_slot_ + 1) % capacity_;
    ++total_;
  }

  /// \brief Snapshot of retained spans (oldest-first not guaranteed once
  /// the ring wraps).
  std::vector<Span> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  /// \brief Retained spans of one trace, ordered by start time.
  std::vector<Span> TraceSpans(uint64_t trace_id) const {
    std::vector<Span> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const Span& s : spans_) {
        if (s.trace_id == trace_id) out.push_back(s);
      }
    }
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
      return a.start_ns < b.start_ns;
    });
    return out;
  }

  /// \brief Sums the retained spans of `trace_id` by kind.
  TraceBreakdown Breakdown(uint64_t trace_id) const {
    TraceBreakdown bd;
    std::lock_guard<std::mutex> lock(mu_);
    for (const Span& s : spans_) {
      if (s.trace_id != trace_id) continue;
      ++bd.num_spans;
      switch (s.kind) {
        case SpanKind::kIngest:
          bd.ingest_ns += s.duration_ns;
          break;
        case SpanKind::kOp:
          bd.op_ns += s.duration_ns;
          break;
        case SpanKind::kQueue:
          bd.queue_ns += s.duration_ns;
          break;
        case SpanKind::kPublish:
          bd.publish_ns += s.duration_ns;
          break;
        case SpanKind::kDeliver:
          bd.deliver_ns += s.duration_ns;
          break;
      }
    }
    return bd;
  }

  /// \brief Distinct trace ids currently retained, most recent span first.
  std::vector<uint64_t> TraceIds() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint64_t> ids;
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
      if (it->trace_id == 0) continue;
      bool seen = false;
      for (uint64_t id : ids) {
        if (id == it->trace_id) {
          seen = true;
          break;
        }
      }
      if (!seen) ids.push_back(it->trace_id);
    }
    return ids;
  }

  /// \brief Total spans ever recorded (>= retained count once wrapped).
  uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  /// \brief All retained spans as a JSON array.
  std::string ToJson() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < spans_.size(); ++i) {
      if (i > 0) out << ",";
      AppendSpanJson(spans_[i], &out);
    }
    out << "]";
    return out.str();
  }

  /// \brief One trace as JSON: its spans (start-ordered) plus the
  /// critical-path breakdown by span kind.
  std::string TraceJson(uint64_t trace_id) const {
    std::vector<Span> spans = TraceSpans(trace_id);
    TraceBreakdown bd = Breakdown(trace_id);
    std::ostringstream out;
    out << "{\"trace_id\":" << trace_id << ",\"spans\":[";
    for (size_t i = 0; i < spans.size(); ++i) {
      if (i > 0) out << ",";
      AppendSpanJson(spans[i], &out);
    }
    out << "],\"breakdown\":{\"ingest_ns\":" << bd.ingest_ns
        << ",\"op_ns\":" << bd.op_ns << ",\"queue_ns\":" << bd.queue_ns
        << ",\"publish_ns\":" << bd.publish_ns
        << ",\"deliver_ns\":" << bd.deliver_ns
        << ",\"critical_path_ns\":" << bd.CriticalPathNs() << "}}";
    return out.str();
  }

 private:
  static void AppendSpanJson(const Span& s, std::ostringstream* out) {
    *out << "{\"trace_id\":" << s.trace_id << ",\"span_id\":" << s.span_id
         << ",\"parent_id\":" << s.parent_id << ",\"kind\":\""
         << SpanKindName(s.kind) << "\",\"name\":\"" << s.name
         << "\",\"start_ns\":" << s.start_ns
         << ",\"duration_ns\":" << s.duration_ns << "}";
  }

  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  size_t next_slot_ = 0;
  uint64_t total_ = 0;
};

/// \brief RAII span: records into `recorder` on destruction. Null-safe.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, std::string name, uint64_t trace_id = 0,
             uint64_t parent_id = 0, SpanKind kind = SpanKind::kOp)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      span_.trace_id = trace_id;
      span_.span_id = NextSpanId();
      span_.parent_id = parent_id;
      span_.kind = kind;
      span_.name = std::move(name);
      span_.start_ns = MonotonicNanos();
    }
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) {
      span_.duration_ns = MonotonicNanos() - span_.start_ns;
      recorder_->Record(std::move(span_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  uint64_t span_id() const { return span_.span_id; }

 private:
  TraceRecorder* recorder_;
  Span span_;
};

}  // namespace cq

#endif  // CQ_OBS_TRACE_H_

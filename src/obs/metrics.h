#ifndef CQ_OBS_METRICS_H_
#define CQ_OBS_METRICS_H_

/// \file metrics.h
/// \brief Pipeline observability: the process-wide metrics registry.
///
/// The survey's Fig. 3/Fig. 5 systems live or die by per-operator
/// throughput, state size, and event-time lag; this module is the
/// measurement substrate that makes those visible. Three instrument kinds:
///
///  - Counter: monotonically increasing u64 (records processed, drops).
///  - Gauge: signed point-in-time value (queue depth, state entries, lag).
///  - Histogram: fixed-bucket distribution with p50/p95/p99 summaries
///    (per-push processing latency).
///
/// Instruments are addressed by (family name, label set) following the
/// Prometheus naming scheme `cq_<subsystem>_<name>{label="value",...}`.
/// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and
/// returns a stable pointer; callers cache that pointer once and then
/// update it lock-free on hot paths. Exposition is available in
/// Prometheus text format (ToText) and JSON (ToJson).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"

namespace cq {

/// \brief Monotonic counter; lock-free updates.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Point-in-time signed value; lock-free updates.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Point-in-time fractional value (ratios such as observed
/// selectivity); lock-free updates.
class DoubleGauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief An ordered label set, e.g. {{"node", "window"}, {"id", "1"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// \brief Exposition format selector.
enum class MetricsFormat { kText, kJson };

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief Process-wide default registry (benches, examples).
  static MetricsRegistry& Global();

  /// \brief Returns the instrument for (family, labels), creating it on
  /// first use. Pointers remain valid for the registry's lifetime.
  Counter* GetCounter(const std::string& family, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& family, const LabelSet& labels = {});
  DoubleGauge* GetDoubleGauge(const std::string& family,
                              const LabelSet& labels = {});
  /// \brief `bounds` are only consulted when the instrument is created;
  /// empty uses Histogram::DefaultLatencyBoundsUs().
  Histogram* GetHistogram(const std::string& family,
                          const LabelSet& labels = {},
                          std::vector<double> bounds = {});

  /// \brief Prometheus text exposition format (one # TYPE line per family).
  std::string ToText() const;

  /// \brief JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {"name{labels}": {"count","sum","p50","p95","p99"}, ...}}.
  std::string ToJson() const;

  std::string Dump(MetricsFormat format) const {
    return format == MetricsFormat::kJson ? ToJson() : ToText();
  }

  /// \brief Number of registered instruments (tests).
  size_t size() const;

  /// \brief Exposition lint: validates every registered family and label
  /// against Prometheus naming rules — metric names match
  /// `[a-zA-Z_:][a-zA-Z0-9_:]*`, label keys match `[a-zA-Z_][a-zA-Z0-9_]*`,
  /// label values carry no `"`, `\` or newline (RenderLabels does not
  /// escape), and every series of one family uses the same label-key set.
  /// Returns one human-readable problem per violation; empty = clean.
  std::vector<std::string> LintProblems() const;

  /// \brief Renders `{k="v",...}` (empty string for no labels).
  static std::string RenderLabels(const LabelSet& labels);

 private:
  // family -> rendered label string -> instrument. Grouping by family keeps
  // ToText's one-TYPE-line-per-family invariant cheap.
  template <typename T>
  using FamilyMap = std::map<std::string, std::map<std::string, std::unique_ptr<T>>>;

  /// Records `labels` (keys, key signature, value lint) for `family` so
  /// LintProblems can check naming without re-parsing rendered strings.
  void NoteLabelsLocked(const std::string& family, const LabelSet& labels);

  mutable std::mutex mu_;
  FamilyMap<Counter> counters_;
  FamilyMap<Gauge> gauges_;
  FamilyMap<DoubleGauge> double_gauges_;
  FamilyMap<Histogram> histograms_;

  /// Lint bookkeeping: family -> set of label-key signatures seen, plus any
  /// value-level problems captured at registration time.
  std::map<std::string, std::vector<LabelSet>> family_label_sets_;
};

}  // namespace cq

#endif  // CQ_OBS_METRICS_H_

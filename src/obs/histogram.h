#ifndef CQ_OBS_HISTOGRAM_H_
#define CQ_OBS_HISTOGRAM_H_

/// \file histogram.h
/// \brief Fixed-bucket latency histogram with percentile summaries.
///
/// The measurement substrate of the observability layer (metrics.h): a
/// cumulative-style histogram over a fixed, sorted set of upper bucket
/// bounds plus an implicit +Inf overflow bucket. Observations and reads are
/// lock-free (relaxed atomics): concurrent Observe() calls never block, and
/// snapshots are approximate under concurrency in the same way Prometheus
/// client histograms are. Percentiles are estimated by linear interpolation
/// within the containing bucket, so their error is bounded by bucket width.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace cq {

class Histogram {
 public:
  /// \brief `bounds` are upper bucket limits, strictly increasing; a final
  /// +Inf bucket is always appended. Empty bounds gives a single +Inf
  /// bucket (count/sum only).
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        counts_(std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1)) {
    for (size_t i = 0; i < bounds_.size() + 1; ++i) counts_[i].store(0);
  }

  /// \brief Default bounds for latency-in-microseconds histograms: a 1-2-5
  /// ladder from 1us to 10s.
  static std::vector<double> DefaultLatencyBoundsUs() {
    return {1,     2,     5,      10,     20,     50,      100,    200,
            500,   1000,  2000,   5000,   10000,  20000,   50000,  100000,
            2e5,   5e5,   1e6,    2e6,    5e6,    1e7};
  }

  void Observe(double value) {
    size_t i = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
               bounds_.begin();
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // fetch_add on atomic<double> is a CAS loop pre-C++20 hardware support;
    // this is a cold enough path (one add per observation) for that.
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  const std::vector<double>& bounds() const { return bounds_; }

  /// \brief Per-bucket (non-cumulative) counts; index bounds_.size() is the
  /// +Inf overflow bucket.
  std::vector<uint64_t> BucketCounts() const {
    std::vector<uint64_t> out(bounds_.size() + 1);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = counts_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// \brief Estimated quantile (q in [0,1]) by linear interpolation within
  /// the containing bucket. Returns 0 when empty; observations landing in
  /// the +Inf bucket clamp to the largest finite bound.
  double Percentile(double q) const {
    std::vector<uint64_t> buckets = BucketCounts();
    uint64_t total = 0;
    for (uint64_t c : buckets) total += c;
    if (total == 0) return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    double rank = q * static_cast<double>(total);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      uint64_t next = cumulative + buckets[i];
      if (static_cast<double>(next) >= rank && buckets[i] > 0) {
        double lo = i == 0 ? 0.0 : bounds_[i - 1];
        if (i == bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
        double hi = bounds_[i];
        double within = (rank - static_cast<double>(cumulative)) /
                        static_cast<double>(buckets[i]);
        return lo + (hi - lo) * within;
      }
      cumulative = next;
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace cq

#endif  // CQ_OBS_HISTOGRAM_H_

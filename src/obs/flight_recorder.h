#ifndef CQ_OBS_FLIGHT_RECORDER_H_
#define CQ_OBS_FLIGHT_RECORDER_H_

/// \file flight_recorder.h
/// \brief FlightRecorder: a lock-light fixed-size ring of structured events.
///
/// Metrics answer "how much", traces answer "where did the time go"; the
/// flight recorder answers "what happened just before things went wrong".
/// Control-plane transitions — barrier begin/align/commit, recovery,
/// query registration/teardown, fault injections, channel stalls — record
/// one bounded event each into a preallocated ring. The ring is dumpable as
/// JSON on demand (the /flightrecorder endpoint) and automatically on
/// crash/abort paths in the ft layer (FaultInjector dumps it to stderr
/// before _exit, so a post-mortem sees the last control-plane events the
/// way a black box records the last minutes of a flight).
///
/// Header-only so low layers (runtime, queue, the header-only fault
/// injector) can record without linking against the obs library. Recording
/// takes one short mutex hold (copy a few small fields into a preallocated
/// slot); these are control-plane events at checkpoint/registration
/// cadence, not per-record hot-path events.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cq {

/// \brief One structured flight-recorder event.
struct FlightEvent {
  int64_t ns = 0;        // MonotonicNanos at record time
  uint64_t seq = 0;      // process-wide record sequence number
  std::string category;  // e.g. "barrier", "recovery", "service", "fault"
  std::string label;     // e.g. "begin", "align", "commit", "register"
  std::string detail;    // free-form context (query sql, point name, ...)
  int64_t a = 0;         // category-specific (epoch, query id, ...)
  int64_t b = 0;         // category-specific (worker index, status code, ...)
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 4096) : capacity_(capacity) {
    events_.reserve(capacity_);
  }
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// \brief Process-wide recorder: every subsystem records into it, the
  /// crash path dumps it.
  static FlightRecorder& Global() {
    static FlightRecorder* g = new FlightRecorder();
    return *g;
  }

  void Record(std::string category, std::string label, std::string detail = "",
              int64_t a = 0, int64_t b = 0) {
    FlightEvent ev;
    ev.ns = MonotonicNanos();
    ev.category = std::move(category);
    ev.label = std::move(label);
    ev.detail = std::move(detail);
    ev.a = a;
    ev.b = b;
    std::lock_guard<std::mutex> lock(mu_);
    ev.seq = ++total_;
    if (events_.size() < capacity_) {
      events_.push_back(std::move(ev));
    } else {
      events_[next_slot_] = std::move(ev);
    }
    next_slot_ = (next_slot_ + 1) % capacity_;
  }

  /// \brief Retained events in record order (oldest first).
  std::vector<FlightEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) return events_;
    // Full ring: next_slot_ holds the oldest event.
    std::vector<FlightEvent> out;
    out.reserve(events_.size());
    for (size_t i = next_slot_; i < events_.size(); ++i) out.push_back(events_[i]);
    for (size_t i = 0; i < next_slot_; ++i) out.push_back(events_[i]);
    return out;
  }

  /// \brief Total events ever recorded (>= retained once wrapped).
  uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  /// \brief Drops every retained event (test isolation).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    next_slot_ = 0;
  }

  /// \brief Retained events as a JSON array, oldest first.
  std::string ToJson() const {
    std::vector<FlightEvent> events = Snapshot();
    std::ostringstream out;
    out << "[";
    for (size_t i = 0; i < events.size(); ++i) {
      if (i > 0) out << ",";
      const FlightEvent& ev = events[i];
      out << "{\"seq\":" << ev.seq << ",\"ns\":" << ev.ns << ",\"category\":\""
          << JsonEscape(ev.category) << "\",\"label\":\""
          << JsonEscape(ev.label) << "\",\"detail\":\""
          << JsonEscape(ev.detail) << "\",\"a\":" << ev.a << ",\"b\":" << ev.b
          << "}";
    }
    out << "]";
    return out.str();
  }

  /// \brief Crash-path dump: writes the ring to stderr framed by BEGIN/END
  /// markers so a harness (or a human) can recover it from a dead process's
  /// captured output. Uses stdio only — safe right before _exit.
  void DumpToStderr(const char* reason) const {
    std::string json = ToJson();
    std::fprintf(stderr, "CQ_FLIGHT_RECORDER_BEGIN reason=%s\n%s\nCQ_FLIGHT_RECORDER_END\n",
                 reason, json.c_str());
    std::fflush(stderr);
  }

 private:
  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightEvent> events_;
  size_t next_slot_ = 0;
  uint64_t total_ = 0;
};

}  // namespace cq

#endif  // CQ_OBS_FLIGHT_RECORDER_H_

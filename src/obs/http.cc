#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace cq {

HttpEndpoint::~HttpEndpoint() { Stop(); }

void HttpEndpoint::AddHandler(std::string path, std::string content_type,
                              Handler handler) {
  routes_[std::move(path)] = Route{std::move(content_type),
                                   std::move(handler)};
}

Status HttpEndpoint::Start(uint16_t port) {
  if (listener_ >= 0) return Status::Internal("endpoint already started");
  listener_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) return Status::IOError("socket: " +
                                            std::string(strerror(errno)));
  int one = 1;
  setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener_, SOMAXCONN) < 0) {
    Status st = Status::IOError("bind/listen: " +
                                std::string(strerror(errno)));
    close(listener_);
    listener_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpEndpoint::Stop() {
  if (listener_ < 0) return;
  // shutdown() wakes the blocked accept(); close() alone does not on Linux.
  shutdown(listener_, SHUT_RDWR);
  close(listener_);
  listener_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpEndpoint::AcceptLoop() {
  while (true) {
    int fd = accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    // The endpoint serves one scraper at a time on this thread. A scraper
    // that connects and then stops reading (or never sends a request) must
    // not wedge the thread — bound every socket operation.
    timeval timeout{};
    timeout.tv_sec = 5;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ServeOne(fd);
    close(fd);
  }
}

namespace {

void WriteAll(int fd, const std::string& data) {
  const char* p = data.data();
  size_t len = data.size();
  while (len > 0) {
    ssize_t n = write(fd, p, len);
    if (n < 0 && errno == EINTR) continue;
    // A stalled peer trips SO_SNDTIMEO (EAGAIN) — abandon the response
    // rather than block the accept thread forever.
    if (n <= 0) return;
    p += n;
    len -= static_cast<size_t>(n);
  }
}

void WriteResponse(int fd, const char* status_line,
                   const std::string& content_type, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status_line;
  out += "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n";
  out += body;
  WriteAll(fd, out);
}

}  // namespace

void HttpEndpoint::ServeOne(int fd) {
  // Read until the end of the request head (or 8 KiB, whichever first);
  // only the request line matters.
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
    if (req.find("\r\n") != std::string::npos &&
        req.find("GET ") != 0) {
      break;  // non-GET: no body expected that we care about
    }
  }
  size_t eol = req.find("\r\n");
  if (eol == std::string::npos) eol = req.size();
  std::string line = req.substr(0, eol);
  if (line.rfind("GET ", 0) != 0) {
    WriteResponse(fd, "405 Method Not Allowed", "text/plain",
                  "GET only\n");
    return;
  }
  size_t path_end = line.find(' ', 4);
  std::string path = line.substr(4, path_end == std::string::npos
                                        ? std::string::npos
                                        : path_end - 4);
  // Strip any query string: /traces?limit=5 routes as /traces.
  size_t q = path.find('?');
  if (q != std::string::npos) path.resize(q);
  auto it = routes_.find(path);
  if (it == routes_.end()) {
    std::string known = "not found; known paths:\n";
    for (const auto& [p, r] : routes_) known += "  " + p + "\n";
    WriteResponse(fd, "404 Not Found", "text/plain", known);
    return;
  }
  WriteResponse(fd, "200 OK", it->second.content_type, it->second.handler());
}

}  // namespace cq

#ifndef CQ_OBS_HTTP_H_
#define CQ_OBS_HTTP_H_

/// \file http.h
/// \brief HttpEndpoint: a minimal embedded HTTP/1.0 GET server for
/// observability exposition.
///
/// Production streaming systems expose their observability plane over HTTP
/// (Prometheus scrape endpoints, Flink's REST API). This is the smallest
/// honest version of that: callers register path handlers — each a function
/// producing a response body on demand — and Start() binds a loopback
/// listener whose accept thread serves one GET at a time. Handlers run on
/// the accept thread, so they must be internally synchronised (the metrics
/// registry, trace recorder and flight recorder all are).
///
/// Deliberately NOT a web framework: GET only, no keep-alive, no TLS,
/// loopback only. It exists so `curl localhost:PORT/metrics` works against
/// a running query server and so CI can smoke-test the exposition surface.

#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"

namespace cq {

class HttpEndpoint {
 public:
  /// Produces a response body at request time.
  using Handler = std::function<std::string()>;

  HttpEndpoint() = default;
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// \brief Registers `handler` for exact-match GET `path` (e.g.
  /// "/metrics") with the given Content-Type. Call before Start().
  void AddHandler(std::string path, std::string content_type, Handler handler);

  /// \brief Binds 127.0.0.1:`port` (0 = kernel-assigned; see port()) and
  /// starts the accept thread.
  Status Start(uint16_t port);

  /// \brief The bound port (after Start).
  uint16_t port() const { return port_; }

  /// \brief Closes the listener and joins the accept thread. Idempotent.
  void Stop();

  bool running() const { return listener_ >= 0; }

 private:
  void AcceptLoop();
  void ServeOne(int fd);

  struct Route {
    std::string content_type;
    Handler handler;
  };

  std::map<std::string, Route> routes_;
  int listener_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace cq

#endif  // CQ_OBS_HTTP_H_

#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace cq {

namespace {

/// Formats a double compactly: integers without a fraction, otherwise
/// shortest round-trip-ish representation.
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// JSON string escaping for metric ids (they contain `{`, `"` and `=`).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string MetricsRegistry::RenderLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += "\"";
  }
  out += "}";
  return out;
}

void MetricsRegistry::NoteLabelsLocked(const std::string& family,
                                       const LabelSet& labels) {
  std::vector<LabelSet>& seen = family_label_sets_[family];
  for (const LabelSet& s : seen) {
    if (s == labels) return;
  }
  seen.push_back(labels);
}

Counter* MetricsRegistry::GetCounter(const std::string& family,
                                     const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteLabelsLocked(family, labels);
  auto& slot = counters_[family][RenderLabels(labels)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& family,
                                 const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteLabelsLocked(family, labels);
  auto& slot = gauges_[family][RenderLabels(labels)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

DoubleGauge* MetricsRegistry::GetDoubleGauge(const std::string& family,
                                             const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteLabelsLocked(family, labels);
  auto& slot = double_gauges_[family][RenderLabels(labels)];
  if (slot == nullptr) slot = std::make_unique<DoubleGauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& family,
                                         const LabelSet& labels,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  NoteLabelsLocked(family, labels);
  auto& slot = histograms_[family][RenderLabels(labels)];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsUs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, series] : counters_) n += series.size();
  for (const auto& [name, series] : gauges_) n += series.size();
  for (const auto& [name, series] : double_gauges_) n += series.size();
  for (const auto& [name, series] : histograms_) n += series.size();
  return n;
}

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    char c = name[i];
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool ValidLabelKey(const std::string& key) {
  if (key.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(key[0])) return false;
  for (size_t i = 1; i < key.size(); ++i) {
    char c = key[i];
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string KeySignature(const LabelSet& labels) {
  std::string sig;
  for (const auto& [k, v] : labels) {
    if (!sig.empty()) sig += ",";
    sig += k;
  }
  return sig;
}

}  // namespace

std::vector<std::string> MetricsRegistry::LintProblems() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> problems;
  for (const auto& [family, label_sets] : family_label_sets_) {
    if (!ValidMetricName(family)) {
      problems.push_back("metric name '" + family +
                         "' violates [a-zA-Z_:][a-zA-Z0-9_:]*");
    }
    std::string first_sig;
    bool have_sig = false;
    for (const LabelSet& labels : label_sets) {
      for (const auto& [key, value] : labels) {
        if (!ValidLabelKey(key)) {
          problems.push_back("label key '" + key + "' of '" + family +
                             "' violates [a-zA-Z_][a-zA-Z0-9_]*");
        }
        if (value.find('"') != std::string::npos ||
            value.find('\\') != std::string::npos ||
            value.find('\n') != std::string::npos) {
          problems.push_back("label value '" + value + "' of '" + family +
                             "' contains an unescapable character");
        }
      }
      std::string sig = KeySignature(labels);
      if (!have_sig) {
        first_sig = sig;
        have_sig = true;
      } else if (sig != first_sig) {
        problems.push_back("family '" + family +
                           "' mixes label-key sets {" + first_sig + "} and {" +
                           sig + "}");
      }
    }
  }
  return problems;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [family, series] : counters_) {
    out << "# TYPE " << family << " counter\n";
    for (const auto& [labels, counter] : series) {
      out << family << labels << " " << counter->value() << "\n";
    }
  }
  for (const auto& [family, series] : gauges_) {
    out << "# TYPE " << family << " gauge\n";
    for (const auto& [labels, gauge] : series) {
      out << family << labels << " " << gauge->value() << "\n";
    }
  }
  for (const auto& [family, series] : double_gauges_) {
    out << "# TYPE " << family << " gauge\n";
    for (const auto& [labels, gauge] : series) {
      out << family << labels << " " << FormatDouble(gauge->value()) << "\n";
    }
  }
  for (const auto& [family, series] : histograms_) {
    out << "# TYPE " << family << " histogram\n";
    for (const auto& [labels, hist] : series) {
      // Cumulative buckets with the `le` label, Prometheus style.
      std::vector<uint64_t> buckets = hist->BucketCounts();
      const std::vector<double>& bounds = hist->bounds();
      uint64_t cumulative = 0;
      for (size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        std::string le =
            i == bounds.size() ? "+Inf" : FormatDouble(bounds[i]);
        std::string bucket_labels = labels;
        if (bucket_labels.empty()) {
          bucket_labels = "{le=\"" + le + "\"}";
        } else {
          bucket_labels.back() = ',';  // replace '}' with ','
          bucket_labels += "le=\"" + le + "\"}";
        }
        out << family << "_bucket" << bucket_labels << " " << cumulative
            << "\n";
      }
      out << family << "_sum" << labels << " " << FormatDouble(hist->sum())
          << "\n";
      out << family << "_count" << labels << " " << hist->count() << "\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [family, series] : counters_) {
    for (const auto& [labels, counter] : series) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(family + labels) << "\":" << counter->value();
    }
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [family, series] : gauges_) {
    for (const auto& [labels, gauge] : series) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(family + labels) << "\":" << gauge->value();
    }
  }
  for (const auto& [family, series] : double_gauges_) {
    for (const auto& [labels, gauge] : series) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(family + labels)
          << "\":" << FormatDouble(gauge->value());
    }
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [family, series] : histograms_) {
    for (const auto& [labels, hist] : series) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(family + labels) << "\":{"
          << "\"count\":" << hist->count()
          << ",\"sum\":" << FormatDouble(hist->sum())
          << ",\"mean\":" << FormatDouble(hist->mean())
          << ",\"p50\":" << FormatDouble(hist->Percentile(0.50))
          << ",\"p95\":" << FormatDouble(hist->Percentile(0.95))
          << ",\"p99\":" << FormatDouble(hist->Percentile(0.99)) << "}";
    }
  }
  out << "}}";
  return out.str();
}

}  // namespace cq

#ifndef CQ_FT_CHECKPOINTABLE_H_
#define CQ_FT_CHECKPOINTABLE_H_

/// \file checkpointable.h
/// \brief The single checkpoint/restore traversal every pipeline exposes.
///
/// Before the ft subsystem, the synchronous PipelineExecutor and the
/// threaded ParallelPipeline each hand-rolled their own checkpoint image
/// format and restore walk. Checkpointable unifies them: a pipeline is a
/// sequence of *state slots* (one per operator for the executor; one per
/// worker for the parallel pipeline, each worker slot itself a blob list of
/// its operators), and the CheckpointCoordinator snapshots, diffs, persists,
/// and restores slots without knowing which pipeline shape it is driving.
///
/// Header-only (interface + inline codec) so src/dataflow can implement it
/// without a link-time dependency on the ft library.

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "types/column.h"
#include "types/serde.h"

namespace cq::ft {

/// \brief A pipeline whose state can be snapshotted and restored as an
/// ordered list of opaque slot blobs.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// \brief Brings the pipeline to an aligned point: all accepted input
  /// fully processed, no in-flight work. Called before SnapshotSlots /
  /// RestoreSlots by stop-the-world checkpoints; barrier-based checkpoints
  /// align in-band instead.
  virtual Status QuiesceForSnapshot() { return Status::OK(); }

  /// \brief Serializes every state slot, in a stable order.
  virtual Result<std::vector<std::string>> SnapshotSlots() = 0;

  /// \brief Restores from a SnapshotSlots image. Slot count must match the
  /// pipeline's shape (node count / parallelism).
  virtual Status RestoreSlots(const std::vector<std::string>& slots) = 0;
};

/// \brief A pipeline that supports in-band epoch barriers (Chandy-Lamport
/// style aligned snapshots without quiescing): the coordinator injects a
/// barrier at the source side, each internal consumer snapshots its slot
/// when the barrier reaches it, and processing continues immediately.
class BarrierInjectable {
 public:
  /// \brief Invoked (possibly from a worker thread) with one slot's
  /// snapshot when the barrier for `epoch` passes it.
  using BarrierHandler = std::function<void(uint64_t epoch, size_t slot,
                                            Result<std::string> snapshot)>;

  virtual ~BarrierInjectable() = default;

  /// \brief Registers the per-slot snapshot callback. Must be set before
  /// the pipeline starts.
  virtual void SetBarrierHandler(BarrierHandler handler) = 0;

  /// \brief Injects the epoch barrier after all previously sent records —
  /// the snapshot for `epoch` reflects exactly the pre-barrier prefix.
  virtual Status InjectBarrier(uint64_t epoch) = 0;

  /// \brief Number of slots the handler will report per epoch.
  virtual size_t BarrierFanIn() const = 0;
};

/// \brief Appends a length-prefixed blob list: [u32 n][string]*n.
inline void EncodeBlobList(const std::vector<std::string>& blobs,
                           std::string* out) {
  EncodeU32(static_cast<uint32_t>(blobs.size()), out);
  for (const auto& b : blobs) EncodeString(b, out);
}

/// \brief Decodes a blob list from the front of `in`, advancing it.
inline Result<std::vector<std::string>> DecodeBlobList(std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint32_t n, DecodeU32(in));
  std::vector<std::string> blobs;
  blobs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CQ_ASSIGN_OR_RETURN(std::string b, DecodeString(in));
    blobs.push_back(std::move(b));
  }
  return blobs;
}

/// \brief Appends a column-set image: [u32 n][column]*n — the columnar
/// analogue of EncodeBlobList. State that lives as typed column vectors
/// (columnar batches in flight at a barrier, buffered columnar segments)
/// checkpoints through this instead of re-materialising rows first.
inline void EncodeColumnSetImage(const std::vector<Column>& columns,
                                 std::string* out) {
  EncodeU32(static_cast<uint32_t>(columns.size()), out);
  for (const auto& c : columns) EncodeColumn(c, out);
}

/// \brief Decodes a column-set image from the front of `in`, advancing it.
inline Result<std::vector<Column>> DecodeColumnSetImage(std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint32_t n, DecodeU32(in));
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CQ_ASSIGN_OR_RETURN(Column c, DecodeColumn(in));
    columns.push_back(std::move(c));
  }
  return columns;
}

/// \brief Appends an offset map: [u32 m]([string key][i64 offset])*m.
inline void EncodeOffsetMap(const std::map<std::string, int64_t>& offsets,
                            std::string* out) {
  EncodeU32(static_cast<uint32_t>(offsets.size()), out);
  for (const auto& [name, offset] : offsets) {
    EncodeString(name, out);
    EncodeI64(offset, out);
  }
}

/// \brief Decodes an offset map from the front of `in`, advancing it.
inline Result<std::map<std::string, int64_t>> DecodeOffsetMap(
    std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint32_t m, DecodeU32(in));
  std::map<std::string, int64_t> offsets;
  for (uint32_t i = 0; i < m; ++i) {
    CQ_ASSIGN_OR_RETURN(std::string name, DecodeString(in));
    CQ_ASSIGN_OR_RETURN(int64_t offset, DecodeI64(in));
    offsets[std::move(name)] = offset;
  }
  return offsets;
}

/// \brief The one on-the-wire checkpoint image format: slot blob list
/// followed by source offsets. Used by PipelineExecutor::Checkpoint,
/// ParallelPipeline::Checkpoint, and the SnapshotStore payloads.
inline std::string EncodeCheckpointImage(
    const std::vector<std::string>& slots,
    const std::map<std::string, int64_t>& source_offsets) {
  std::string out;
  EncodeBlobList(slots, &out);
  EncodeOffsetMap(source_offsets, &out);
  return out;
}

struct CheckpointImage {
  std::vector<std::string> slots;
  std::map<std::string, int64_t> source_offsets;
};

inline Result<CheckpointImage> DecodeCheckpointImage(std::string_view image) {
  CheckpointImage out;
  CQ_ASSIGN_OR_RETURN(out.slots, DecodeBlobList(&image));
  CQ_ASSIGN_OR_RETURN(out.source_offsets, DecodeOffsetMap(&image));
  return out;
}

}  // namespace cq::ft

#endif  // CQ_FT_CHECKPOINTABLE_H_

#ifndef CQ_FT_FENCE_H_
#define CQ_FT_FENCE_H_

/// \file fence.h
/// \brief Effectively-once output: epoch-fenced sinks over a durable log.
///
/// Checkpoint + replay alone gives at-least-once at the pipeline edge: the
/// replayed window re-fires the sink. The fence closes that gap the way
/// transactional sinks do in production systems, with a two-part protocol:
///
///  - EpochSinkOperator buffers its output instead of emitting it. The
///    pending buffer is part of the operator's checkpoint state, so a
///    snapshot at epoch N carries exactly the output of the (N-1, N]
///    window.
///  - Once epoch N is durable, the coordinator's publish hook flushes each
///    sink's buffer to the DurableOutputLog as file `out-<N>-<part>` —
///    written atomically, and *idempotent by filename*: publishing an epoch
///    that is already on disk is a no-op.
///
/// Every crash position is then safe: before the manifest commit, recovery
/// rolls back to epoch N-1 and the window replays into a fresh buffer;
/// after the commit but before the publish, the restored buffer re-publishes
/// the missing file; after the publish, the re-publish hits the existing
/// file and skips. Replayed batches can never double-fire the output.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/operator.h"

namespace cq::ft {

/// \brief Idempotent per-epoch output files under one directory.
class DurableOutputLog {
 public:
  explicit DurableOutputLog(std::string dir);

  /// \brief Creates the log directory (and parents) if missing.
  Status Init();

  /// \brief Durably writes `records` as epoch `epoch`, part `part`
  /// (tmp + fsync + atomic rename). If the epoch/part file already exists
  /// the call is a no-op — the publish fence.
  Status Publish(uint64_t epoch, size_t part,
                 const std::vector<std::string>& records);

  /// \brief True when epoch/part has been published.
  bool Published(uint64_t epoch, size_t part) const;

  /// \brief All published records, ordered by (epoch, part) then record
  /// order — the externally observable output of the pipeline.
  Result<std::vector<std::string>> ReadAll() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string Path(uint64_t epoch, size_t part) const;
  std::string dir_;
};

/// \brief Terminal sink operator that buffers output until its epoch is
/// durable, then publishes through the DurableOutputLog.
///
/// `part` distinguishes parallel sink instances (worker index); each
/// publishes its own per-epoch file.
class EpochSinkOperator : public Operator {
 public:
  EpochSinkOperator(std::string name, DurableOutputLog* log, size_t part);

  Status ProcessElement(size_t port, const StreamElement& element,
                        const OperatorContext& ctx, Collector* out) override;

  /// \brief Pending buffer travels inside the checkpoint image — that is
  /// what makes the crash window between manifest commit and publish safe.
  Result<std::string> SnapshotState() const override;
  Status RestoreState(std::string_view snapshot) override;
  size_t StateSize() const override { return pending_.size(); }
  bool IsStateless() const override { return false; }

  /// \brief Publishes the pending buffer as `epoch` and clears it. Always
  /// clears on success, including when the file already existed (a restored
  /// buffer whose epoch was already published must not leak into the next
  /// epoch).
  Status PublishEpoch(uint64_t epoch);

  /// \brief Records buffered since the last publish (tests/diagnostics).
  const std::vector<std::string>& pending() const { return pending_; }

  /// \brief Encoding used for published records: [i64 ts][tuple bytes].
  static std::string EncodeRecord(const StreamElement& element);

 private:
  DurableOutputLog* log_;
  size_t part_;
  std::vector<std::string> pending_;
};

}  // namespace cq::ft

#endif  // CQ_FT_FENCE_H_

#ifndef CQ_FT_FENCE_H_
#define CQ_FT_FENCE_H_

/// \file fence.h
/// \brief Effectively-once output: epoch-fenced sinks over a durable log,
/// two-phase-commit style.
///
/// Checkpoint + replay alone gives at-least-once at the pipeline edge: the
/// replayed window re-fires the sink. The fence closes that gap the way
/// transactional sinks do in production systems (Flink's 2PC sinks,
/// MillWheel's idempotent production), with a staged two-phase protocol:
///
///  - Phase 1 (prepare): EpochSinkOperator buffers its output instead of
///    emitting it. At snapshot time the pending buffer is serialized *into
///    the checkpoint image* as a self-identifying staged frame, and — once
///    every node of the pipeline has captured — the live buffer is dropped
///    (OnSnapshotStaged). From that moment the buffer belongs to the epoch
///    image, not to operator memory, so post-barrier records accumulating
///    concurrently can never leak into epoch N.
///  - Phase 2 (commit): when the epoch's manifest commits, the coordinator
///    reads the slots back from the durable SnapshotStore, extracts the
///    staged frames, and publishes each to the DurableOutputLog as file
///    `out-<N>-<part>` — written atomically, and *idempotent by filename*:
///    publishing an epoch that is already on disk is a no-op.
///
/// Every crash position is then safe: before the manifest commit, recovery
/// rolls back to epoch N-1 and the window replays into a fresh buffer;
/// after the commit but before the publish, recovery re-reads the staged
/// frames from the same durable image and publishes the missing files;
/// after the publish, the re-publish hits the existing files and skips.
/// Replayed batches can never double-fire the output. An epoch that fails
/// *between* staging and manifest commit is aborted: the staged buffer died
/// with the discarded image, so the caller must recover from the previous
/// durable epoch (which replays those records).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/operator.h"

namespace cq::ft {

/// \brief Idempotent per-epoch output files under one directory.
class DurableOutputLog {
 public:
  explicit DurableOutputLog(std::string dir);

  /// \brief Creates the log directory (and parents) if missing.
  Status Init();

  /// \brief Durably writes `records` as epoch `epoch`, part `part`
  /// (tmp + fsync + atomic rename). If the epoch/part file already exists
  /// the call is a no-op — the publish fence.
  Status Publish(uint64_t epoch, size_t part,
                 const std::vector<std::string>& records);

  /// \brief True when epoch/part has been published.
  bool Published(uint64_t epoch, size_t part) const;

  /// \brief All published records, ordered by (epoch, part) then record
  /// order — the externally observable output of the pipeline.
  Result<std::vector<std::string>> ReadAll() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string Path(uint64_t epoch, size_t part) const;
  std::string dir_;
};

/// \brief A staged sink buffer extracted from a checkpoint image.
struct StagedSinkFrame {
  size_t part = 0;
  std::vector<std::string> records;
};

/// \brief Tries to parse one checkpoint slot as an EpochSinkOperator staged
/// frame (magic-tagged, fully consumed); nullopt when the slot is anything
/// else.
std::optional<StagedSinkFrame> TryDecodeStagedFrame(std::string_view slot);

/// \brief Scans a checkpoint image's slots for staged sink frames, looking
/// one level deep into worker slots (blob lists of node states) so both the
/// synchronous executor's per-node layout and the parallel pipeline's
/// per-worker layout are covered.
std::vector<StagedSinkFrame> ExtractStagedFrames(
    const std::vector<std::string>& slots);

/// \brief Publishes every staged frame found in `slots` as `epoch` through
/// `log` — the phase-2 commit, run against slots read back from the durable
/// SnapshotStore (or just restored by recovery).
Status PublishStagedFrames(const std::vector<std::string>& slots,
                           uint64_t epoch, DurableOutputLog* log);

/// \brief Terminal sink operator that buffers output until its epoch is
/// durable; the epoch's buffer travels inside the snapshot image and is
/// published from there.
///
/// `part` distinguishes parallel sink instances (worker index); each
/// publishes its own per-epoch file.
class EpochSinkOperator : public Operator {
 public:
  EpochSinkOperator(std::string name, DurableOutputLog* log, size_t part);

  Status ProcessElement(size_t port, const StreamElement& element,
                        const OperatorContext& ctx, Collector* out) override;

  /// \brief Serializes the pending buffer as a magic-tagged staged frame —
  /// self-identifying so the coordinator can find it among opaque slots.
  Result<std::string> SnapshotState() const override;

  /// \brief Validates the staged frame and restarts with an EMPTY live
  /// buffer: the staged records belong to the restored epoch's image and
  /// are republished from it by recovery; restoring them live would leak
  /// them into epoch N+1.
  Status RestoreState(std::string_view snapshot) override;

  /// \brief Phase-1 handoff: once the whole pipeline has snapshotted, the
  /// image owns the buffer; drop the live copy (fault point `fence.stage`).
  Status OnSnapshotStaged() override;

  size_t StateSize() const override { return pending_.size(); }
  bool IsStateless() const override { return false; }

  size_t part() const { return part_; }

  /// \brief Records buffered since the last staging (tests/diagnostics).
  const std::vector<std::string>& pending() const { return pending_; }

  /// \brief Encoding used for published records: [i64 ts][tuple bytes].
  static std::string EncodeRecord(const StreamElement& element);

 private:
  DurableOutputLog* log_;
  size_t part_;
  std::vector<std::string> pending_;
};

}  // namespace cq::ft

#endif  // CQ_FT_FENCE_H_

#ifndef CQ_FT_BARRIER_H_
#define CQ_FT_BARRIER_H_

/// \file barrier.h
/// \brief BarrierAligner: collects per-slot barrier snapshots into complete
/// epochs.
///
/// In a barrier checkpoint each worker reports its slot's snapshot when the
/// epoch barrier reaches the front of its input stream — from its own
/// thread, in no particular order. The aligner is the meeting point: it
/// buffers reports per epoch and fires the completion callback exactly once
/// when all `fan_in` slots have reported (or with the first error). The
/// CheckpointCoordinator installs it as the pipeline's BarrierHandler and
/// persists the assembled epoch from the completion callback.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ft/checkpointable.h"

namespace cq::ft {

/// \brief Thread-safe fan-in collector for barrier snapshots.
class BarrierAligner {
 public:
  /// Invoked once per epoch, from the thread reporting the last slot.
  using CompletionFn =
      std::function<void(uint64_t epoch, Result<std::vector<std::string>>)>;

  BarrierAligner(size_t fan_in, CompletionFn on_complete);

  /// \brief Records slot `slot`'s snapshot for `epoch`; fires the
  /// completion callback when the epoch is complete. Duplicate or
  /// out-of-range reports turn the epoch into an error.
  void Report(uint64_t epoch, size_t slot, Result<std::string> snapshot);

  /// \brief Adapter matching BarrierInjectable::BarrierHandler.
  BarrierInjectable::BarrierHandler AsHandler();

  /// \brief Epochs currently mid-alignment (diagnostics).
  size_t pending_epochs() const;

 private:
  struct Pending {
    std::vector<std::string> slots;
    std::vector<bool> seen;
    size_t reported = 0;
    Status error;  // first failure, surfaced at completion
  };

  const size_t fan_in_;
  CompletionFn on_complete_;
  mutable std::mutex mu_;
  std::map<uint64_t, Pending> pending_;
};

}  // namespace cq::ft

#endif  // CQ_FT_BARRIER_H_

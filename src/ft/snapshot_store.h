#ifndef CQ_FT_SNAPSHOT_STORE_H_
#define CQ_FT_SNAPSHOT_STORE_H_

/// \file snapshot_store.h
/// \brief Durable checkpoint storage: per-epoch state files plus an
/// atomically committed manifest.
///
/// Layout inside the store directory:
///
///   epoch-<N>.full   blob list of every state slot (CRC-framed)
///   epoch-<N>.delta  WAL of changed slots vs. the previous epoch, ending
///                    in a commit record (torn tails are detected exactly
///                    as in the KV store's WAL)
///   manifest-<N>     epoch metadata: state-file kind, delta base, source
///                    offsets, watermark (CRC-framed, written tmp+rename)
///
/// The manifest rename IS the commit point: a crash before it leaves the
/// previous epoch authoritative; a crash after it makes epoch N
/// authoritative. Readers pick the largest epoch whose manifest parses AND
/// whose state chain (delta files back to the nearest full) is complete,
/// falling back to older epochs otherwise — so a torn write can delay
/// recovery by one epoch but never corrupt it.
///
/// Deltas reuse the KV store's WalRecord framing (key = slot index, value =
/// slot blob) so the torn-tail handling is the battle-tested one; a
/// terminal commit record distinguishes "complete delta" from "crashed
/// mid-write".

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace cq::ft {

struct SnapshotStoreOptions {
  /// Complete epochs kept on disk (older ones are swept, except files an
  /// alive delta chain still needs).
  size_t retain = 2;
  /// Every k-th persisted epoch is written as a full snapshot; the epochs
  /// between are deltas against their predecessor. 1 = always full.
  size_t full_every = 4;
};

/// \brief Metadata committed per epoch (the manifest file's contents).
struct SnapshotManifest {
  uint64_t epoch = 0;
  /// True when the state file is a delta against `base`.
  bool delta = false;
  /// Previous epoch in the delta chain (meaningful only when `delta`).
  uint64_t base = 0;
  /// Broker read positions the snapshot covers ("topic/partition" ->
  /// offset): where replay resumes after restore.
  std::map<std::string, int64_t> source_offsets;
  /// Source watermark at snapshot time (kMinTimestamp when unknown).
  Timestamp watermark = kMinTimestamp;
};

/// \brief Writes and reads durable snapshots for one pipeline.
///
/// Not thread-safe; the CheckpointCoordinator serialises access.
class SnapshotStore {
 public:
  explicit SnapshotStore(std::string dir, SnapshotStoreOptions options = {});

  /// \brief Creates the store directory (and parents) if missing.
  Status Init();

  /// \brief Durably persists `epoch`: writes the state file (full or delta
  /// against the previously persisted epoch), then commits the manifest via
  /// atomic rename, then sweeps retention. Epochs must increase.
  Status Persist(uint64_t epoch, const std::vector<std::string>& slots,
                 const std::map<std::string, int64_t>& source_offsets,
                 Timestamp watermark);

  /// \brief The newest epoch that is complete on disk (manifest parses,
  /// state chain intact); NotFound when no usable snapshot exists.
  Result<SnapshotManifest> LatestManifest() const;

  /// \brief Reconstructs the slot list for `manifest`'s epoch, applying the
  /// delta chain on top of its full base.
  Result<std::vector<std::string>> LoadSlots(
      const SnapshotManifest& manifest) const;

  /// \brief Epochs with a manifest on disk, ascending (diagnostics/tests;
  /// includes epochs whose state chain may be incomplete).
  Result<std::vector<uint64_t>> ManifestEpochs() const;

  /// \brief Deletes manifests and state files older than the retention
  /// window, keeping every file a retained delta chain still references.
  Status RetentionSweep();

  const std::string& dir() const { return dir_; }

 private:
  std::string StatePath(uint64_t epoch, bool delta) const;
  std::string ManifestPath(uint64_t epoch) const;
  Result<SnapshotManifest> ReadManifest(uint64_t epoch) const;
  /// Checks the state chain for `manifest` exists and is complete, walking
  /// delta bases down to a full snapshot. Returns the chain (full first).
  Result<std::vector<SnapshotManifest>> ResolveChain(
      const SnapshotManifest& manifest) const;

  std::string dir_;
  SnapshotStoreOptions options_;
  /// Last successfully persisted epoch's slots, for delta computation.
  /// Empty after a fresh open (first Persist is then a full snapshot).
  std::vector<std::string> last_slots_;
  uint64_t last_epoch_ = 0;
  bool has_last_ = false;
  /// Snapshots persisted by this instance (drives the full/delta cadence).
  uint64_t persist_count_ = 0;
};

}  // namespace cq::ft

#endif  // CQ_FT_SNAPSHOT_STORE_H_

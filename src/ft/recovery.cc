#include "ft/recovery.h"

#include <utility>
#include <vector>

#include "obs/flight_recorder.h"

namespace cq::ft {

Result<RecoveryReport> RecoveryManager::Recover(Checkpointable* pipeline,
                                                SeekFn seek,
                                                EndOffsetsFn end_offsets) {
  RecoveryReport report;
  Result<SnapshotManifest> manifest = store_->LatestManifest();
  if (!manifest.ok()) {
    if (manifest.status().code() == StatusCode::kNotFound) {
      FlightRecorder::Global().Record("recovery", "fresh_start");
      return report;  // fresh start
    }
    return manifest.status();
  }
  FlightRecorder::Global().Record("recovery", "begin", "",
                                  static_cast<int64_t>(manifest->epoch));
  CQ_ASSIGN_OR_RETURN(std::vector<std::string> slots,
                      store_->LoadSlots(*manifest));
  CQ_RETURN_NOT_OK(pipeline->QuiesceForSnapshot());
  CQ_RETURN_NOT_OK(pipeline->RestoreSlots(slots));
  if (seek) CQ_RETURN_NOT_OK(seek(manifest->source_offsets));
  if (output_log_ != nullptr) {
    // The crash may have landed between the manifest commit and the fence
    // publish: republish the restored epoch's staged output from the same
    // durable image. Idempotent by filename — a crash after the original
    // publish makes this a no-op.
    CQ_RETURN_NOT_OK(
        PublishStagedFrames(slots, manifest->epoch, output_log_));
  }

  report.restored = true;
  report.epoch = manifest->epoch;
  report.resume_offsets = manifest->source_offsets;
  report.watermark = manifest->watermark;
  if (end_offsets) {
    Result<std::map<std::string, int64_t>> ends = end_offsets();
    CQ_RETURN_NOT_OK(ends.status());
    for (const auto& [partition, end] : *ends) {
      auto it = report.resume_offsets.find(partition);
      int64_t from = it == report.resume_offsets.end() ? 0 : it->second;
      if (end > from) report.records_to_replay += end - from;
    }
  }
  FlightRecorder::Global().Record(
      "recovery", "done", "", static_cast<int64_t>(report.epoch),
      static_cast<int64_t>(report.records_to_replay));
  return report;
}

}  // namespace cq::ft

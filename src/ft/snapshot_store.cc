#include "ft/snapshot_store.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include "ft/checkpointable.h"
#include "ft/fault.h"
#include "ft/framed_file.h"
#include "kvstore/wal.h"

namespace cq::ft {

namespace fs = std::filesystem;

namespace {

constexpr const char* kDeltaCommitKey = "__commit__";

Result<uint64_t> EpochFromName(const std::string& name,
                               const std::string& prefix) {
  std::string digits = name.substr(prefix.size());
  // Strip a ".full"/".delta" suffix if present.
  size_t dot = digits.find('.');
  if (dot != std::string::npos) digits = digits.substr(0, dot);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("unparseable epoch in '" + name + "'");
  }
  return static_cast<uint64_t>(std::stoull(digits));
}

}  // namespace

SnapshotStore::SnapshotStore(std::string dir, SnapshotStoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.retain == 0) options_.retain = 1;
  if (options_.full_every == 0) options_.full_every = 1;
}

Status SnapshotStore::Init() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot dir '" + dir_ +
                           "': " + ec.message());
  }
  return Status::OK();
}

std::string SnapshotStore::StatePath(uint64_t epoch, bool delta) const {
  return dir_ + "/epoch-" + std::to_string(epoch) +
         (delta ? ".delta" : ".full");
}

std::string SnapshotStore::ManifestPath(uint64_t epoch) const {
  return dir_ + "/manifest-" + std::to_string(epoch);
}

Status SnapshotStore::Persist(
    uint64_t epoch, const std::vector<std::string>& slots,
    const std::map<std::string, int64_t>& source_offsets,
    Timestamp watermark) {
  if (has_last_ && epoch <= last_epoch_) {
    return Status::InvalidArgument(
        "epoch " + std::to_string(epoch) + " not after last persisted " +
        std::to_string(last_epoch_));
  }
  // Delta only when the previous epoch is in memory, the shape matches, and
  // the cadence says so; everything else falls back to a full snapshot.
  bool delta = has_last_ && slots.size() == last_slots_.size() &&
               options_.full_every > 1 &&
               (persist_count_ % options_.full_every) != 0;

  if (delta) {
    const std::string path = StatePath(epoch, /*delta=*/true);
    const std::string tmp = path + ".tmp";
    {
      CQ_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> wal, WalWriter::Open(tmp));
      for (size_t i = 0; i < slots.size(); ++i) {
        if (slots[i] == last_slots_[i]) continue;
        CQ_RETURN_NOT_OK(wal->Append(
            {WalRecord::Op::kPut, std::to_string(i), slots[i]}));
      }
      // Terminal commit record: its presence is what distinguishes a
      // complete delta from one torn mid-write.
      CQ_RETURN_NOT_OK(wal->Append({WalRecord::Op::kPut, kDeltaCommitKey, ""}));
      CQ_RETURN_NOT_OK(wal->Flush());
    }
    CQ_RETURN_NOT_OK(
        FaultInjector::Global().Hit(faultpoint::kSnapshotPreStateRename));
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
      return Status::IOError("cannot rename delta '" + tmp +
                             "': " + ec.message());
    }
  } else {
    std::string payload;
    EncodeBlobList(slots, &payload);
    CQ_RETURN_NOT_OK(WriteFramedAtomic(StatePath(epoch, /*delta=*/false),
                                       payload,
                                       faultpoint::kSnapshotPreStateRename));
  }

  // Manifest commit point.
  std::string manifest;
  EncodeU64(epoch, &manifest);
  EncodeU32(delta ? 1 : 0, &manifest);
  EncodeU64(delta ? last_epoch_ : 0, &manifest);
  EncodeOffsetMap(source_offsets, &manifest);
  EncodeI64(watermark, &manifest);
  CQ_RETURN_NOT_OK(WriteFramedAtomic(ManifestPath(epoch), manifest,
                                     faultpoint::kSnapshotPreManifestRename));
  CQ_RETURN_NOT_OK(
      FaultInjector::Global().Hit(faultpoint::kSnapshotPostCommit));

  last_slots_ = slots;
  last_epoch_ = epoch;
  has_last_ = true;
  ++persist_count_;
  return RetentionSweep();
}

Result<SnapshotManifest> SnapshotStore::ReadManifest(uint64_t epoch) const {
  CQ_ASSIGN_OR_RETURN(std::string payload, ReadFramed(ManifestPath(epoch)));
  std::string_view in = payload;
  SnapshotManifest m;
  CQ_ASSIGN_OR_RETURN(m.epoch, DecodeU64(&in));
  CQ_ASSIGN_OR_RETURN(uint32_t delta_flag, DecodeU32(&in));
  m.delta = delta_flag != 0;
  CQ_ASSIGN_OR_RETURN(m.base, DecodeU64(&in));
  CQ_ASSIGN_OR_RETURN(m.source_offsets, DecodeOffsetMap(&in));
  CQ_ASSIGN_OR_RETURN(m.watermark, DecodeI64(&in));
  if (m.epoch != epoch) {
    return Status::IOError("manifest for epoch " + std::to_string(epoch) +
                           " claims epoch " + std::to_string(m.epoch));
  }
  return m;
}

Result<std::vector<SnapshotManifest>> SnapshotStore::ResolveChain(
    const SnapshotManifest& manifest) const {
  std::vector<SnapshotManifest> chain;
  SnapshotManifest m = manifest;
  while (true) {
    if (m.delta) {
      // Complete deltas end in the commit record; ReadWal already truncated
      // any torn tail, so a missing commit means the write never finished.
      CQ_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                          ReadWal(StatePath(m.epoch, /*delta=*/true)));
      if (records.empty() || records.back().key != kDeltaCommitKey) {
        return Status::IOError("delta for epoch " + std::to_string(m.epoch) +
                               " is incomplete");
      }
      chain.push_back(m);
      if (chain.size() > 1024) {
        return Status::Internal("delta chain too long (cycle?)");
      }
      CQ_ASSIGN_OR_RETURN(m, ReadManifest(m.base));
    } else {
      // Validate the full file's frame (existence + checksum).
      CQ_RETURN_NOT_OK(
          ReadFramed(StatePath(m.epoch, /*delta=*/false)).status());
      chain.push_back(m);
      break;
    }
  }
  std::reverse(chain.begin(), chain.end());  // full snapshot first
  return chain;
}

Result<std::vector<uint64_t>> SnapshotStore::ManifestEpochs() const {
  std::vector<uint64_t> epochs;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) {
    return Status::IOError("cannot list snapshot dir '" + dir_ +
                           "': " + ec.message());
  }
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    if (name.rfind("manifest-", 0) != 0) continue;
    Result<uint64_t> epoch = EpochFromName(name, "manifest-");
    if (epoch.ok()) epochs.push_back(*epoch);
  }
  std::sort(epochs.begin(), epochs.end());
  return epochs;
}

Result<SnapshotManifest> SnapshotStore::LatestManifest() const {
  CQ_ASSIGN_OR_RETURN(std::vector<uint64_t> epochs, ManifestEpochs());
  // Newest epoch whose manifest parses and whose state chain is complete;
  // torn writes push recovery back one epoch, never corrupt it.
  for (auto it = epochs.rbegin(); it != epochs.rend(); ++it) {
    Result<SnapshotManifest> m = ReadManifest(*it);
    if (!m.ok()) continue;
    if (ResolveChain(*m).ok()) return *m;
  }
  return Status::NotFound("no complete snapshot in '" + dir_ + "'");
}

Result<std::vector<std::string>> SnapshotStore::LoadSlots(
    const SnapshotManifest& manifest) const {
  CQ_ASSIGN_OR_RETURN(std::vector<SnapshotManifest> chain,
                      ResolveChain(manifest));
  CQ_ASSIGN_OR_RETURN(
      std::string payload,
      ReadFramed(StatePath(chain.front().epoch, /*delta=*/false)));
  std::string_view in = payload;
  CQ_ASSIGN_OR_RETURN(std::vector<std::string> slots, DecodeBlobList(&in));
  for (size_t c = 1; c < chain.size(); ++c) {
    CQ_ASSIGN_OR_RETURN(
        std::vector<WalRecord> records,
        ReadWal(StatePath(chain[c].epoch, /*delta=*/true)));
    for (const auto& rec : records) {
      if (rec.key == kDeltaCommitKey) continue;
      size_t idx = static_cast<size_t>(std::stoull(rec.key));
      if (idx >= slots.size()) {
        return Status::IOError("delta slot index " + rec.key +
                               " out of range for epoch " +
                               std::to_string(chain[c].epoch));
      }
      slots[idx] = rec.value;
    }
  }
  return slots;
}

Status SnapshotStore::RetentionSweep() {
  CQ_ASSIGN_OR_RETURN(std::vector<uint64_t> epochs, ManifestEpochs());
  // Keep the newest `retain` complete epochs plus every file their delta
  // chains still reference.
  std::set<uint64_t> needed;
  size_t kept = 0;
  for (auto it = epochs.rbegin(); it != epochs.rend() && kept < options_.retain;
       ++it) {
    Result<SnapshotManifest> m = ReadManifest(*it);
    if (!m.ok()) continue;
    Result<std::vector<SnapshotManifest>> chain = ResolveChain(*m);
    if (!chain.ok()) continue;
    for (const auto& link : *chain) needed.insert(link.epoch);
    ++kept;
  }
  if (kept == 0) return Status::OK();  // nothing usable: delete nothing
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    uint64_t epoch = 0;
    if (name.rfind("manifest-", 0) == 0) {
      Result<uint64_t> e = EpochFromName(name, "manifest-");
      if (!e.ok()) continue;
      epoch = *e;
    } else if (name.rfind("epoch-", 0) == 0 &&
               name.find(".tmp") == std::string::npos) {
      Result<uint64_t> e = EpochFromName(name, "epoch-");
      if (!e.ok()) continue;
      epoch = *e;
    } else {
      continue;
    }
    if (needed.count(epoch)) continue;
    std::error_code rm_ec;
    fs::remove(entry.path(), rm_ec);
  }
  return Status::OK();
}

}  // namespace cq::ft

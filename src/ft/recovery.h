#ifndef CQ_FT_RECOVERY_H_
#define CQ_FT_RECOVERY_H_

/// \file recovery.h
/// \brief RecoveryManager: rebuilds a pipeline from the last durable epoch.
///
/// The recovery sequence after a crash:
///   1. pick the newest complete manifest from the SnapshotStore (torn
///      writes automatically fall back one epoch),
///   2. reconstruct the slot list (full snapshot + delta chain) and restore
///      it into the freshly constructed pipeline,
///   3. rewind the source to the manifest's offsets (broker commit +
///      in-memory positions),
///   4. replay: everything between the manifest offsets and the log end
///      flows through the pipeline again. The EpochSinkOperator fence makes
///      the replayed window effectively-once at the output.
///
/// The report tells the caller what happened — restored epoch, resume
/// offsets, and the replay volume (end offsets minus resume offsets), which
/// is exactly the quantity bench_e11_recovery plots against checkpoint
/// interval.

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "common/time.h"
#include "ft/checkpointable.h"
#include "ft/fence.h"
#include "ft/snapshot_store.h"

namespace cq::ft {

/// \brief What a recovery attempt did.
struct RecoveryReport {
  /// True when a durable snapshot was found and restored; false means a
  /// fresh start (empty store is not an error).
  bool restored = false;
  /// Epoch restored (0 when !restored). Feed into
  /// CheckpointCoordinator::ResumeFromEpoch.
  uint64_t epoch = 0;
  /// Offsets the source was rewound to ("topic/partition" -> offset).
  std::map<std::string, int64_t> resume_offsets;
  /// Records between resume_offsets and the log end: the replay volume.
  int64_t records_to_replay = 0;
  /// Source watermark recorded at snapshot time.
  Timestamp watermark = kMinTimestamp;
};

class RecoveryManager {
 public:
  /// Rewinds the source to the given offsets (e.g. BrokerSourceDriver::
  /// SeekTo).
  using SeekFn = std::function<Status(const std::map<std::string, int64_t>&)>;
  /// End offsets per partition, for the replay-volume computation
  /// (optional).
  using EndOffsetsFn =
      std::function<Result<std::map<std::string, int64_t>>()>;

  explicit RecoveryManager(SnapshotStore* store) : store_(store) {}

  /// \brief Enables re-publication of the restored epoch's staged sink
  /// frames through `log` — closes the crash window between manifest commit
  /// and publish (idempotent: already-published epochs are skipped). Not
  /// owned.
  void SetOutputLog(DurableOutputLog* log) { output_log_ = log; }

  /// \brief Runs the recovery sequence into `pipeline` (freshly
  /// constructed, quiescent). With no usable snapshot on disk, returns a
  /// report with restored=false and leaves the pipeline untouched.
  Result<RecoveryReport> Recover(Checkpointable* pipeline, SeekFn seek,
                                 EndOffsetsFn end_offsets = nullptr);

 private:
  SnapshotStore* store_;
  DurableOutputLog* output_log_ = nullptr;
};

}  // namespace cq::ft

#endif  // CQ_FT_RECOVERY_H_

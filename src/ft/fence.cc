#include "ft/fence.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "ft/checkpointable.h"
#include "ft/fault.h"
#include "ft/framed_file.h"
#include "types/serde.h"

namespace cq::ft {

namespace fs = std::filesystem;

namespace {

/// Magic tag prefixing a staged sink frame. A plain blob list starts with a
/// u32 element count, so no realistic slot can alias this value.
constexpr uint32_t kStagedFrameMagic = 0x46454E43;  // "FENC"

}  // namespace

DurableOutputLog::DurableOutputLog(std::string dir) : dir_(std::move(dir)) {}

Status DurableOutputLog::Init() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create output dir '" + dir_ +
                           "': " + ec.message());
  }
  return Status::OK();
}

std::string DurableOutputLog::Path(uint64_t epoch, size_t part) const {
  return dir_ + "/out-" + std::to_string(epoch) + "-" + std::to_string(part);
}

bool DurableOutputLog::Published(uint64_t epoch, size_t part) const {
  std::error_code ec;
  return fs::exists(Path(epoch, part), ec);
}

Status DurableOutputLog::Publish(uint64_t epoch, size_t part,
                                 const std::vector<std::string>& records) {
  const std::string path = Path(epoch, part);
  std::error_code ec;
  if (fs::exists(path, ec)) return Status::OK();  // already published: fence
  std::string payload;
  EncodeBlobList(records, &payload);
  return WriteFramedAtomic(path, payload, faultpoint::kSinkPublish);
}

Result<std::vector<std::string>> DurableOutputLog::ReadAll() const {
  // Collect (epoch, part) keys, read in order.
  std::vector<std::pair<uint64_t, uint64_t>> keys;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) {
    return Status::IOError("cannot list output dir '" + dir_ +
                           "': " + ec.message());
  }
  for (const auto& entry : it) {
    std::string name = entry.path().filename().string();
    if (name.rfind("out-", 0) != 0) continue;
    if (name.find(".tmp") != std::string::npos) continue;
    size_t dash = name.rfind('-');
    if (dash == std::string::npos || dash <= 4) continue;
    std::string epoch_str = name.substr(4, dash - 4);
    std::string part_str = name.substr(dash + 1);
    if (epoch_str.find_first_not_of("0123456789") != std::string::npos ||
        part_str.empty() ||
        part_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    keys.emplace_back(std::stoull(epoch_str), std::stoull(part_str));
  }
  std::sort(keys.begin(), keys.end());
  std::vector<std::string> out;
  for (const auto& [epoch, part] : keys) {
    CQ_ASSIGN_OR_RETURN(std::string payload,
                        ReadFramed(Path(epoch, static_cast<size_t>(part))));
    std::string_view in = payload;
    CQ_ASSIGN_OR_RETURN(std::vector<std::string> records, DecodeBlobList(&in));
    for (auto& r : records) out.push_back(std::move(r));
  }
  return out;
}

// --- Staged frame codec ---

std::optional<StagedSinkFrame> TryDecodeStagedFrame(std::string_view slot) {
  std::string_view in = slot;
  Result<uint32_t> magic = DecodeU32(&in);
  if (!magic.ok() || *magic != kStagedFrameMagic) return std::nullopt;
  Result<uint64_t> part = DecodeU64(&in);
  if (!part.ok()) return std::nullopt;
  Result<std::vector<std::string>> records = DecodeBlobList(&in);
  if (!records.ok() || !in.empty()) return std::nullopt;
  StagedSinkFrame frame;
  frame.part = static_cast<size_t>(*part);
  frame.records = std::move(*records);
  return frame;
}

std::vector<StagedSinkFrame> ExtractStagedFrames(
    const std::vector<std::string>& slots) {
  std::vector<StagedSinkFrame> frames;
  for (const std::string& slot : slots) {
    if (auto frame = TryDecodeStagedFrame(slot)) {
      frames.push_back(std::move(*frame));
      continue;
    }
    // Worker slots (parallel pipeline) and service images wrap their node
    // states in a blob list; look one level deep.
    std::string_view in = slot;
    Result<std::vector<std::string>> nested = DecodeBlobList(&in);
    if (!nested.ok() || !in.empty()) continue;
    for (const std::string& inner : *nested) {
      if (auto frame = TryDecodeStagedFrame(inner)) {
        frames.push_back(std::move(*frame));
      }
    }
  }
  return frames;
}

Status PublishStagedFrames(const std::vector<std::string>& slots,
                           uint64_t epoch, DurableOutputLog* log) {
  for (const StagedSinkFrame& frame : ExtractStagedFrames(slots)) {
    CQ_RETURN_NOT_OK(log->Publish(epoch, frame.part, frame.records));
  }
  return Status::OK();
}

// --- EpochSinkOperator ---

EpochSinkOperator::EpochSinkOperator(std::string name, DurableOutputLog* log,
                                     size_t part)
    : Operator(std::move(name)), log_(log), part_(part) {
  (void)log_;  // publishing moved to the coordinator; kept for diagnostics
}

std::string EpochSinkOperator::EncodeRecord(const StreamElement& element) {
  std::string out;
  EncodeI64(element.timestamp, &out);
  EncodeTuple(element.tuple, &out);
  return out;
}

Status EpochSinkOperator::ProcessElement(size_t port,
                                         const StreamElement& element,
                                         const OperatorContext& ctx,
                                         Collector* out) {
  (void)port;
  (void)ctx;
  (void)out;  // terminal: nothing flows downstream
  if (element.is_record()) pending_.push_back(EncodeRecord(element));
  return Status::OK();
}

Result<std::string> EpochSinkOperator::SnapshotState() const {
  std::string out;
  EncodeU32(kStagedFrameMagic, &out);
  EncodeU64(static_cast<uint64_t>(part_), &out);
  EncodeBlobList(pending_, &out);
  return out;
}

Status EpochSinkOperator::RestoreState(std::string_view snapshot) {
  pending_.clear();
  if (snapshot.empty()) return Status::OK();  // fresh sink
  std::optional<StagedSinkFrame> frame = TryDecodeStagedFrame(snapshot);
  if (!frame.has_value()) {
    return Status::InvalidArgument("sink '" + name() +
                                   "' received a non-staged-frame snapshot");
  }
  if (frame->part != part_) {
    return Status::InvalidArgument(
        "sink '" + name() + "' (part " + std::to_string(part_) +
        ") received the staged frame of part " + std::to_string(frame->part));
  }
  // The staged records stay with the epoch image (recovery republishes them
  // from there); the live buffer restarts empty for the next epoch.
  return Status::OK();
}

Status EpochSinkOperator::OnSnapshotStaged() {
  CQ_RETURN_NOT_OK(FaultInjector::Global().Hit(faultpoint::kFenceStage));
  pending_.clear();
  return Status::OK();
}

}  // namespace cq::ft

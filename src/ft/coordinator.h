#ifndef CQ_FT_COORDINATOR_H_
#define CQ_FT_COORDINATOR_H_

/// \file coordinator.h
/// \brief CheckpointCoordinator: drives epoch checkpoints end to end.
///
/// One checkpoint = one epoch: capture the source read positions, snapshot
/// every pipeline state slot aligned with those positions, persist both
/// durably through the SnapshotStore, and only then commit the source
/// offsets to the broker (commit-on-checkpoint) and publish any fenced sink
/// output for the epoch. Two alignment strategies share that spine:
///
///  - Stop-the-world (TriggerCheckpoint): QuiesceForSnapshot drains the
///    pipeline, then slots are snapshotted synchronously. Simple, higher
///    latency — the whole pipeline pauses.
///  - In-band barriers (TriggerBarrierCheckpoint): an epoch barrier is
///    injected behind the records sent so far; each worker snapshots its
///    slot when the barrier reaches it and keeps processing. The
///    BarrierAligner assembles the epoch and the coordinator persists it
///    from the last reporting worker's thread. Chandy-Lamport, aligned by
///    construction because each worker has a single input channel.
///
/// The coordinator talks to the source through injected closures (offsets /
/// commit / watermark) so the ft library stays independent of the runtime
/// and queue layers.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "ft/barrier.h"
#include "ft/checkpointable.h"
#include "ft/fence.h"
#include "ft/snapshot_store.h"

namespace cq::ft {

class CheckpointCoordinator {
 public:
  /// Source read positions the next checkpoint should record.
  using OffsetsFn = std::function<Result<std::map<std::string, int64_t>>()>;
  /// Commits broker offsets once the covering snapshot is durable.
  using CommitFn = std::function<Status(const std::map<std::string, int64_t>&)>;
  /// Source watermark recorded into the manifest.
  using WatermarkFn = std::function<Timestamp()>;

  /// \brief Neither pointer is owned; both must outlive the coordinator.
  CheckpointCoordinator(Checkpointable* pipeline, SnapshotStore* store);

  void SetOffsetsProvider(OffsetsFn fn) { offsets_fn_ = std::move(fn); }
  void SetCommitFn(CommitFn fn) { commit_fn_ = std::move(fn); }
  void SetWatermarkFn(WatermarkFn fn) { watermark_fn_ = std::move(fn); }

  /// \brief Enables the two-phase-commit publish fence: once an epoch's
  /// manifest commits, the coordinator reads the slots back from the
  /// SnapshotStore, extracts every staged sink frame, and publishes it to
  /// `log` (idempotent by filename). Not owned; must outlive the
  /// coordinator.
  void SetOutputLog(DurableOutputLog* log) { output_log_ = log; }

  /// \brief Resumes epoch numbering after `epoch` (recovery: the next
  /// checkpoint becomes `epoch`+1).
  void ResumeFromEpoch(uint64_t epoch);

  /// \brief Stop-the-world aligned checkpoint: quiesce, capture offsets,
  /// snapshot slots, persist, commit offsets, publish. Returns the epoch.
  Result<uint64_t> TriggerCheckpoint();

  /// \brief Injects an epoch barrier into `pipeline` (which must be the
  /// BarrierInjectable side of the same pipeline, with Handler() installed
  /// before it started). Source offsets are captured at injection — they
  /// describe exactly the pre-barrier prefix. Returns the epoch; completion
  /// is asynchronous (WaitForEpoch).
  Result<uint64_t> TriggerBarrierCheckpoint(BarrierInjectable* pipeline);

  /// \brief The handler to install via SetBarrierHandler before the
  /// pipeline starts (barrier mode only). `fan_in` must match the
  /// pipeline's BarrierFanIn().
  BarrierInjectable::BarrierHandler Handler(size_t fan_in);

  /// \brief Blocks until `epoch` has been durably persisted (returns its
  /// completion status) — barrier mode's rendezvous.
  Status WaitForEpoch(uint64_t epoch);

  /// \brief Last epoch persisted and committed (0 = none yet).
  uint64_t last_completed_epoch() const;

 private:
  /// The shared persistence spine: store->Persist, then offset commit, then
  /// sink publish.
  Status PersistEpoch(uint64_t epoch,
                      const std::vector<std::string>& slots,
                      const std::map<std::string, int64_t>& offsets,
                      Timestamp watermark);
  void CompleteBarrierEpoch(uint64_t epoch,
                            Result<std::vector<std::string>> slots);

  Checkpointable* pipeline_;
  SnapshotStore* store_;
  OffsetsFn offsets_fn_;
  CommitFn commit_fn_;
  WatermarkFn watermark_fn_;
  DurableOutputLog* output_log_ = nullptr;

  std::unique_ptr<BarrierAligner> aligner_;

  mutable std::mutex mu_;
  std::condition_variable epoch_done_;
  uint64_t next_epoch_ = 1;
  uint64_t last_completed_ = 0;
  /// Offsets/watermark captured at barrier injection, keyed by epoch.
  std::map<uint64_t, std::pair<std::map<std::string, int64_t>, Timestamp>>
      in_flight_;
  /// Completion status per finished epoch (consumed by WaitForEpoch).
  std::map<uint64_t, Status> results_;
};

}  // namespace cq::ft

#endif  // CQ_FT_COORDINATOR_H_

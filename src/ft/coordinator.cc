#include "ft/coordinator.h"

#include <utility>

#include "obs/flight_recorder.h"

namespace cq::ft {

CheckpointCoordinator::CheckpointCoordinator(Checkpointable* pipeline,
                                             SnapshotStore* store)
    : pipeline_(pipeline), store_(store) {}

void CheckpointCoordinator::ResumeFromEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  next_epoch_ = epoch + 1;
  last_completed_ = epoch;
}

uint64_t CheckpointCoordinator::last_completed_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_completed_;
}

Status CheckpointCoordinator::PersistEpoch(
    uint64_t epoch, const std::vector<std::string>& slots,
    const std::map<std::string, int64_t>& offsets, Timestamp watermark) {
  CQ_RETURN_NOT_OK(store_->Persist(epoch, slots, offsets, watermark));
  FlightRecorder::Global().Record("barrier", "persist", "",
                                  static_cast<int64_t>(epoch),
                                  static_cast<int64_t>(slots.size()));
  // The snapshot is durable from here: committing the source offsets and
  // publishing fenced output are both safe to redo after a crash (commit is
  // idempotent, publish is fenced by epoch), so their order is free.
  if (commit_fn_) CQ_RETURN_NOT_OK(commit_fn_(offsets));
  if (output_log_ != nullptr) {
    // Phase-2 commit of the publish fence: read the epoch's slots back from
    // the STORE, not from live operators — in barrier mode the live sink
    // buffers already hold post-barrier records, but the durable image
    // carries exactly the staged pre-barrier output.
    CQ_ASSIGN_OR_RETURN(SnapshotManifest manifest, store_->LatestManifest());
    if (manifest.epoch != epoch) {
      return Status::Internal(
          "publish fence: persisted epoch " + std::to_string(epoch) +
          " but the store's latest manifest is epoch " +
          std::to_string(manifest.epoch));
    }
    CQ_ASSIGN_OR_RETURN(std::vector<std::string> durable_slots,
                        store_->LoadSlots(manifest));
    CQ_RETURN_NOT_OK(PublishStagedFrames(durable_slots, epoch, output_log_));
    FlightRecorder::Global().Record("barrier", "publish", "",
                                    static_cast<int64_t>(epoch));
  }
  return Status::OK();
}

Result<uint64_t> CheckpointCoordinator::TriggerCheckpoint() {
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = next_epoch_++;
  }
  FlightRecorder::Global().Record("barrier", "begin", "quiesce",
                                  static_cast<int64_t>(epoch));
  // Quiesce first: every record accepted so far is fully processed, so the
  // offsets captured next describe exactly the snapshotted prefix.
  CQ_RETURN_NOT_OK(pipeline_->QuiesceForSnapshot());
  std::map<std::string, int64_t> offsets;
  if (offsets_fn_) {
    CQ_ASSIGN_OR_RETURN(offsets, offsets_fn_());
  }
  Timestamp wm = watermark_fn_ ? watermark_fn_() : kMinTimestamp;
  CQ_ASSIGN_OR_RETURN(std::vector<std::string> slots,
                      pipeline_->SnapshotSlots());
  CQ_RETURN_NOT_OK(PersistEpoch(epoch, slots, offsets, wm));
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_completed_ = epoch;
  }
  FlightRecorder::Global().Record("barrier", "commit", "",
                                  static_cast<int64_t>(epoch));
  return epoch;
}

BarrierInjectable::BarrierHandler CheckpointCoordinator::Handler(
    size_t fan_in) {
  aligner_ = std::make_unique<BarrierAligner>(
      fan_in, [this](uint64_t epoch, Result<std::vector<std::string>> slots) {
        CompleteBarrierEpoch(epoch, std::move(slots));
      });
  return aligner_->AsHandler();
}

Result<uint64_t> CheckpointCoordinator::TriggerBarrierCheckpoint(
    BarrierInjectable* pipeline) {
  if (aligner_ == nullptr) {
    return Status::Internal(
        "barrier handler not installed (call Handler() before Start)");
  }
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = next_epoch_++;
  }
  // Capture offsets and watermark NOW: the barrier is injected behind every
  // record sent so far, which is exactly the data those positions cover.
  std::map<std::string, int64_t> offsets;
  if (offsets_fn_) {
    CQ_ASSIGN_OR_RETURN(offsets, offsets_fn_());
  }
  Timestamp wm = watermark_fn_ ? watermark_fn_() : kMinTimestamp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_[epoch] = {std::move(offsets), wm};
  }
  FlightRecorder::Global().Record("barrier", "begin", "inject",
                                  static_cast<int64_t>(epoch));
  Status st = pipeline->InjectBarrier(epoch);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.erase(epoch);
    return st;
  }
  return epoch;
}

void CheckpointCoordinator::CompleteBarrierEpoch(
    uint64_t epoch, Result<std::vector<std::string>> slots) {
  std::map<std::string, int64_t> offsets;
  Timestamp wm = kMinTimestamp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = in_flight_.find(epoch);
    if (it != in_flight_.end()) {
      offsets = std::move(it->second.first);
      wm = it->second.second;
      in_flight_.erase(it);
    }
  }
  Status st = slots.ok() ? PersistEpoch(epoch, *slots, offsets, wm)
                         : slots.status();
  FlightRecorder::Global().Record("barrier", st.ok() ? "commit" : "abort",
                                  st.ok() ? "" : st.ToString(),
                                  static_cast<int64_t>(epoch));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (st.ok() && epoch > last_completed_) last_completed_ = epoch;
    results_[epoch] = st;
  }
  epoch_done_.notify_all();
}

Status CheckpointCoordinator::WaitForEpoch(uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  epoch_done_.wait(lock, [&] { return results_.count(epoch) > 0; });
  Status st = results_[epoch];
  results_.erase(epoch);
  return st;
}

}  // namespace cq::ft

#ifndef CQ_FT_FAULT_H_
#define CQ_FT_FAULT_H_

/// \file fault.h
/// \brief FaultInjector: deterministic failure injection for recovery tests.
///
/// Fault-tolerance code is only trustworthy if every failure path has been
/// executed. The injector exposes named *fault points* compiled into the
/// runtime (channel push, worker processing, snapshot write/commit, offset
/// commit); tests — and the CQ_FAULT environment variable — arm a point so
/// that its N-th hit either returns an error Status (kFail: exercises clean
/// error propagation) or terminates the process immediately (kExit:
/// exercises crash recovery from durable state; _exit skips destructors the
/// way a real crash would).
///
/// Header-only so that low layers (runtime, queue) can place fault points
/// without linking against the ft library. A disarmed injector costs one
/// relaxed atomic load per hit.
///
/// Environment syntax: CQ_FAULT="<point>:<after>:<kind>", e.g.
/// "snapshot.pre_manifest_rename:2:exit" fires on the 3rd hit (after=2)
/// of that point with a process exit. Kinds: "fail" | "exit".

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"

namespace cq::ft {

/// \brief What an armed fault point does when it fires.
enum class FaultKind {
  kFail,  // return Status::Internal from the fault point
  kExit,  // _exit(kFaultExitCode): simulated process crash
};

/// \brief Exit code used by kExit so harnesses can assert the death was the
/// injected one and not an accident.
inline constexpr int kFaultExitCode = 42;

/// \brief Canonical fault-point names (the compiled-in injection sites).
namespace faultpoint {
inline constexpr const char* kChannelPush = "channel.push";
inline constexpr const char* kWorkerProcess = "worker.process";
inline constexpr const char* kSnapshotPreStateRename =
    "snapshot.pre_state_rename";
inline constexpr const char* kSnapshotPreManifestRename =
    "snapshot.pre_manifest_rename";
inline constexpr const char* kSnapshotPostCommit = "snapshot.post_commit";
inline constexpr const char* kCommitOffsets = "source.commit_offsets";
inline constexpr const char* kSinkPublish = "sink.publish";
inline constexpr const char* kFenceStage = "fence.stage";

/// \brief Every compiled-in point (tests iterate this to prove recovery
/// works no matter where the failure lands).
inline const std::vector<std::string>& All() {
  static const std::vector<std::string> kAll = {
      kChannelPush,           kWorkerProcess, kSnapshotPreStateRename,
      kSnapshotPreManifestRename, kSnapshotPostCommit, kCommitOffsets,
      kSinkPublish,           kFenceStage};
  return kAll;
}
}  // namespace faultpoint

class FaultInjector {
 public:
  /// \brief Process-wide injector. All fault points route through it.
  static FaultInjector& Global() {
    static FaultInjector g;
    return g;
  }

  /// \brief Arms `point`: its (`after`+1)-th Hit fires `kind`. Only one
  /// point is armed at a time (matching how a single failure is injected per
  /// scenario); re-arming replaces the previous arm.
  void Arm(std::string point, uint64_t after, FaultKind kind) {
    std::lock_guard<std::mutex> lock(mu_);
    armed_point_ = std::move(point);
    remaining_ = after;
    kind_ = kind;
    fired_ = false;
    enabled_.store(true, std::memory_order_release);
  }

  /// \brief Disarms everything and clears hit counters.
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    enabled_.store(false, std::memory_order_release);
    armed_point_.clear();
    fired_ = false;
    hits_.clear();
  }

  /// \brief True once the armed fault has fired (kFail only; kExit never
  /// returns).
  bool fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

  /// \brief Hits observed at `point` since the last Reset (counted only
  /// while the injector is enabled, keeping disarmed hot paths free).
  uint64_t HitCount(const std::string& point) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hits_.find(point);
    return it == hits_.end() ? 0 : it->second;
  }

  /// \brief Arms from the CQ_FAULT environment variable if present.
  /// Malformed values are ignored (the injector stays disarmed).
  void ArmFromEnv() {
    const char* env = std::getenv("CQ_FAULT");
    if (env == nullptr || *env == '\0') return;
    std::string spec(env);
    size_t c1 = spec.find(':');
    size_t c2 = c1 == std::string::npos ? std::string::npos
                                        : spec.find(':', c1 + 1);
    if (c2 == std::string::npos) return;
    std::string point = spec.substr(0, c1);
    uint64_t after = std::strtoull(spec.substr(c1 + 1, c2 - c1 - 1).c_str(),
                                   nullptr, 10);
    std::string kind = spec.substr(c2 + 1);
    if (kind == "fail") {
      Arm(std::move(point), after, FaultKind::kFail);
    } else if (kind == "exit") {
      Arm(std::move(point), after, FaultKind::kExit);
    }
  }

  /// \brief The fault point hook. Returns OK unless this point is armed and
  /// its countdown reached zero; then either returns Internal (kFail) or
  /// exits the process (kExit).
  Status Hit(const char* point) {
    if (!enabled_.load(std::memory_order_acquire)) return Status::OK();
    return HitSlow(point);
  }

 private:
  Status HitSlow(const char* point) {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_[point];
    if (fired_ || armed_point_ != point) return Status::OK();
    if (remaining_ > 0) {
      --remaining_;
      return Status::OK();
    }
    if (kind_ == FaultKind::kExit) {
      // A crash, not a shutdown: no destructors, no flushes. The flight
      // recorder's black box is the one thing dumped on the way down.
      FlightRecorder::Global().Record("fault", "exit", point);
      FlightRecorder::Global().DumpToStderr("injected-crash");
      _exit(kFaultExitCode);
    }
    fired_ = true;
    FlightRecorder::Global().Record("fault", "fail", point);
    return Status::Internal("injected fault at '" + std::string(point) + "'");
  }

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::string armed_point_;
  uint64_t remaining_ = 0;
  FaultKind kind_ = FaultKind::kFail;
  bool fired_ = false;
  std::map<std::string, uint64_t> hits_;
};

}  // namespace cq::ft

#endif  // CQ_FT_FAULT_H_

#ifndef CQ_FT_FRAMED_FILE_H_
#define CQ_FT_FRAMED_FILE_H_

/// \file framed_file.h
/// \brief CRC-framed atomic file I/O shared by the ft durability layers.
///
/// File layout: [u64 crc][payload], crc = Fnv1a64(payload) — the same
/// torn-write detection discipline as the KV store's WAL. Writers go
/// through a tmp file, flush + fsync, then rename: the rename is the
/// atomic commit point, and the caller can place a fault-injection hit
/// right before it.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <unistd.h>

#include "common/hash.h"
#include "common/status.h"
#include "ft/fault.h"

namespace cq::ft {

/// \brief Durably writes `payload` to `path` via tmp + fsync + rename,
/// hitting `pre_rename_fault` just before the rename commit point.
inline Status WriteFramedAtomic(const std::string& path,
                                const std::string& payload,
                                const char* pre_rename_fault) {
  const std::string tmp = path + ".tmp";
  {
    FILE* f = fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("cannot create '" + tmp +
                             "': " + std::strerror(errno));
    }
    std::unique_ptr<FILE, int (*)(FILE*)> closer(f, fclose);
    uint64_t crc = Fnv1a64(payload);
    if (fwrite(&crc, sizeof(crc), 1, f) != 1 ||
        (!payload.empty() &&
         fwrite(payload.data(), 1, payload.size(), f) != payload.size())) {
      return Status::IOError("short write to '" + tmp + "'");
    }
    if (fflush(f) != 0 || fsync(fileno(f)) != 0) {
      return Status::IOError("cannot flush '" + tmp + "'");
    }
  }
  CQ_RETURN_NOT_OK(FaultInjector::Global().Hit(pre_rename_fault));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("cannot rename '" + tmp + "' -> '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

/// \brief Reads a framed file back; NotFound when absent, IOError on a
/// torn or corrupt frame.
inline Result<std::string> ReadFramed(const std::string& path) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no file at '" + path + "'");
  std::unique_ptr<FILE, int (*)(FILE*)> closer(f, fclose);
  uint64_t crc = 0;
  if (fread(&crc, sizeof(crc), 1, f) != 1) {
    return Status::IOError("truncated frame header in '" + path + "'");
  }
  std::string payload;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) payload.append(buf, n);
  if (Fnv1a64(payload) != crc) {
    return Status::IOError("checksum mismatch in '" + path +
                           "' (torn or corrupt write)");
  }
  return payload;
}

}  // namespace cq::ft

#endif  // CQ_FT_FRAMED_FILE_H_

#include "ft/barrier.h"

#include <utility>

#include "obs/flight_recorder.h"

namespace cq::ft {

BarrierAligner::BarrierAligner(size_t fan_in, CompletionFn on_complete)
    : fan_in_(fan_in == 0 ? 1 : fan_in), on_complete_(std::move(on_complete)) {}

void BarrierAligner::Report(uint64_t epoch, size_t slot,
                            Result<std::string> snapshot) {
  uint64_t done_epoch = 0;
  Result<std::vector<std::string>> done = std::vector<std::string>{};
  {
    std::lock_guard<std::mutex> lock(mu_);
    Pending& p = pending_[epoch];
    if (p.slots.empty()) {
      p.slots.resize(fan_in_);
      p.seen.resize(fan_in_, false);
      p.error = Status::OK();
    }
    if (slot >= fan_in_) {
      p.error = Status::Internal("barrier slot " + std::to_string(slot) +
                                 " >= fan-in " + std::to_string(fan_in_));
    } else if (p.seen[slot]) {
      p.error = Status::Internal("duplicate barrier report for slot " +
                                 std::to_string(slot));
    } else {
      p.seen[slot] = true;
      if (snapshot.ok()) {
        p.slots[slot] = std::move(*snapshot);
      } else if (p.error.ok()) {
        p.error = snapshot.status();
      }
    }
    ++p.reported;
    if (p.reported < fan_in_) return;
    FlightRecorder::Global().Record("barrier", "align", "",
                                    static_cast<int64_t>(epoch),
                                    static_cast<int64_t>(fan_in_));
    done_epoch = epoch;
    done = p.error.ok() ? Result<std::vector<std::string>>(std::move(p.slots))
                        : Result<std::vector<std::string>>(p.error);
    pending_.erase(epoch);
  }
  // Completion runs outside the lock: it persists to disk and may take a
  // while; new epochs can align concurrently.
  if (on_complete_) on_complete_(done_epoch, std::move(done));
}

BarrierInjectable::BarrierHandler BarrierAligner::AsHandler() {
  return [this](uint64_t epoch, size_t slot, Result<std::string> snapshot) {
    Report(epoch, slot, std::move(snapshot));
  };
}

size_t BarrierAligner::pending_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

}  // namespace cq::ft

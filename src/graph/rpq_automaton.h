#ifndef CQ_GRAPH_RPQ_AUTOMATON_H_
#define CQ_GRAPH_RPQ_AUTOMATON_H_

/// \file rpq_automaton.h
/// \brief Regular Path Queries: regex over edge labels, compiled to a DFA.
///
/// An RPQ selects vertex pairs (x, y) connected by a path whose label
/// sequence belongs to a regular language (paper §5.2, [65]). The expression
/// syntax follows the navigational-query convention:
///
///   expr  := term ('|' term)*            alternation
///   term  := factor ('/' factor)*        concatenation
///   factor:= atom ('*' | '+' | '?')?     closure / repetition / option
///   atom  := label | '(' expr ')'
///
/// e.g. "follows+/posts" or "(knows|worksWith)*/memberOf".
/// Compilation: Thompson NFA construction, epsilon-closure subset
/// construction to a DFA over interned label ids.

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/property_graph.h"

namespace cq {

/// \brief A deterministic automaton over edge-label ids.
class RpqAutomaton {
 public:
  /// \brief Parses and compiles `pattern`, interning labels in `registry`.
  static Result<RpqAutomaton> Compile(const std::string& pattern,
                                      LabelRegistry* registry);

  uint32_t start_state() const { return start_; }
  size_t num_states() const { return accepting_.size(); }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }

  /// \brief Next state for (state, label); NotFound when the transition is
  /// undefined (the path prefix cannot be extended).
  Result<uint32_t> Next(uint32_t state, LabelId label) const;

  /// \brief True when the empty path is in the language (start accepting).
  bool AcceptsEmpty() const { return accepting_[start_]; }

  /// \brief Runs the automaton over a full label sequence.
  bool Accepts(const std::vector<LabelId>& labels) const;

  std::string ToString(const LabelRegistry& registry) const;

 private:
  RpqAutomaton() = default;

  uint32_t start_ = 0;
  std::vector<bool> accepting_;
  // (state, label) -> state.
  std::map<std::pair<uint32_t, LabelId>, uint32_t> transitions_;
};

}  // namespace cq

#endif  // CQ_GRAPH_RPQ_AUTOMATON_H_

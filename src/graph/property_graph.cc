#include "graph/property_graph.h"

#include <algorithm>

namespace cq {

const std::vector<PropertyGraph::AdjEntry> PropertyGraph::kEmpty;

LabelId LabelRegistry::Intern(const std::string& label) {
  auto it = ids_.find(label);
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.push_back(label);
  ids_.emplace(label, id);
  return id;
}

Result<LabelId> LabelRegistry::Lookup(const std::string& label) const {
  auto it = ids_.find(label);
  if (it == ids_.end()) {
    return Status::NotFound("unknown edge label '" + label + "'");
  }
  return it->second;
}

void PropertyGraph::AddEdge(const StreamingEdge& edge) {
  out_[edge.src].push_back({edge.dst, edge.label, edge.ts});
  ++num_edges_;
}

size_t PropertyGraph::ExpireBefore(Timestamp cutoff) {
  size_t removed = 0;
  for (auto it = out_.begin(); it != out_.end();) {
    auto& adj = it->second;
    size_t before = adj.size();
    adj.erase(std::remove_if(adj.begin(), adj.end(),
                             [cutoff](const AdjEntry& e) {
                               return e.ts < cutoff;
                             }),
              adj.end());
    removed += before - adj.size();
    if (adj.empty()) {
      it = out_.erase(it);
    } else {
      ++it;
    }
  }
  num_edges_ -= removed;
  return removed;
}

const std::vector<PropertyGraph::AdjEntry>& PropertyGraph::Out(
    VertexId v) const {
  auto it = out_.find(v);
  return it == out_.end() ? kEmpty : it->second;
}

std::vector<VertexId> PropertyGraph::SourceVertices() const {
  std::vector<VertexId> out;
  out.reserve(out_.size());
  for (const auto& [v, adj] : out_) {
    if (!adj.empty()) out.push_back(v);
  }
  return out;
}

void PropertyGraph::SetVertexProperty(VertexId v, const std::string& key,
                                      Value value) {
  vertex_props_[{v, key}] = std::move(value);
}

Result<Value> PropertyGraph::GetVertexProperty(VertexId v,
                                               const std::string& key) const {
  auto it = vertex_props_.find({v, key});
  if (it == vertex_props_.end()) {
    return Status::NotFound("vertex " + std::to_string(v) +
                            " has no property '" + key + "'");
  }
  return it->second;
}

}  // namespace cq

#include "graph/streaming_rpq.h"

#include <deque>

namespace cq {

bool IncrementalRpq::Reach(VertexId source, const ProductNode& node) {
  auto [it, inserted] = reached_[source].insert(node);
  if (inserted) inverted_[node].insert(source);
  return inserted;
}

std::vector<RpqResult> IncrementalRpq::AddEdge(const StreamingEdge& edge) {
  graph_.AddEdge(edge);
  std::vector<RpqResult> derived;

  // Propagation frontier: (source, product node) pairs newly reachable.
  std::deque<std::pair<VertexId, ProductNode>> frontier;

  auto consider = [&](VertexId source, const ProductNode& node) {
    if (!Reach(source, node)) return;
    // Accepting product node => (source, node.first) joins the result.
    // node.first == source is a non-empty cyclic match, still reported.
    if (dfa_->IsAccepting(node.second)) {
      if (results_.insert({source, node.first}).second) {
        derived.push_back({source, node.first, edge.ts});
      }
    }
    frontier.push_back({source, node});
  };

  // Case 1: paths *starting* with the new edge. The implicit product node
  // (u, start) belongs to source u.
  Reach(edge.src, {edge.src, dfa_->start_state()});
  // Case 2 (includes case 1 now): every source that reaches (u, q) for some
  // state q extends through the new edge.
  for (uint32_t q = 0; q < dfa_->num_states(); ++q) {
    Result<uint32_t> next = dfa_->Next(q, edge.label);
    if (!next.ok()) continue;
    auto it = inverted_.find(ProductNode{edge.src, q});
    if (it == inverted_.end()) continue;
    // Copy: consider() mutates inverted_.
    std::vector<VertexId> sources(it->second.begin(), it->second.end());
    for (VertexId x : sources) {
      consider(x, {edge.dst, *next});
    }
  }

  // BFS: extend newly reached product nodes through existing edges.
  while (!frontier.empty()) {
    auto [source, node] = frontier.front();
    frontier.pop_front();
    for (const auto& adj : graph_.Out(node.first)) {
      Result<uint32_t> next = dfa_->Next(node.second, adj.label);
      if (!next.ok()) continue;
      consider(source, {adj.dst, *next});
    }
  }
  return derived;
}

size_t IncrementalRpq::StateSize() const {
  size_t n = 0;
  for (const auto& [source, nodes] : reached_) n += nodes.size();
  return n;
}

std::set<VertexId> SnapshotRpq::EvaluateFrom(VertexId source) const {
  std::set<VertexId> out;
  std::set<std::pair<VertexId, uint32_t>> visited;
  std::deque<std::pair<VertexId, uint32_t>> frontier;
  frontier.push_back({source, dfa_->start_state()});
  visited.insert({source, dfa_->start_state()});
  while (!frontier.empty()) {
    auto [v, q] = frontier.front();
    frontier.pop_front();
    for (const auto& adj : graph_.Out(v)) {
      Result<uint32_t> next = dfa_->Next(q, adj.label);
      if (!next.ok()) continue;
      std::pair<VertexId, uint32_t> node{adj.dst, *next};
      if (!visited.insert(node).second) continue;
      if (dfa_->IsAccepting(*next)) out.insert(adj.dst);
      frontier.push_back(node);
    }
  }
  return out;
}

std::set<std::pair<VertexId, VertexId>> SnapshotRpq::Evaluate() const {
  std::set<std::pair<VertexId, VertexId>> out;
  for (VertexId source : graph_.SourceVertices()) {
    for (VertexId dst : EvaluateFrom(source)) {
      out.insert({source, dst});
    }
  }
  return out;
}

void SimplePathRpq::Dfs(VertexId source, VertexId current, uint32_t state,
                        std::set<VertexId>* on_path, size_t depth,
                        std::set<std::pair<VertexId, VertexId>>* out) const {
  if (depth >= max_depth_) return;
  for (const auto& adj : graph_.Out(current)) {
    ++expansions_;
    Result<uint32_t> next = dfa_->Next(state, adj.label);
    if (!next.ok()) continue;
    if (on_path->count(adj.dst)) continue;  // simple: no vertex repetition
    if (dfa_->IsAccepting(*next)) out->insert({source, adj.dst});
    on_path->insert(adj.dst);
    Dfs(source, adj.dst, *next, on_path, depth + 1, out);
    on_path->erase(adj.dst);
  }
}

std::set<std::pair<VertexId, VertexId>> SimplePathRpq::Evaluate() const {
  expansions_ = 0;
  std::set<std::pair<VertexId, VertexId>> out;
  for (VertexId source : graph_.SourceVertices()) {
    std::set<VertexId> on_path{source};
    Dfs(source, source, dfa_->start_state(), &on_path, 0, &out);
  }
  return out;
}

}  // namespace cq

#ifndef CQ_GRAPH_STREAMING_RPQ_H_
#define CQ_GRAPH_STREAMING_RPQ_H_

/// \file streaming_rpq.h
/// \brief Continuous RPQ evaluation over streaming graphs (paper §5.2,
/// Pacaci et al. [65, 66]).
///
/// Three evaluators over the same automaton:
///
///  - IncrementalRpq — *arbitrary path* semantics, append-only streams:
///    maintains reachability over the product graph (graph x DFA); each new
///    edge triggers localized BFS propagation, emitting exactly the result
///    pairs it derives. Per-edge cost is proportional to newly derived
///    product nodes, not graph size.
///  - SnapshotRpq — the re-evaluation baseline: full product-graph BFS from
///    every source on demand (what a non-incremental engine re-runs per
///    tick). Also the engine for *windowed* streaming RPQ: expire + re-eval.
///  - SimplePathRpq — *simple path* semantics (no repeated vertices) via
///    bounded DFS enumeration; exponentially harder in the worst case, as
///    the literature predicts.
///
/// Result pairs are (x, y): a path from x to y whose labels match the
/// expression. The empty path is never reported (x, x) even when the
/// language contains epsilon.

#include <map>
#include <set>
#include <vector>

#include "common/time.h"
#include "graph/property_graph.h"
#include "graph/rpq_automaton.h"

namespace cq {

/// \brief One derived result: source, destination, derivation timestamp.
struct RpqResult {
  VertexId src;
  VertexId dst;
  Timestamp ts;

  bool operator==(const RpqResult& other) const = default;
};

/// \brief Incremental continuous RPQ (arbitrary path semantics).
class IncrementalRpq {
 public:
  explicit IncrementalRpq(const RpqAutomaton* dfa) : dfa_(dfa) {}

  /// \brief Ingests one edge; returns the result pairs newly derived by it.
  std::vector<RpqResult> AddEdge(const StreamingEdge& edge);

  /// \brief All result pairs derived so far.
  const std::set<std::pair<VertexId, VertexId>>& Results() const {
    return results_;
  }

  /// \brief Product-graph reachability entries retained (state size).
  size_t StateSize() const;

  const PropertyGraph& graph() const { return graph_; }

 private:
  using ProductNode = std::pair<VertexId, uint32_t>;

  /// Inserts (source, node); returns true when new.
  bool Reach(VertexId source, const ProductNode& node);

  const RpqAutomaton* dfa_;
  PropertyGraph graph_;
  // reached_[x] = product nodes (v, q) reachable from (x, start).
  std::map<VertexId, std::set<ProductNode>> reached_;
  // inverted_[(v, q)] = sources x that reach it (drives edge propagation).
  std::map<ProductNode, std::set<VertexId>> inverted_;
  std::set<std::pair<VertexId, VertexId>> results_;
};

/// \brief Snapshot (re-evaluation) RPQ over an accumulated graph.
class SnapshotRpq {
 public:
  explicit SnapshotRpq(const RpqAutomaton* dfa) : dfa_(dfa) {}

  void AddEdge(const StreamingEdge& edge) { graph_.AddEdge(edge); }

  /// \brief Windowed streaming-graph mode: drops edges older than cutoff.
  size_t ExpireBefore(Timestamp cutoff) {
    return graph_.ExpireBefore(cutoff);
  }

  /// \brief Full evaluation from scratch.
  std::set<std::pair<VertexId, VertexId>> Evaluate() const;

  /// \brief Evaluation restricted to paths starting at `source`.
  std::set<VertexId> EvaluateFrom(VertexId source) const;

  const PropertyGraph& graph() const { return graph_; }
  PropertyGraph* mutable_graph() { return &graph_; }

 private:
  const RpqAutomaton* dfa_;
  PropertyGraph graph_;
};

/// \brief Simple-path RPQ: DFS enumeration without vertex repetition.
class SimplePathRpq {
 public:
  /// \brief `max_depth` bounds enumeration (simple-path RPQ is NP-hard in
  /// general; continuous engines bound path length, as does [66]).
  SimplePathRpq(const RpqAutomaton* dfa, size_t max_depth)
      : dfa_(dfa), max_depth_(max_depth) {}

  void AddEdge(const StreamingEdge& edge) { graph_.AddEdge(edge); }

  std::set<std::pair<VertexId, VertexId>> Evaluate() const;

  /// \brief Number of DFS expansions in the last Evaluate() (cost probe).
  uint64_t last_expansions() const { return expansions_; }

 private:
  void Dfs(VertexId source, VertexId current, uint32_t state,
           std::set<VertexId>* on_path, size_t depth,
           std::set<std::pair<VertexId, VertexId>>* out) const;

  const RpqAutomaton* dfa_;
  size_t max_depth_;
  PropertyGraph graph_;
  mutable uint64_t expansions_ = 0;
};

}  // namespace cq

#endif  // CQ_GRAPH_STREAMING_RPQ_H_

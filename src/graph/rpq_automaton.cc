#include "graph/rpq_automaton.h"

#include <queue>

namespace cq {

namespace {

// ---- Regex AST ----

struct RegexNode {
  enum class Kind { kLabel, kConcat, kAlt, kStar, kPlus, kOpt };
  Kind kind;
  LabelId label = 0;
  std::unique_ptr<RegexNode> left;
  std::unique_ptr<RegexNode> right;
};

using NodePtr = std::unique_ptr<RegexNode>;

NodePtr MakeLabel(LabelId id) {
  auto n = std::make_unique<RegexNode>();
  n->kind = RegexNode::Kind::kLabel;
  n->label = id;
  return n;
}

NodePtr MakeBinary(RegexNode::Kind kind, NodePtr l, NodePtr r) {
  auto n = std::make_unique<RegexNode>();
  n->kind = kind;
  n->left = std::move(l);
  n->right = std::move(r);
  return n;
}

NodePtr MakeUnary(RegexNode::Kind kind, NodePtr inner) {
  auto n = std::make_unique<RegexNode>();
  n->kind = kind;
  n->left = std::move(inner);
  return n;
}

// ---- Recursive-descent parser ----

class RegexParser {
 public:
  RegexParser(const std::string& input, LabelRegistry* registry)
      : input_(input), registry_(registry) {}

  Result<NodePtr> Parse() {
    CQ_ASSIGN_OR_RETURN(NodePtr expr, ParseAlt());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("RPQ: trailing input at position " +
                                std::to_string(pos_));
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() && isspace(static_cast<unsigned char>(
                                       input_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < input_.size() && input_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<NodePtr> ParseAlt() {
    CQ_ASSIGN_OR_RETURN(NodePtr left, ParseConcat());
    while (Consume('|')) {
      CQ_ASSIGN_OR_RETURN(NodePtr right, ParseConcat());
      left = MakeBinary(RegexNode::Kind::kAlt, std::move(left),
                        std::move(right));
    }
    return left;
  }

  Result<NodePtr> ParseConcat() {
    CQ_ASSIGN_OR_RETURN(NodePtr left, ParseFactor());
    while (Consume('/')) {
      CQ_ASSIGN_OR_RETURN(NodePtr right, ParseFactor());
      left = MakeBinary(RegexNode::Kind::kConcat, std::move(left),
                        std::move(right));
    }
    return left;
  }

  Result<NodePtr> ParseFactor() {
    CQ_ASSIGN_OR_RETURN(NodePtr atom, ParseAtom());
    while (true) {
      if (Consume('*')) {
        atom = MakeUnary(RegexNode::Kind::kStar, std::move(atom));
      } else if (Consume('+')) {
        atom = MakeUnary(RegexNode::Kind::kPlus, std::move(atom));
      } else if (Consume('?')) {
        atom = MakeUnary(RegexNode::Kind::kOpt, std::move(atom));
      } else {
        break;
      }
    }
    return atom;
  }

  Result<NodePtr> ParseAtom() {
    SkipSpace();
    if (Consume('(')) {
      CQ_ASSIGN_OR_RETURN(NodePtr inner, ParseAlt());
      if (!Consume(')')) {
        return Status::ParseError("RPQ: expected ')'");
      }
      return inner;
    }
    size_t start = pos_;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Status::ParseError("RPQ: expected a label at position " +
                                std::to_string(pos_));
    }
    return MakeLabel(registry_->Intern(input_.substr(start, pos_ - start)));
  }

  const std::string& input_;
  LabelRegistry* registry_;
  size_t pos_ = 0;
};

// ---- Thompson NFA ----

struct Nfa {
  struct State {
    std::vector<std::pair<LabelId, uint32_t>> label_edges;
    std::vector<uint32_t> eps_edges;
  };
  std::vector<State> states;
  uint32_t start = 0;
  uint32_t accept = 0;

  uint32_t NewState() {
    states.emplace_back();
    return static_cast<uint32_t>(states.size() - 1);
  }
};

struct Frag {
  uint32_t in;
  uint32_t out;
};

Frag Build(Nfa* nfa, const RegexNode& node) {
  switch (node.kind) {
    case RegexNode::Kind::kLabel: {
      uint32_t a = nfa->NewState();
      uint32_t b = nfa->NewState();
      nfa->states[a].label_edges.push_back({node.label, b});
      return {a, b};
    }
    case RegexNode::Kind::kConcat: {
      Frag l = Build(nfa, *node.left);
      Frag r = Build(nfa, *node.right);
      nfa->states[l.out].eps_edges.push_back(r.in);
      return {l.in, r.out};
    }
    case RegexNode::Kind::kAlt: {
      Frag l = Build(nfa, *node.left);
      Frag r = Build(nfa, *node.right);
      uint32_t a = nfa->NewState();
      uint32_t b = nfa->NewState();
      nfa->states[a].eps_edges.push_back(l.in);
      nfa->states[a].eps_edges.push_back(r.in);
      nfa->states[l.out].eps_edges.push_back(b);
      nfa->states[r.out].eps_edges.push_back(b);
      return {a, b};
    }
    case RegexNode::Kind::kStar: {
      Frag inner = Build(nfa, *node.left);
      uint32_t a = nfa->NewState();
      uint32_t b = nfa->NewState();
      nfa->states[a].eps_edges.push_back(inner.in);
      nfa->states[a].eps_edges.push_back(b);
      nfa->states[inner.out].eps_edges.push_back(inner.in);
      nfa->states[inner.out].eps_edges.push_back(b);
      return {a, b};
    }
    case RegexNode::Kind::kPlus: {
      Frag inner = Build(nfa, *node.left);
      uint32_t b = nfa->NewState();
      nfa->states[inner.out].eps_edges.push_back(inner.in);
      nfa->states[inner.out].eps_edges.push_back(b);
      return {inner.in, b};
    }
    case RegexNode::Kind::kOpt: {
      Frag inner = Build(nfa, *node.left);
      uint32_t a = nfa->NewState();
      uint32_t b = nfa->NewState();
      nfa->states[a].eps_edges.push_back(inner.in);
      nfa->states[a].eps_edges.push_back(b);
      nfa->states[inner.out].eps_edges.push_back(b);
      return {a, b};
    }
  }
  return {0, 0};
}

std::set<uint32_t> EpsClosure(const Nfa& nfa, std::set<uint32_t> states) {
  std::vector<uint32_t> stack(states.begin(), states.end());
  while (!stack.empty()) {
    uint32_t s = stack.back();
    stack.pop_back();
    for (uint32_t t : nfa.states[s].eps_edges) {
      if (states.insert(t).second) stack.push_back(t);
    }
  }
  return states;
}

}  // namespace

Result<RpqAutomaton> RpqAutomaton::Compile(const std::string& pattern,
                                           LabelRegistry* registry) {
  RegexParser parser(pattern, registry);
  CQ_ASSIGN_OR_RETURN(NodePtr ast, parser.Parse());

  Nfa nfa;
  Frag frag = Build(&nfa, *ast);
  nfa.start = frag.in;
  nfa.accept = frag.out;

  // Subset construction.
  RpqAutomaton dfa;
  std::map<std::set<uint32_t>, uint32_t> subset_ids;
  std::queue<std::set<uint32_t>> work;

  std::set<uint32_t> start_set = EpsClosure(nfa, {nfa.start});
  subset_ids[start_set] = 0;
  dfa.start_ = 0;
  dfa.accepting_.push_back(start_set.count(nfa.accept) > 0);
  work.push(start_set);

  while (!work.empty()) {
    std::set<uint32_t> current = std::move(work.front());
    work.pop();
    uint32_t current_id = subset_ids[current];
    // Group label transitions out of this subset.
    std::map<LabelId, std::set<uint32_t>> moves;
    for (uint32_t s : current) {
      for (const auto& [label, target] : nfa.states[s].label_edges) {
        moves[label].insert(target);
      }
    }
    for (auto& [label, targets] : moves) {
      std::set<uint32_t> closure = EpsClosure(nfa, std::move(targets));
      auto it = subset_ids.find(closure);
      uint32_t target_id;
      if (it == subset_ids.end()) {
        target_id = static_cast<uint32_t>(dfa.accepting_.size());
        subset_ids.emplace(closure, target_id);
        dfa.accepting_.push_back(closure.count(nfa.accept) > 0);
        work.push(std::move(closure));
      } else {
        target_id = it->second;
      }
      dfa.transitions_[{current_id, label}] = target_id;
    }
  }
  return dfa;
}

Result<uint32_t> RpqAutomaton::Next(uint32_t state, LabelId label) const {
  auto it = transitions_.find({state, label});
  if (it == transitions_.end()) {
    return Status::NotFound("no transition");
  }
  return it->second;
}

bool RpqAutomaton::Accepts(const std::vector<LabelId>& labels) const {
  uint32_t state = start_;
  for (LabelId l : labels) {
    Result<uint32_t> next = Next(state, l);
    if (!next.ok()) return false;
    state = *next;
  }
  return accepting_[state];
}

std::string RpqAutomaton::ToString(const LabelRegistry& registry) const {
  std::string out = "DFA states=" + std::to_string(num_states()) +
                    " start=" + std::to_string(start_) + "\n";
  for (const auto& [key, target] : transitions_) {
    out += "  " + std::to_string(key.first) + " --" +
           registry.Name(key.second) + "--> " + std::to_string(target);
    if (accepting_[target]) out += " (accept)";
    out += "\n";
  }
  return out;
}

}  // namespace cq

#ifndef CQ_GRAPH_PROPERTY_GRAPH_H_
#define CQ_GRAPH_PROPERTY_GRAPH_H_

/// \file property_graph.h
/// \brief Streaming property graphs (paper §5.2).
///
/// The property-graph data model [76]: vertices and edges carry labels and
/// property maps. A *streaming graph* is an unbounded, timestamped sequence
/// of edge insertions (richer variants add deletions and windows);
/// continuous graph queries evaluate incrementally as the graph evolves.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "types/value.h"

namespace cq {

using VertexId = int64_t;
using LabelId = uint32_t;

/// \brief Interns label strings to dense ids (automaton alphabet).
class LabelRegistry {
 public:
  /// \brief Id for `label`, interning it if new.
  LabelId Intern(const std::string& label);

  /// \brief Id if present, NotFound otherwise (no interning).
  Result<LabelId> Lookup(const std::string& label) const;

  const std::string& Name(LabelId id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::map<std::string, LabelId> ids_;
  std::vector<std::string> names_;
};

/// \brief One timestamped edge of a streaming property graph.
struct StreamingEdge {
  VertexId src = 0;
  VertexId dst = 0;
  LabelId label = 0;
  Timestamp ts = 0;
  /// Property map (sparse; most benches leave it empty).
  std::map<std::string, Value> properties;
};

/// \brief Adjacency-indexed property graph accumulating a streaming prefix.
///
/// Supports append (streaming ingestion) and timestamp-based expiry
/// (windowed streaming graphs): expired edges are physically removed.
class PropertyGraph {
 public:
  /// \brief Adds an edge (vertices are implicit).
  void AddEdge(const StreamingEdge& edge);

  /// \brief Removes edges with ts < cutoff; returns how many were removed.
  size_t ExpireBefore(Timestamp cutoff);

  struct AdjEntry {
    VertexId dst;
    LabelId label;
    Timestamp ts;
  };

  /// \brief Outgoing edges of `v` (empty when unknown).
  const std::vector<AdjEntry>& Out(VertexId v) const;

  /// \brief Vertices with at least one outgoing edge.
  std::vector<VertexId> SourceVertices() const;

  size_t num_edges() const { return num_edges_; }
  size_t num_vertices() const { return out_.size(); }

  /// \brief Vertex property store (labels / attributes for vertices).
  void SetVertexProperty(VertexId v, const std::string& key, Value value);
  Result<Value> GetVertexProperty(VertexId v, const std::string& key) const;

 private:
  std::map<VertexId, std::vector<AdjEntry>> out_;
  std::map<std::pair<VertexId, std::string>, Value> vertex_props_;
  size_t num_edges_ = 0;
  static const std::vector<AdjEntry> kEmpty;
};

}  // namespace cq

#endif  // CQ_GRAPH_PROPERTY_GRAPH_H_

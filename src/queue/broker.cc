#include "queue/broker.h"

namespace cq {

int64_t Partition::Append(std::string key, Tuple value, Timestamp timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t offset = static_cast<int64_t>(log_.size());
  log_.push_back({offset, std::move(key), std::move(value), timestamp});
  if (timestamp > max_ts_) max_ts_ = timestamp;
  return offset;
}

Result<std::vector<Message>> Partition::Read(int64_t offset,
                                             size_t max_messages) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset < 0 || offset > static_cast<int64_t>(log_.size())) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " outside log [0, " +
                              std::to_string(log_.size()) + "]");
  }
  std::vector<Message> out;
  size_t start = static_cast<size_t>(offset);
  size_t end = std::min(log_.size(), start + max_messages);
  out.reserve(end - start);
  for (size_t i = start; i < end; ++i) out.push_back(log_[i]);
  return out;
}

int64_t Partition::EndOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(log_.size());
}

Timestamp Partition::MaxTimestamp() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_ts_;
}

Topic::Topic(std::string name, size_t num_partitions)
    : name_(std::move(name)) {
  partitions_.reserve(num_partitions);
  for (size_t i = 0; i < num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

size_t Topic::PartitionFor(const std::string& key) {
  if (key.empty()) {
    return round_robin_.fetch_add(1, std::memory_order_relaxed) %
           partitions_.size();
  }
  return Fnv1a64(key) % partitions_.size();
}

void Topic::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    produced_ = nullptr;
    polled_ = nullptr;
    depth_ = nullptr;
    return;
  }
  LabelSet labels{{"topic", name_}};
  produced_ = registry->GetCounter("cq_queue_produced_total", labels);
  polled_ = registry->GetCounter("cq_queue_polled_total", labels);
  depth_ = registry->GetGauge("cq_queue_depth", labels);
  int64_t appended = 0;
  for (const auto& p : partitions_) appended += p->EndOffset();
  depth_->Set(appended);
}

Status Broker::CreateTopic(const std::string& name, size_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("topic needs at least one partition");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.count(name)) {
    return Status::AlreadyExists("topic '" + name + "' exists");
  }
  auto topic = std::make_unique<Topic>(name, num_partitions);
  if (registry_ != nullptr) topic->AttachMetrics(registry_);
  topics_.emplace(name, std::move(topic));
  return Status::OK();
}

void Broker::AttachMetrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  for (auto& [name, topic] : topics_) topic->AttachMetrics(registry);
}

void Broker::ExportBacklogMetrics() {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry_ == nullptr) return;
  // Appended totals per topic (also refreshes the depth gauges).
  std::map<std::string, int64_t> appended;
  for (auto& [name, topic] : topics_) {
    int64_t total = 0;
    for (size_t p = 0; p < topic->num_partitions(); ++p) {
      total += topic->partition(p).EndOffset();
    }
    appended[name] = total;
    registry_->GetGauge("cq_queue_depth", {{"topic", name}})->Set(total);
  }
  // Committed totals per (group, topic) -> backlog gauge.
  std::map<std::pair<std::string, std::string>, int64_t> committed;
  for (const auto& [key, offset] : offsets_) {
    committed[{std::get<0>(key), std::get<1>(key)}] += offset;
  }
  for (const auto& [group_topic, committed_sum] : committed) {
    auto it = appended.find(group_topic.second);
    if (it == appended.end()) continue;
    registry_
        ->GetGauge("cq_queue_backlog", {{"group", group_topic.first},
                                        {"topic", group_topic.second}})
        ->Set(it->second - committed_sum);
  }
}

Result<Topic*> Broker::GetTopic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    return Status::NotFound("topic '" + name + "' does not exist");
  }
  return it->second.get();
}

Result<std::pair<size_t, int64_t>> Broker::Produce(const std::string& topic,
                                                   std::string key,
                                                   Tuple value,
                                                   Timestamp timestamp) {
  CQ_ASSIGN_OR_RETURN(Topic * t, GetTopic(topic));
  size_t p = t->PartitionFor(key);
  int64_t offset = t->partition(p).Append(std::move(key), std::move(value),
                                          timestamp);
  t->OnProduced();
  return std::make_pair(p, offset);
}

Result<std::vector<Message>> Broker::Poll(const std::string& group,
                                          const std::string& topic,
                                          size_t partition,
                                          size_t max_messages) {
  return PollAt(topic, partition, CommittedOffset(group, topic, partition),
                max_messages);
}

Result<std::vector<Message>> Broker::PollAt(const std::string& topic,
                                            size_t partition, int64_t offset,
                                            size_t max_messages) {
  CQ_ASSIGN_OR_RETURN(Topic * t, GetTopic(topic));
  if (partition >= t->num_partitions()) {
    return Status::OutOfRange("partition index out of range");
  }
  Result<std::vector<Message>> batch =
      t->partition(partition).Read(offset, max_messages);
  if (batch.ok()) t->OnPolled(batch->size());
  return batch;
}

Status Broker::Commit(const std::string& group, const std::string& topic,
                      size_t partition, int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  offsets_[{group, topic, partition}] = offset;
  return Status::OK();
}

int64_t Broker::CommittedOffset(const std::string& group,
                                const std::string& topic,
                                size_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = offsets_.find({group, topic, partition});
  return it == offsets_.end() ? 0 : it->second;
}

Result<std::vector<size_t>> Broker::AssignPartitions(const std::string& topic,
                                                     size_t num_members,
                                                     size_t member_index) {
  if (num_members == 0 || member_index >= num_members) {
    return Status::InvalidArgument("invalid consumer group membership");
  }
  CQ_ASSIGN_OR_RETURN(Topic * t, GetTopic(topic));
  std::vector<size_t> mine;
  for (size_t p = member_index; p < t->num_partitions(); p += num_members) {
    mine.push_back(p);
  }
  return mine;
}

}  // namespace cq

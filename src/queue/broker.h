#ifndef CQ_QUEUE_BROKER_H_
#define CQ_QUEUE_BROKER_H_

/// \file broker.h
/// \brief In-process partitioned log broker (Fig. 5 substrate).
///
/// The survey's abstract streaming-system architecture consumes streaming
/// data from a distributed queue (Kafka/Pulsar) and pushes outputs to the
/// same kind of system. This module is the in-process substitute: topics
/// split into partitions, each an append-only offset-addressed log, with
/// key-based partitioning, consumer groups, and committed offsets. Network
/// transport is deliberately out of scope — the consume/produce/offset/
/// rebalance code paths are what continuous-query processing exercises.

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "types/tuple.h"

namespace cq {

/// \brief A message in a partition log.
struct Message {
  int64_t offset = 0;  // position within the partition
  std::string key;     // partitioning key (may be empty)
  Tuple value;
  Timestamp timestamp = 0;  // event time stamped by the producer
};

/// \brief One append-only partition log. Thread-safe.
class Partition {
 public:
  /// \brief Appends a message, assigning its offset. Returns the offset.
  int64_t Append(std::string key, Tuple value, Timestamp timestamp);

  /// \brief Reads up to `max_messages` starting at `offset`. An offset at
  /// the end returns an empty batch (poll semantics); past-the-end offsets
  /// are OutOfRange.
  Result<std::vector<Message>> Read(int64_t offset,
                                    size_t max_messages) const;

  /// \brief Offset one past the last appended message.
  int64_t EndOffset() const;

  /// \brief Largest event timestamp appended so far (kMinTimestamp if none);
  /// consumers use it to derive source watermarks.
  Timestamp MaxTimestamp() const;

 private:
  mutable std::mutex mu_;
  std::vector<Message> log_;
  Timestamp max_ts_ = kMinTimestamp;
};

/// \brief A named topic: a fixed set of partitions.
class Topic {
 public:
  Topic(std::string name, size_t num_partitions);

  const std::string& name() const { return name_; }
  size_t num_partitions() const { return partitions_.size(); }
  Partition& partition(size_t i) { return *partitions_[i]; }
  const Partition& partition(size_t i) const { return *partitions_[i]; }

  /// \brief Stable key-hash partitioner; empty keys round-robin.
  size_t PartitionFor(const std::string& key);

  /// \brief Creates this topic's enqueue/dequeue counters and depth gauge
  /// (`cq_queue_*{topic=...}`) in `registry`; nullptr detaches.
  void AttachMetrics(MetricsRegistry* registry);

  /// \brief Hot-path hooks, no-ops until AttachMetrics.
  void OnProduced() {
    if (produced_ != nullptr) {
      produced_->Increment();
      depth_->Add(1);
    }
  }
  void OnPolled(size_t n) {
    if (polled_ != nullptr) polled_->Increment(n);
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::atomic<size_t> round_robin_{0};
  Counter* produced_ = nullptr;
  Counter* polled_ = nullptr;
  Gauge* depth_ = nullptr;  // total messages appended across partitions
};

/// \brief The broker: topic registry plus consumer-group offset tracking.
class Broker {
 public:
  /// \brief Creates a topic; AlreadyExists if the name is taken.
  Status CreateTopic(const std::string& name, size_t num_partitions);

  Result<Topic*> GetTopic(const std::string& name);

  /// \brief Produces a message; returns (partition, offset).
  Result<std::pair<size_t, int64_t>> Produce(const std::string& topic,
                                             std::string key, Tuple value,
                                             Timestamp timestamp);

  /// \brief Reads a batch from one partition at the group's committed
  /// offset, without committing.
  Result<std::vector<Message>> Poll(const std::string& group,
                                    const std::string& topic,
                                    size_t partition, size_t max_messages);

  /// \brief Reads a batch from one partition at an explicit offset (consumer
  /// that tracks its own positions, e.g. a checkpointing source driver).
  Result<std::vector<Message>> PollAt(const std::string& topic,
                                      size_t partition, int64_t offset,
                                      size_t max_messages);

  /// \brief Commits the group's offset for a partition.
  Status Commit(const std::string& group, const std::string& topic,
                size_t partition, int64_t offset);

  /// \brief Committed offset (0 when the group has never committed).
  int64_t CommittedOffset(const std::string& group, const std::string& topic,
                          size_t partition) const;

  /// \brief Round-robin assignment of a topic's partitions to `num_members`
  /// consumers; returns the partitions owned by `member_index`.
  Result<std::vector<size_t>> AssignPartitions(const std::string& topic,
                                               size_t num_members,
                                               size_t member_index);

  /// \brief Attaches a metrics registry: per-topic produce/poll counters and
  /// depth gauges update inline from then on (existing and future topics).
  void AttachMetrics(MetricsRegistry* registry);

  /// \brief Recomputes per-(group, topic) backlog gauges
  /// (`cq_queue_backlog{group=...,topic=...}` = appended - committed) from
  /// current offsets. Call at metrics-dump cadence.
  void ExportBacklogMetrics();

 private:
  mutable std::mutex mu_;
  MetricsRegistry* registry_ = nullptr;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
  // (group, topic, partition) -> committed offset
  std::map<std::tuple<std::string, std::string, size_t>, int64_t> offsets_;
};

}  // namespace cq

#endif  // CQ_QUEUE_BROKER_H_

#ifndef CQ_DUALITY_KSTREAM_H_
#define CQ_DUALITY_KSTREAM_H_

/// \file kstream.h
/// \brief The Stream and Table Duality Model (paper §4.1.2, [77]).
///
/// Streaming systems' functional DSLs rest on two abstractions: the *record
/// stream* (each element an independent event) and the *changelog stream* or
/// "table" (each element an upsert/delete on a keyed view). Stateless
/// operators transform streams; stateful operators (group/aggregate) turn
/// streams into tables; `ToStream` turns a table's changes back into a
/// stream — the duality. This module implements the model over bounded
/// streams as the DSL blueprint (the dataflow module is the unbounded
/// runtime for the same operations); Listing 2's
/// `transactions.filter(..).map(..)` style is expressed directly.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "cql/expr.h"
#include "stream/stream.h"
#include "window/aggregate.h"
#include "window/window.h"

namespace cq {

class KTable;
class KGroupedStream;

/// \brief One entry of a changelog stream: an upsert (value present) or a
/// deletion (tombstone) for a key, at a time.
struct Change {
  Tuple key;
  std::optional<Tuple> value;
  Timestamp ts = 0;

  bool is_tombstone() const { return !value.has_value(); }
};

/// \brief A record stream with functional transformations.
class KStream {
 public:
  /// \brief Wraps an existing record stream.
  static KStream From(BoundedStream stream);

  /// \brief Stateless: keeps records matching the predicate.
  KStream Filter(const std::function<bool(const Tuple&)>& pred) const;
  KStream Filter(const ExprPtr& predicate) const;

  /// \brief Stateless: one-to-one transformation.
  Result<KStream> Map(
      const std::function<Result<Tuple>(const Tuple&)>& fn) const;

  /// \brief Stateless: one-to-many transformation.
  Result<KStream> FlatMap(
      const std::function<Result<std::vector<Tuple>>(const Tuple&)>& fn) const;

  /// \brief Merges two record streams (resorted by timestamp).
  KStream Merge(const KStream& other) const;

  /// \brief Keys the stream by column indexes — the stateful boundary.
  KGroupedStream GroupBy(std::vector<size_t> key_indexes) const;

  /// \brief Stream-table (enrichment) join: each record is joined with the
  /// table version *as of the record's timestamp*; records whose key is
  /// absent are dropped (inner join). Output tuple = record ++ table value.
  Result<KStream> JoinTable(const KTable& table,
                            std::vector<size_t> key_indexes) const;

  const BoundedStream& stream() const { return stream_; }
  size_t size() const { return stream_.num_records(); }

 private:
  explicit KStream(BoundedStream s) : stream_(std::move(s)) {}
  BoundedStream stream_;
};

/// \brief A keyed stream awaiting a stateful operation.
class KGroupedStream {
 public:
  /// \brief COUNT per key; the table value is a 1-tuple (count).
  Result<KTable> Count() const;

  /// \brief Aggregates `spec` per key; the table value is a 1-tuple.
  Result<KTable> Aggregate(AggregateKind kind, const ExprPtr& input) const;

  /// \brief Binary reduction of whole value tuples per key.
  Result<KTable> Reduce(
      const std::function<Result<Tuple>(const Tuple&, const Tuple&)>& fn)
      const;

  /// \brief Windowed aggregation: per (key, window) with the given assigner;
  /// table keys become (key columns..., window_start, window_end).
  Result<KTable> WindowedAggregate(const WindowAssigner& assigner,
                                   AggregateKind kind,
                                   const ExprPtr& input) const;

 private:
  friend class KStream;
  KGroupedStream(const BoundedStream* stream, std::vector<size_t> keys)
      : stream_(stream), key_indexes_(std::move(keys)) {}
  const BoundedStream* stream_;
  std::vector<size_t> key_indexes_;
};

/// \brief A table: a changelog stream plus its materialisation.
class KTable {
 public:
  /// \brief Builds a table from a raw changelog.
  static KTable FromChangelog(std::vector<Change> changelog);

  /// \brief Current materialised contents (last value per key, tombstones
  /// removed).
  const std::map<Tuple, Tuple>& Materialized() const { return materialized_; }

  /// \brief The full changelog, time-ordered.
  const std::vector<Change>& Changelog() const { return changelog_; }

  /// \brief Table contents as of a timestamp (changelog replay).
  std::map<Tuple, Tuple> AsOf(Timestamp ts) const;

  /// \brief Stateful: filters the *materialised view*; rows leaving the view
  /// appear as tombstones in the result changelog.
  KTable Filter(const std::function<bool(const Tuple& key,
                                         const Tuple& value)>& pred) const;

  /// \brief Per-change value transformation.
  Result<KTable> MapValues(
      const std::function<Result<Tuple>(const Tuple&)>& fn) const;

  /// \brief The duality: the changelog as a record stream. Each upsert
  /// becomes a record (key ++ value); tombstones are dropped.
  KStream ToStream() const;

  size_t size() const { return materialized_.size(); }

 private:
  std::vector<Change> changelog_;
  std::map<Tuple, Tuple> materialized_;
};

}  // namespace cq

#endif  // CQ_DUALITY_KSTREAM_H_

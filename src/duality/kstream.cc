#include "duality/kstream.h"

#include <algorithm>

namespace cq {

KStream KStream::From(BoundedStream stream) {
  return KStream(stream.Sorted());
}

KStream KStream::Filter(const std::function<bool(const Tuple&)>& pred) const {
  BoundedStream out(stream_.schema());
  for (const auto& e : stream_) {
    if (e.is_record() && pred(e.tuple)) out.Append(e);
  }
  return KStream(std::move(out));
}

KStream KStream::Filter(const ExprPtr& predicate) const {
  return Filter(
      [predicate](const Tuple& t) { return predicate->Matches(t); });
}

Result<KStream> KStream::Map(
    const std::function<Result<Tuple>(const Tuple&)>& fn) const {
  BoundedStream out;
  for (const auto& e : stream_) {
    if (!e.is_record()) continue;
    CQ_ASSIGN_OR_RETURN(Tuple t, fn(e.tuple));
    out.Append(std::move(t), e.timestamp);
  }
  return KStream(std::move(out));
}

Result<KStream> KStream::FlatMap(
    const std::function<Result<std::vector<Tuple>>(const Tuple&)>& fn) const {
  BoundedStream out;
  for (const auto& e : stream_) {
    if (!e.is_record()) continue;
    CQ_ASSIGN_OR_RETURN(std::vector<Tuple> ts, fn(e.tuple));
    for (auto& t : ts) out.Append(std::move(t), e.timestamp);
  }
  return KStream(std::move(out));
}

KStream KStream::Merge(const KStream& other) const {
  BoundedStream out = stream_;
  for (const auto& e : other.stream_) out.Append(e);
  return KStream(out.Sorted());
}

KGroupedStream KStream::GroupBy(std::vector<size_t> key_indexes) const {
  return KGroupedStream(&stream_, std::move(key_indexes));
}

Result<KStream> KStream::JoinTable(const KTable& table,
                                   std::vector<size_t> key_indexes) const {
  // Both sides time-ordered: advance a changelog cursor as records arrive so
  // each record sees the table as of its own timestamp.
  std::map<Tuple, Tuple> view;
  const auto& changelog = table.Changelog();
  size_t cursor = 0;
  BoundedStream out;
  for (const auto& e : stream_) {
    if (!e.is_record()) continue;
    while (cursor < changelog.size() && changelog[cursor].ts <= e.timestamp) {
      const Change& c = changelog[cursor++];
      if (c.is_tombstone()) {
        view.erase(c.key);
      } else {
        view[c.key] = *c.value;
      }
    }
    Tuple key = e.tuple.Project(key_indexes);
    auto it = view.find(key);
    if (it == view.end()) continue;  // inner join
    out.Append(Tuple::Concat(e.tuple, it->second), e.timestamp);
  }
  return KStream(std::move(out));
}

namespace {

/// Shared engine for per-key stream aggregation: emits a changelog entry for
/// every input record (continuous refinement, the table picture of an
/// aggregation).
Result<KTable> AggregateImpl(
    const BoundedStream& stream, const std::vector<size_t>& key_indexes,
    AggregateKind kind, const ExprPtr& input,
    const WindowAssigner* assigner /* nullptr = global */) {
  auto func = AggregateFunction::Make(kind);
  std::map<Tuple, AggState> states;
  std::vector<Change> changelog;
  for (const auto& e : stream) {
    if (!e.is_record()) continue;
    Value in(static_cast<int64_t>(1));
    if (input != nullptr) {
      CQ_ASSIGN_OR_RETURN(in, input->Eval(e.tuple));
    }
    std::vector<TimeInterval> windows;
    if (assigner != nullptr) {
      windows = assigner->AssignWindows(e.timestamp);
    } else {
      windows.push_back({kMinTimestamp, kMaxTimestamp});
    }
    for (const TimeInterval& w : windows) {
      Tuple key = e.tuple.Project(key_indexes);
      if (assigner != nullptr) {
        std::vector<Value> kv = key.values();
        kv.push_back(Value(w.start));
        kv.push_back(Value(w.end));
        key = Tuple(std::move(kv));
      }
      auto [it, inserted] = states.try_emplace(key, func->Identity());
      it->second = func->Combine(it->second, func->Lift(in));
      changelog.push_back(
          {it->first, Tuple({func->Lower(it->second)}), e.timestamp});
    }
  }
  return KTable::FromChangelog(std::move(changelog));
}

}  // namespace

Result<KTable> KGroupedStream::Count() const {
  return AggregateImpl(*stream_, key_indexes_, AggregateKind::kCount, nullptr,
                       nullptr);
}

Result<KTable> KGroupedStream::Aggregate(AggregateKind kind,
                                         const ExprPtr& input) const {
  return AggregateImpl(*stream_, key_indexes_, kind, input, nullptr);
}

Result<KTable> KGroupedStream::Reduce(
    const std::function<Result<Tuple>(const Tuple&, const Tuple&)>& fn) const {
  std::map<Tuple, Tuple> states;
  std::vector<Change> changelog;
  for (const auto& e : *stream_) {
    if (!e.is_record()) continue;
    Tuple key = e.tuple.Project(key_indexes_);
    auto it = states.find(key);
    if (it == states.end()) {
      states.emplace(key, e.tuple);
      changelog.push_back({key, e.tuple, e.timestamp});
    } else {
      CQ_ASSIGN_OR_RETURN(Tuple reduced, fn(it->second, e.tuple));
      it->second = reduced;
      changelog.push_back({key, std::move(reduced), e.timestamp});
    }
  }
  return KTable::FromChangelog(std::move(changelog));
}

Result<KTable> KGroupedStream::WindowedAggregate(const WindowAssigner& assigner,
                                                 AggregateKind kind,
                                                 const ExprPtr& input) const {
  return AggregateImpl(*stream_, key_indexes_, kind, input, &assigner);
}

KTable KTable::FromChangelog(std::vector<Change> changelog) {
  std::stable_sort(changelog.begin(), changelog.end(),
                   [](const Change& a, const Change& b) { return a.ts < b.ts; });
  KTable table;
  for (const auto& c : changelog) {
    if (c.is_tombstone()) {
      table.materialized_.erase(c.key);
    } else {
      table.materialized_[c.key] = *c.value;
    }
  }
  table.changelog_ = std::move(changelog);
  return table;
}

std::map<Tuple, Tuple> KTable::AsOf(Timestamp ts) const {
  std::map<Tuple, Tuple> view;
  for (const auto& c : changelog_) {
    if (c.ts > ts) break;
    if (c.is_tombstone()) {
      view.erase(c.key);
    } else {
      view[c.key] = *c.value;
    }
  }
  return view;
}

KTable KTable::Filter(const std::function<bool(const Tuple& key,
                                               const Tuple& value)>& pred)
    const {
  std::vector<Change> out;
  // Track which keys are currently *in* the filtered view so that a change
  // from passing to failing emits a tombstone (the table-filter semantics
  // that distinguish it from a stream filter).
  std::map<Tuple, bool> present;
  for (const auto& c : changelog_) {
    if (c.is_tombstone()) {
      if (present.count(c.key) && present[c.key]) {
        out.push_back(c);
      }
      present[c.key] = false;
      continue;
    }
    bool pass = pred(c.key, *c.value);
    if (pass) {
      out.push_back(c);
      present[c.key] = true;
    } else if (present.count(c.key) && present[c.key]) {
      out.push_back({c.key, std::nullopt, c.ts});  // leaves the view
      present[c.key] = false;
    }
  }
  return FromChangelog(std::move(out));
}

Result<KTable> KTable::MapValues(
    const std::function<Result<Tuple>(const Tuple&)>& fn) const {
  std::vector<Change> out;
  out.reserve(changelog_.size());
  for (const auto& c : changelog_) {
    if (c.is_tombstone()) {
      out.push_back(c);
      continue;
    }
    CQ_ASSIGN_OR_RETURN(Tuple mapped, fn(*c.value));
    out.push_back({c.key, std::move(mapped), c.ts});
  }
  return FromChangelog(std::move(out));
}

KStream KTable::ToStream() const {
  BoundedStream out;
  for (const auto& c : changelog_) {
    if (c.is_tombstone()) continue;
    out.Append(Tuple::Concat(c.key, *c.value), c.ts);
  }
  return KStream::From(std::move(out));
}

}  // namespace cq

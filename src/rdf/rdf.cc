#include "rdf/rdf.h"

#include <algorithm>
#include <set>

namespace cq {

std::string RdfTerm::ToString() const {
  switch (kind) {
    case Kind::kIri:
      return "<" + text + ">";
    case Kind::kLiteral:
      return "\"" + text + "\"";
    case Kind::kBlank:
      return "_:" + text;
  }
  return "?";
}

Value RdfTerm::ToValue() const {
  char tag = 'I';
  if (kind == Kind::kLiteral) tag = 'L';
  if (kind == Kind::kBlank) tag = 'B';
  return Value(std::string(1, tag) + text);
}

Result<RdfTerm> RdfTerm::FromValue(const Value& v) {
  if (!v.is_string() || v.string_value().empty()) {
    return Status::TypeError("not an encoded RDF term: " + v.ToString());
  }
  const std::string& s = v.string_value();
  RdfTerm out;
  switch (s[0]) {
    case 'I':
      out.kind = Kind::kIri;
      break;
    case 'L':
      out.kind = Kind::kLiteral;
      break;
    case 'B':
      out.kind = Kind::kBlank;
      break;
    default:
      return Status::TypeError("unknown RDF term tag in " + s);
  }
  out.text = s.substr(1);
  return out;
}

std::string RdfTriple::ToString() const {
  return subject.ToString() + " " + predicate.ToString() + " " +
         object.ToString() + " .";
}

Tuple RdfTriple::ToTuple() const {
  return Tuple({subject.ToValue(), predicate.ToValue(), object.ToValue()});
}

Result<RdfTriple> RdfTriple::FromTuple(const Tuple& t) {
  if (t.size() != 3) {
    return Status::TypeError("RDF triple tuple must have arity 3");
  }
  RdfTriple out;
  CQ_ASSIGN_OR_RETURN(out.subject, RdfTerm::FromValue(t[0]));
  CQ_ASSIGN_OR_RETURN(out.predicate, RdfTerm::FromValue(t[1]));
  CQ_ASSIGN_OR_RETURN(out.object, RdfTerm::FromValue(t[2]));
  return out;
}

SchemaPtr RdfStream::TupleSchema() {
  return Schema::Make({{"s", ValueType::kString},
                       {"p", ValueType::kString},
                       {"o", ValueType::kString}});
}

namespace {

const PatternTerm* PositionsOf(const TriplePattern& p, size_t i) {
  switch (i) {
    case 0:
      return &p.subject;
    case 1:
      return &p.predicate;
    default:
      return &p.object;
  }
}

}  // namespace

Result<CompiledRspQuery> CompileRspQuery(const RspQuery& rsp) {
  if (rsp.pattern.empty()) {
    return Status::PlanError("RSP query needs at least one triple pattern");
  }

  // var -> column index in the accumulated plan's schema.
  std::map<std::string, size_t> var_columns;
  RelOpPtr plan;

  for (size_t i = 0; i < rsp.pattern.size(); ++i) {
    const TriplePattern& pattern = rsp.pattern[i];
    RelOpPtr scan = RelOp::Scan(
        i, RdfStream::TupleSchema()->Qualified("t" + std::to_string(i)));

    // Selections for constant positions and intra-pattern repeated
    // variables.
    ExprPtr local_pred;
    std::map<std::string, size_t> local_vars;  // var -> position 0..2
    for (size_t pos = 0; pos < 3; ++pos) {
      const PatternTerm& term = *PositionsOf(pattern, pos);
      if (!term.is_variable()) {
        ExprPtr eq = Eq(Col(pos), Lit(term.term->ToValue()));
        local_pred = local_pred ? And(local_pred, eq) : eq;
        continue;
      }
      if (term.variable.empty()) {
        return Status::PlanError("pattern variable must have a name");
      }
      auto it = local_vars.find(term.variable);
      if (it != local_vars.end()) {
        ExprPtr eq = Eq(Col(it->second), Col(pos));
        local_pred = local_pred ? And(local_pred, eq) : eq;
      } else {
        local_vars.emplace(term.variable, pos);
      }
    }
    if (local_pred != nullptr) {
      CQ_ASSIGN_OR_RETURN(scan, RelOp::Select(scan, local_pred));
    }

    if (plan == nullptr) {
      plan = scan;
      for (const auto& [var, pos] : local_vars) {
        var_columns.emplace(var, pos);
      }
      continue;
    }

    // Join on variables shared with the accumulated plan.
    std::vector<size_t> left_keys, right_keys;
    size_t offset = plan->schema()->num_fields();
    for (const auto& [var, pos] : local_vars) {
      auto bound = var_columns.find(var);
      if (bound != var_columns.end()) {
        left_keys.push_back(bound->second);
        right_keys.push_back(pos);
      }
    }
    if (left_keys.empty()) {
      // No shared variables: cartesian product.
      CQ_ASSIGN_OR_RETURN(plan, RelOp::ThetaJoin(plan, scan, nullptr));
    } else {
      CQ_ASSIGN_OR_RETURN(plan,
                          RelOp::Join(plan, scan, left_keys, right_keys));
    }
    for (const auto& [var, pos] : local_vars) {
      var_columns.emplace(var, offset + pos);  // first binding wins
    }
  }

  // Projection onto the answer variables.
  std::vector<std::string> variables = rsp.projection;
  if (variables.empty()) {
    for (const auto& [var, col] : var_columns) variables.push_back(var);
  }
  std::vector<ExprPtr> projections;
  std::vector<Field> fields;
  for (const auto& var : variables) {
    auto it = var_columns.find(var);
    if (it == var_columns.end()) {
      return Status::PlanError("projection variable " + var +
                               " does not occur in the pattern");
    }
    projections.push_back(Col(it->second, var));
    fields.push_back({var, ValueType::kString});
  }
  CQ_ASSIGN_OR_RETURN(plan, RelOp::Project(plan, std::move(projections),
                                           std::move(fields)));
  // SPARQL SELECT is set semantics per instantaneous graph.
  CQ_ASSIGN_OR_RETURN(plan, RelOp::Distinct(plan));

  CompiledRspQuery out;
  out.query.plan = plan;
  out.query.output = rsp.output;
  out.query.input_windows.assign(rsp.pattern.size(), rsp.window);
  out.variables = std::move(variables);
  return out;
}

Result<RdfBinding> CompiledRspQuery::DecodeRow(const Tuple& t) const {
  if (t.size() != variables.size()) {
    return Status::TypeError("row arity does not match variables");
  }
  RdfBinding out;
  for (size_t i = 0; i < variables.size(); ++i) {
    CQ_ASSIGN_OR_RETURN(RdfTerm term, RdfTerm::FromValue(t[i]));
    out.emplace(variables[i], std::move(term));
  }
  return out;
}

Result<std::vector<std::pair<RdfBinding, Timestamp>>> ExecuteRspQuery(
    const RspQuery& rsp, const RdfStream& stream) {
  CQ_ASSIGN_OR_RETURN(CompiledRspQuery compiled, CompileRspQuery(rsp));
  // Every pattern reads the same (windowed) stream.
  std::vector<const BoundedStream*> inputs(
      compiled.query.input_windows.size(), &stream.stream());
  std::vector<Timestamp> ticks =
      ReferenceExecutor::DefaultTicks(compiled.query, inputs);
  CQ_ASSIGN_OR_RETURN(BoundedStream out,
                      ReferenceExecutor::Execute(compiled.query, inputs,
                                                 ticks));
  std::vector<std::pair<RdfBinding, Timestamp>> bindings;
  for (const auto& e : out) {
    if (!e.is_record()) continue;
    CQ_ASSIGN_OR_RETURN(RdfBinding b, compiled.DecodeRow(e.tuple));
    bindings.emplace_back(std::move(b), e.timestamp);
  }
  return bindings;
}

}  // namespace cq

#ifndef CQ_RDF_RDF_H_
#define CQ_RDF_RDF_H_

/// \file rdf.h
/// \brief RDF streams and continuous basic-graph-pattern queries
/// (paper §5.2, the Semantic Web lineage: RSP-QL [34], RSP4J [83]).
///
/// RDF Stream Processing extends SPARQL with CQL's S2R/R2S operator classes:
/// a window turns a stream of timestamped triples into an instantaneous RDF
/// graph, a basic graph pattern (BGP) is matched against it, and an R2S
/// operator streams the binding changes out. Following RSP4J's design — which
/// the survey describes as generalising the computational approach by
/// borrowing from Streaming Systems and CQL — this module *compiles* BGPs
/// onto the relational engine: triples become 3-tuples, each pattern becomes
/// a selection over a scan, shared variables become equi-join keys, and the
/// projection extracts the answer variables. Every engine facility
/// (reference semantics, incremental evaluation, optimisation) then applies
/// to RDF streams unchanged.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "cql/continuous_query.h"
#include "stream/stream.h"

namespace cq {

/// \brief An RDF term: IRI, literal, or blank node. (Plain strings; datatype
/// machinery is out of scope for the engine's purposes.)
struct RdfTerm {
  enum class Kind { kIri, kLiteral, kBlank };
  Kind kind = Kind::kIri;
  std::string text;

  static RdfTerm Iri(std::string iri) {
    return {Kind::kIri, std::move(iri)};
  }
  static RdfTerm Literal(std::string value) {
    return {Kind::kLiteral, std::move(value)};
  }
  static RdfTerm Blank(std::string label) {
    return {Kind::kBlank, std::move(label)};
  }

  bool operator==(const RdfTerm& other) const = default;
  bool operator<(const RdfTerm& other) const {
    if (kind != other.kind) return kind < other.kind;
    return text < other.text;
  }

  /// \brief Turtle-ish rendering: <iri>, "literal", _:blank.
  std::string ToString() const;

  /// \brief Engine encoding: a tagged string Value.
  Value ToValue() const;
  static Result<RdfTerm> FromValue(const Value& v);
};

/// \brief One RDF triple.
struct RdfTriple {
  RdfTerm subject;
  RdfTerm predicate;
  RdfTerm object;

  bool operator==(const RdfTriple& other) const = default;
  std::string ToString() const;

  /// \brief Engine encoding: the 3-tuple (s, p, o).
  Tuple ToTuple() const;
  static Result<RdfTriple> FromTuple(const Tuple& t);
};

/// \brief A timestamped RDF stream (RSP input).
class RdfStream {
 public:
  void Append(RdfTriple triple, Timestamp ts) {
    stream_.Append(triple.ToTuple(), ts);
  }
  const BoundedStream& stream() const { return stream_; }
  size_t size() const { return stream_.num_records(); }

  /// \brief Schema of the tuple encoding: (s STRING, p STRING, o STRING).
  static SchemaPtr TupleSchema();

 private:
  BoundedStream stream_;
};

/// \brief A position in a triple pattern: a constant term or a variable.
struct PatternTerm {
  std::optional<RdfTerm> term;  // constant when set
  std::string variable;         // "?name" when term is unset

  static PatternTerm Const(RdfTerm t) { return {std::move(t), ""}; }
  static PatternTerm Var(std::string name) {
    return {std::nullopt, std::move(name)};
  }
  bool is_variable() const { return !term.has_value(); }
};

/// \brief A triple pattern of a BGP.
struct TriplePattern {
  PatternTerm subject;
  PatternTerm predicate;
  PatternTerm object;
};

/// \brief A basic graph pattern: conjunctive triple patterns over shared
/// variables.
using BasicGraphPattern = std::vector<TriplePattern>;

/// \brief One query answer: variable name -> bound term.
using RdfBinding = std::map<std::string, RdfTerm>;

/// \brief A continuous RDF query in RSP-QL shape: window + BGP + projection
/// + R2S operator.
struct RspQuery {
  /// Window over the triple stream (RSP-QL's FROM NAMED WINDOW).
  S2RSpec window = S2RSpec::Unbounded();
  BasicGraphPattern pattern;
  /// Answer variables, in output order (SELECT ?x ?y). Empty = all
  /// variables, sorted.
  std::vector<std::string> projection;
  R2SKind output = R2SKind::kIStream;
};

/// \brief A compiled continuous RDF query: the relational plan plus the
/// variable layout of its output.
struct CompiledRspQuery {
  ContinuousQuery query;
  std::vector<std::string> variables;  // output column -> variable name

  /// \brief Decodes an output tuple into a binding.
  Result<RdfBinding> DecodeRow(const Tuple& t) const;
};

/// \brief Compiles an RSP query onto the relational engine: one Scan of the
/// triple stream per pattern (slots share input 0's stream via identical
/// windows), selections for constant positions, equi-joins on shared
/// variables, projection onto the answer variables.
Result<CompiledRspQuery> CompileRspQuery(const RspQuery& query);

/// \brief Convenience: continuous evaluation over a bounded RDF stream —
/// bindings produced per tick, via the reference executor.
Result<std::vector<std::pair<RdfBinding, Timestamp>>> ExecuteRspQuery(
    const RspQuery& query, const RdfStream& stream);

}  // namespace cq

#endif  // CQ_RDF_RDF_H_

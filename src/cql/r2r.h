#ifndef CQ_CQL_R2R_H_
#define CQ_CQL_R2R_H_

/// \file r2r.h
/// \brief Relation-to-Relation operators (paper §3.1, CQL's R2R class).
///
/// R2R operators derive a new time-varying relation from one or more others.
/// Instant-by-instant they are ordinary bag-relational operators, so we
/// implement them over MultisetRelation. All of Select/Project/Join/Union
/// are *linear* (respectively bilinear) in multiplicities — they are defined
/// on Z-sets with negative counts too, which is exactly the property that
/// incremental view maintenance (§5.1) exploits.

#include <memory>
#include <vector>

#include "common/status.h"
#include "cql/expr.h"
#include "relation/relation.h"
#include "window/aggregate.h"

namespace cq {

/// \brief Bag selection: keeps tuples matching the predicate.
/// Linear: Select(a + b) = Select(a) + Select(b).
Result<MultisetRelation> SelectOp(const MultisetRelation& rel,
                                  const Expr& predicate);

/// \brief Bag projection: evaluates the expression list per tuple.
/// Linear in multiplicities.
Result<MultisetRelation> ProjectOp(const MultisetRelation& rel,
                                   const std::vector<ExprPtr>& exprs);

/// \brief Theta join (nested loops): concatenates tuple pairs matching the
/// predicate; output multiplicity is the product. Bilinear.
Result<MultisetRelation> ThetaJoinOp(const MultisetRelation& left,
                                     const MultisetRelation& right,
                                     const Expr* predicate);

/// \brief Hash equi-join on key columns, plus an optional residual
/// predicate. Bilinear; equivalent to ThetaJoinOp with the corresponding
/// conjunction but O(|L| + |R| + |out|).
Result<MultisetRelation> HashJoinOp(const MultisetRelation& left,
                                    const MultisetRelation& right,
                                    const std::vector<size_t>& left_keys,
                                    const std::vector<size_t>& right_keys,
                                    const Expr* residual);

/// \brief Bag union: pointwise multiplicity sum (Z-set Plus).
MultisetRelation UnionOp(const MultisetRelation& a, const MultisetRelation& b);

/// \brief Bag difference with floor at zero (SQL EXCEPT ALL): multiplicity
/// max(a - b, 0). Non-linear and non-monotonic.
MultisetRelation ExceptOp(const MultisetRelation& a, const MultisetRelation& b);

/// \brief Bag intersection: multiplicity min(a, b). Monotonic, non-linear.
MultisetRelation IntersectOp(const MultisetRelation& a,
                             const MultisetRelation& b);

/// \brief Set-semantics duplicate elimination of the positive part.
MultisetRelation DistinctOp(const MultisetRelation& rel);

/// \brief One aggregate column specification.
struct AggSpec {
  AggregateKind kind = AggregateKind::kCount;
  /// Input expression; nullptr means COUNT(*) (count rows).
  ExprPtr input;
  std::string output_name;
};

/// \brief Grouped aggregation. Output tuples are (group key columns...,
/// aggregate values...). Defined over the positive part of the relation;
/// groups are set-keyed (each group appears once). With empty
/// `group_indexes` produces a single global row (even for empty input,
/// matching SQL's scalar aggregate).
Result<MultisetRelation> AggregateOp(const MultisetRelation& rel,
                                     const std::vector<size_t>& group_indexes,
                                     const std::vector<AggSpec>& aggs);

}  // namespace cq

#endif  // CQ_CQL_R2R_H_

#ifndef CQ_CQL_EXPR_H_
#define CQ_CQL_EXPR_H_

/// \file expr.h
/// \brief Scalar expressions evaluated against tuples.
///
/// Expressions appear in R2R operators (selection predicates, projection
/// lists, join conditions) and are produced by the SQL frontend. They are
/// resolved: column references carry field indexes, bound against a schema
/// at plan time.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace cq {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief Binary operators supported in expressions.
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpToString(BinaryOp op);

/// \brief Whether the operator yields a BOOL.
bool IsPredicateOp(BinaryOp op);

/// \brief Base class of the expression tree.
class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kBinary, kNot, kNeg, kIsNull };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;

  /// \brief Evaluates against a tuple. Errors on type mismatches and
  /// out-of-range column references.
  virtual Result<Value> Eval(const Tuple& tuple) const = 0;

  virtual std::string ToString() const = 0;

  /// \brief Field indexes referenced anywhere in this expression.
  virtual void CollectColumns(std::vector<size_t>* out) const = 0;

  /// \brief Convenience: evaluates a predicate expression; non-BOOL results
  /// and NULL evaluate to false (SQL three-valued logic collapsed to
  /// two-valued acceptance).
  bool Matches(const Tuple& tuple) const {
    Result<Value> r = Eval(tuple);
    return r.ok() && r->is_bool() && r->bool_value();
  }
};

/// \brief Reference to a column by position (name retained for printing).
class ColumnRef : public Expr {
 public:
  ColumnRef(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Kind kind() const override { return Kind::kColumn; }
  Result<Value> Eval(const Tuple& tuple) const override {
    if (index_ >= tuple.size()) {
      return Status::OutOfRange("column index " + std::to_string(index_) +
                                " out of range for tuple of arity " +
                                std::to_string(tuple.size()));
    }
    return tuple.at(index_);
  }
  std::string ToString() const override { return name_; }
  void CollectColumns(std::vector<size_t>* out) const override {
    out->push_back(index_);
  }

  size_t index() const { return index_; }
  const std::string& name() const { return name_; }

 private:
  size_t index_;
  std::string name_;
};

/// \brief A constant.
class Literal : public Expr {
 public:
  explicit Literal(Value v) : value_(std::move(v)) {}

  Kind kind() const override { return Kind::kLiteral; }
  Result<Value> Eval(const Tuple&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::vector<size_t>*) const override {}

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// \brief Binary operation node.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Kind kind() const override { return Kind::kBinary; }
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override {
    return "(" + left_->ToString() + " " + BinaryOpToString(op_) + " " +
           right_->ToString() + ")";
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// \brief Logical negation.
class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  Kind kind() const override { return Kind::kNot; }
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override {
    return "NOT " + inner_->ToString();
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    inner_->CollectColumns(out);
  }
  const ExprPtr& inner() const { return inner_; }

 private:
  ExprPtr inner_;
};

/// \brief Arithmetic negation.
class NegExpr : public Expr {
 public:
  explicit NegExpr(ExprPtr inner) : inner_(std::move(inner)) {}
  Kind kind() const override { return Kind::kNeg; }
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override { return "-" + inner_->ToString(); }
  void CollectColumns(std::vector<size_t>* out) const override {
    inner_->CollectColumns(out);
  }
  const ExprPtr& inner() const { return inner_; }

 private:
  ExprPtr inner_;
};

/// \brief IS NULL / IS NOT NULL test.
class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr inner, bool negated)
      : inner_(std::move(inner)), negated_(negated) {}
  Kind kind() const override { return Kind::kIsNull; }
  Result<Value> Eval(const Tuple& tuple) const override;
  std::string ToString() const override {
    return inner_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    inner_->CollectColumns(out);
  }
  const ExprPtr& inner() const { return inner_; }
  bool negated() const { return negated_; }

 private:
  ExprPtr inner_;
  bool negated_;
};

// Convenience factories, heavily used by tests and examples.
ExprPtr Col(size_t index, std::string name = "");
ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);

}  // namespace cq

#endif  // CQ_CQL_EXPR_H_

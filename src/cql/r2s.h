#ifndef CQ_CQL_R2S_H_
#define CQ_CQL_R2S_H_

/// \file r2s.h
/// \brief Relation-to-Stream operators (paper §3.1, CQL's R2S class).
///
/// R2S operators turn a time-varying relation back into a stream:
///  - IStream: at each instant, the tuples *inserted* since the previous one;
///  - DStream: at each instant, the tuples *deleted* since the previous one;
///  - RStream: at each instant, the entire instantaneous relation.
/// The IStream/DStream pair is exactly the positive/negative decomposition of
/// consecutive Z-set differences — the duality the survey highlights between
/// R2R and R2S results.

#include <vector>

#include "common/time.h"
#include "relation/relation.h"
#include "stream/stream.h"

namespace cq {

enum class R2SKind {
  kIStream,
  kDStream,
  kRStream,
  /// No R2S operator: the query's result stays a time-varying relation
  /// (the second case of CQL's result definition).
  kRelation,
};

const char* R2SKindToString(R2SKind kind);

/// \brief Applies an R2S operator to a time-varying relation, producing the
/// output stream observed at the given instants (ascending). Each emitted
/// tuple appears with multiplicity-many records at the instant.
///
/// For IStream/DStream the difference at instants[0] is taken against the
/// empty relation (the relation before the query started).
BoundedStream ApplyR2S(const TimeVaryingRelation& rel, R2SKind kind,
                       const std::vector<Timestamp>& instants);

/// \brief Incremental single-step form: given the previous instantaneous
/// relation and the current one, the records an R2S operator emits at `tau`.
std::vector<StreamElement> R2SStep(const MultisetRelation& previous,
                                   const MultisetRelation& current,
                                   R2SKind kind, Timestamp tau);

}  // namespace cq

#endif  // CQ_CQL_R2S_H_

#include "cql/provenance.h"

#include <algorithm>

namespace cq {

MultisetRelation ProvenanceRelation::ToRelation() const {
  MultisetRelation out;
  for (const auto& [t, prov] : entries_) out.Add(t, 1);
  return out;
}

ProvenanceRelation BaseProvenance(uint32_t slot, const MultisetRelation& rel) {
  ProvenanceRelation out;
  uint64_t seq = 0;
  for (const auto& [t, count] : rel.entries()) {
    if (count <= 0) continue;
    out.Add(t, Witness{BaseTupleId{slot, seq}});
    ++seq;
  }
  return out;
}

namespace {

Witness UnionWitness(const Witness& a, const Witness& b) {
  Witness out = a;
  out.insert(b.begin(), b.end());
  return out;
}

/// Pairwise union of two alternative sets (join-style combination).
WhyProvenance CrossCombine(const WhyProvenance& a, const WhyProvenance& b) {
  WhyProvenance out;
  for (const auto& wa : a) {
    for (const auto& wb : b) {
      out.insert(UnionWitness(wa, wb));
    }
  }
  return out;
}

}  // namespace

Result<ProvenanceRelation> EvalWithProvenance(
    const RelOp& plan, const std::vector<ProvenanceRelation>& inputs) {
  ProvenanceRelation out;
  switch (plan.kind()) {
    case RelOpKind::kScan: {
      if (plan.input_index() >= inputs.size()) {
        return Status::PlanError("provenance: unbound input slot");
      }
      return inputs[plan.input_index()];
    }
    case RelOpKind::kSelect: {
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation child,
                          EvalWithProvenance(*plan.children()[0], inputs));
      for (const auto& [t, prov] : child.entries()) {
        CQ_ASSIGN_OR_RETURN(Value v, plan.predicate()->Eval(t));
        if (v.is_bool() && v.bool_value()) out.AddAll(t, prov);
      }
      return out;
    }
    case RelOpKind::kProject: {
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation child,
                          EvalWithProvenance(*plan.children()[0], inputs));
      for (const auto& [t, prov] : child.entries()) {
        std::vector<Value> vals;
        vals.reserve(plan.projections().size());
        for (const auto& e : plan.projections()) {
          CQ_ASSIGN_OR_RETURN(Value v, e->Eval(t));
          vals.push_back(std::move(v));
        }
        out.AddAll(Tuple(std::move(vals)), prov);
      }
      return out;
    }
    case RelOpKind::kJoin:
    case RelOpKind::kThetaJoin: {
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation left,
                          EvalWithProvenance(*plan.children()[0], inputs));
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation right,
                          EvalWithProvenance(*plan.children()[1], inputs));
      for (const auto& [lt, lprov] : left.entries()) {
        for (const auto& [rt, rprov] : right.entries()) {
          Tuple joined = Tuple::Concat(lt, rt);
          if (plan.kind() == RelOpKind::kJoin) {
            if (lt.Project(plan.left_keys()) != rt.Project(plan.right_keys())) {
              continue;
            }
          }
          if (plan.predicate() != nullptr) {
            CQ_ASSIGN_OR_RETURN(Value v, plan.predicate()->Eval(joined));
            if (!(v.is_bool() && v.bool_value())) continue;
          }
          out.AddAll(joined, CrossCombine(lprov, rprov));
        }
      }
      return out;
    }
    case RelOpKind::kUnion: {
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation left,
                          EvalWithProvenance(*plan.children()[0], inputs));
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation right,
                          EvalWithProvenance(*plan.children()[1], inputs));
      for (const auto& [t, prov] : left.entries()) out.AddAll(t, prov);
      for (const auto& [t, prov] : right.entries()) out.AddAll(t, prov);
      return out;
    }
    case RelOpKind::kDistinct: {
      return EvalWithProvenance(*plan.children()[0], inputs);
    }
    case RelOpKind::kIntersect: {
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation left,
                          EvalWithProvenance(*plan.children()[0], inputs));
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation right,
                          EvalWithProvenance(*plan.children()[1], inputs));
      for (const auto& [t, lprov] : left.entries()) {
        const WhyProvenance* rprov = right.Find(t);
        if (rprov == nullptr) continue;
        out.AddAll(t, CrossCombine(lprov, *rprov));
      }
      return out;
    }
    case RelOpKind::kExcept: {
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation left,
                          EvalWithProvenance(*plan.children()[0], inputs));
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation right,
                          EvalWithProvenance(*plan.children()[1], inputs));
      for (const auto& [t, prov] : left.entries()) {
        if (!right.Contains(t)) out.AddAll(t, prov);
      }
      return out;
    }
    case RelOpKind::kAggregate: {
      CQ_ASSIGN_OR_RETURN(ProvenanceRelation child,
                          EvalWithProvenance(*plan.children()[0], inputs));
      // Group tuples; aggregate values come from the plain evaluation over
      // the distinct support (provenance evaluation is set semantics).
      CQ_ASSIGN_OR_RETURN(
          MultisetRelation agg_result,
          AggregateOp(child.ToRelation(), plan.group_indexes(), plan.aggs()));
      // Witness per output row: union of all witnesses of the group's
      // contributing tuples.
      std::map<Tuple, Witness> group_witness;
      for (const auto& [t, prov] : child.entries()) {
        Tuple key = t.Project(plan.group_indexes());
        Witness& w = group_witness[key];
        for (const auto& alt : prov) w.insert(alt.begin(), alt.end());
      }
      size_t num_groups = plan.group_indexes().size();
      for (const auto& [row, count] : agg_result.entries()) {
        std::vector<Value> key_vals(row.values().begin(),
                                    row.values().begin() +
                                        static_cast<long>(num_groups));
        Tuple key{std::vector<Value>(key_vals)};
        auto it = group_witness.find(key);
        out.Add(row, it == group_witness.end() ? Witness{} : it->second);
      }
      return out;
    }
  }
  return Status::Internal("provenance: unhandled operator");
}

Witness WitnessCore(const WhyProvenance& prov) {
  Witness core;
  bool first = true;
  for (const auto& w : prov) {
    if (first) {
      core = w;
      first = false;
      continue;
    }
    Witness next;
    std::set_intersection(core.begin(), core.end(), w.begin(), w.end(),
                          std::inserter(next, next.begin()));
    core = std::move(next);
  }
  return core;
}

}  // namespace cq

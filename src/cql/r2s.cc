#include "cql/r2s.h"

namespace cq {

const char* R2SKindToString(R2SKind kind) {
  switch (kind) {
    case R2SKind::kIStream:
      return "IStream";
    case R2SKind::kDStream:
      return "DStream";
    case R2SKind::kRStream:
      return "RStream";
    case R2SKind::kRelation:
      return "Relation";
  }
  return "?";
}

std::vector<StreamElement> R2SStep(const MultisetRelation& previous,
                                   const MultisetRelation& current,
                                   R2SKind kind, Timestamp tau) {
  std::vector<StreamElement> out;
  auto emit_bag = [&out, tau](const MultisetRelation& bag) {
    for (const auto& [t, c] : bag.entries()) {
      for (int64_t i = 0; i < c; ++i) {
        out.push_back(StreamElement::Record(t, tau));
      }
    }
  };
  switch (kind) {
    case R2SKind::kIStream:
      emit_bag(current.Minus(previous).PositivePart());
      break;
    case R2SKind::kDStream:
      emit_bag(current.Minus(previous).NegativePartAbs());
      break;
    case R2SKind::kRStream:
      emit_bag(current.PositivePart());
      break;
    case R2SKind::kRelation:
      break;  // no stream output
  }
  return out;
}

BoundedStream ApplyR2S(const TimeVaryingRelation& rel, R2SKind kind,
                       const std::vector<Timestamp>& instants) {
  BoundedStream out;
  MultisetRelation previous;
  for (Timestamp tau : instants) {
    MultisetRelation current = rel.At(tau);
    for (auto& e : R2SStep(previous, current, kind, tau)) {
      out.Append(std::move(e));
    }
    previous = std::move(current);
  }
  return out;
}

}  // namespace cq

#ifndef CQ_CQL_SNAPSHOT_H_
#define CQ_CQL_SNAPSHOT_H_

/// \file snapshot.h
/// \brief Kramer-Seeger logical streams and snapshot reducibility (§3.1).
///
/// Kramer et al. bridge streaming and temporal databases: a *logical stream*
/// carries tuples with validity intervals; the *timeslice* operation takes
/// the snapshot at an instant. An operator over logical streams is
/// *snapshot-reducible* (Definition 3.2) to its multiset counterpart when
/// timeslice commutes with it at every instant. We implement logical-stream
/// counterparts of the core operators and a checker that verifies
/// Definition 3.2 on concrete inputs — used by the property-test suite to
/// certify each operator individually, as the paper describes.

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "cql/expr.h"
#include "cql/r2r.h"
#include "relation/relation.h"

namespace cq {

/// \brief One element of a logical stream: a tuple valid on [start, end).
struct LogicalElement {
  Tuple tuple;
  TimeInterval validity;
};

/// \brief A logical stream: a multiset of validity-stamped tuples.
class LogicalStream {
 public:
  LogicalStream() = default;

  void Add(Tuple t, TimeInterval validity) {
    if (!validity.Empty()) elements_.push_back({std::move(t), validity});
  }

  const std::vector<LogicalElement>& elements() const { return elements_; }
  size_t size() const { return elements_.size(); }

  /// \brief The timeslice operation: the instantaneous multiset at `tau`.
  MultisetRelation SnapshotAt(Timestamp tau) const;

  /// \brief All interval endpoints — the instants where a snapshot can
  /// change (sorted, deduplicated).
  std::vector<Timestamp> Endpoints() const;

 private:
  std::vector<LogicalElement> elements_;
};

/// \brief Logical-stream selection: filters tuples, keeps validity.
Result<LogicalStream> SelectLS(const LogicalStream& s, const Expr& predicate);

/// \brief Logical-stream projection: maps tuples, keeps validity.
Result<LogicalStream> ProjectLS(const LogicalStream& s,
                                const std::vector<ExprPtr>& exprs);

/// \brief Logical-stream theta join: output validity is the intersection of
/// the operands' validities (empty intersections produce nothing).
Result<LogicalStream> JoinLS(const LogicalStream& a, const LogicalStream& b,
                             const Expr* predicate);

/// \brief Logical-stream union: concatenation.
LogicalStream UnionLS(const LogicalStream& a, const LogicalStream& b);

/// \brief A windowing operation expressed as a logical-stream transform:
/// replaces each element's validity with [start, start + range) — the
/// time-based sliding window as validity assignment. (This is how Kramer et
/// al. express windows as stream properties rather than operators.)
LogicalStream WindowLS(const LogicalStream& s, Duration range);

/// \brief Verifies Definition 3.2 for a unary operator on a concrete input:
/// for every instant in `instants`, snapshot(op_ls(S)) == op_ms(snapshot(S)).
/// Returns OK when reducible, Internal with a counterexample otherwise.
Status CheckSnapshotReducibleUnary(
    const LogicalStream& input,
    const std::function<Result<LogicalStream>(const LogicalStream&)>& op_ls,
    const std::function<Result<MultisetRelation>(const MultisetRelation&)>&
        op_ms,
    const std::vector<Timestamp>& instants);

/// \brief Binary-operator variant of the Definition 3.2 check.
Status CheckSnapshotReducibleBinary(
    const LogicalStream& a, const LogicalStream& b,
    const std::function<Result<LogicalStream>(const LogicalStream&,
                                              const LogicalStream&)>& op_ls,
    const std::function<Result<MultisetRelation>(const MultisetRelation&,
                                                 const MultisetRelation&)>&
        op_ms,
    const std::vector<Timestamp>& instants);

}  // namespace cq

#endif  // CQ_CQL_SNAPSHOT_H_

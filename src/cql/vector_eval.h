#ifndef CQ_CQL_VECTOR_EVAL_H_
#define CQ_CQL_VECTOR_EVAL_H_

/// \file vector_eval.h
/// \brief Vectorized expression evaluation over columns (survey §5).
///
/// The row path evaluates an Expr per tuple: a virtual-call tree walk with
/// std::variant dispatch and Result<Value> plumbing per record. The
/// vectorized path evaluates the same tree once per *batch*: each node
/// produces a whole Column with a typed loop, so the per-row cost collapses
/// to a few arithmetic instructions.
///
/// The contract with the row path is exact equivalence, established in two
/// steps:
///  - CanVectorize() is a per-batch "compile": given the input column types
///    it decides whether every node can run as a typed loop with semantics
///    identical to Expr::Eval — and, crucially, whether Eval could *error*
///    on any row (type mismatch, division). Expressions that could error
///    (kDiv/kMod, non-numeric arithmetic, cross-type comparisons) are
///    rejected so the operator stays on the row path; accepted expressions
///    can never fail at runtime, which is what makes in-place columnar
///    transforms safe without rollback.
///  - EvalVector() then runs the typed loops. NULL handling mirrors
///    Expr::Eval row by row (e.g. `NULL AND x` is NULL even when x is
///    false, matching the engine's short-circuit order).
///
/// All-NULL results (e.g. arithmetic over an all-NULL column) may come back
/// as *untyped* columns even when CanVectorize predicted a concrete type;
/// consumers dispatch on the runtime column type, which degrades to kNull
/// gracefully everywhere.

#include <vector>

#include "cql/expr.h"
#include "types/column.h"

namespace cq {

/// \brief The column types of a batch, in position order.
std::vector<ValueType> ColumnTypes(const std::vector<Column>& cols);

/// \brief Whether `expr` can be evaluated vectorized over columns of
/// `col_types` with semantics identical to (and no more error-prone than)
/// the row path. On success `*out_type` is the result type — kNull means
/// the result is provably all-NULL.
bool CanVectorize(const Expr& expr, const std::vector<ValueType>& col_types,
                  ValueType* out_type);

/// \brief Evaluates `expr` over all `num_rows` rows of `cols` (including
/// unselected rows — their outputs are never read downstream).
/// Precondition: CanVectorize(expr, ColumnTypes(cols), ...) returned true.
Column EvalVector(const Expr& expr, const std::vector<Column>& cols,
                  size_t num_rows);

}  // namespace cq

#endif  // CQ_CQL_VECTOR_EVAL_H_

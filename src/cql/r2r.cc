#include "cql/r2r.h"

#include <unordered_map>

namespace cq {

Result<MultisetRelation> SelectOp(const MultisetRelation& rel,
                                  const Expr& predicate) {
  MultisetRelation out;
  for (const auto& [t, c] : rel.entries()) {
    CQ_ASSIGN_OR_RETURN(Value v, predicate.Eval(t));
    if (v.is_bool() && v.bool_value()) out.Add(t, c);
  }
  return out;
}

Result<MultisetRelation> ProjectOp(const MultisetRelation& rel,
                                   const std::vector<ExprPtr>& exprs) {
  MultisetRelation out;
  for (const auto& [t, c] : rel.entries()) {
    std::vector<Value> vals;
    vals.reserve(exprs.size());
    for (const auto& e : exprs) {
      CQ_ASSIGN_OR_RETURN(Value v, e->Eval(t));
      vals.push_back(std::move(v));
    }
    out.Add(Tuple(std::move(vals)), c);
  }
  return out;
}

Result<MultisetRelation> ThetaJoinOp(const MultisetRelation& left,
                                     const MultisetRelation& right,
                                     const Expr* predicate) {
  MultisetRelation out;
  for (const auto& [lt, lc] : left.entries()) {
    for (const auto& [rt, rc] : right.entries()) {
      Tuple joined = Tuple::Concat(lt, rt);
      if (predicate != nullptr) {
        CQ_ASSIGN_OR_RETURN(Value v, predicate->Eval(joined));
        if (!(v.is_bool() && v.bool_value())) continue;
      }
      out.Add(joined, lc * rc);
    }
  }
  return out;
}

Result<MultisetRelation> HashJoinOp(const MultisetRelation& left,
                                    const MultisetRelation& right,
                                    const std::vector<size_t>& left_keys,
                                    const std::vector<size_t>& right_keys,
                                    const Expr* residual) {
  // Build on the smaller side by distinct-tuple count.
  const bool build_left = left.NumDistinct() <= right.NumDistinct();
  const MultisetRelation& build = build_left ? left : right;
  const MultisetRelation& probe = build_left ? right : left;
  const std::vector<size_t>& build_keys = build_left ? left_keys : right_keys;
  const std::vector<size_t>& probe_keys = build_left ? right_keys : left_keys;

  std::unordered_map<Tuple, std::vector<std::pair<const Tuple*, int64_t>>> ht;
  for (const auto& [t, c] : build.entries()) {
    ht[t.Project(build_keys)].emplace_back(&t, c);
  }

  MultisetRelation out;
  for (const auto& [pt, pc] : probe.entries()) {
    auto it = ht.find(pt.Project(probe_keys));
    if (it == ht.end()) continue;
    for (const auto& [bt, bc] : it->second) {
      Tuple joined =
          build_left ? Tuple::Concat(*bt, pt) : Tuple::Concat(pt, *bt);
      if (residual != nullptr) {
        CQ_ASSIGN_OR_RETURN(Value v, residual->Eval(joined));
        if (!(v.is_bool() && v.bool_value())) continue;
      }
      out.Add(joined, pc * bc);
    }
  }
  return out;
}

MultisetRelation UnionOp(const MultisetRelation& a, const MultisetRelation& b) {
  return a.Plus(b);
}

MultisetRelation ExceptOp(const MultisetRelation& a,
                          const MultisetRelation& b) {
  MultisetRelation out;
  for (const auto& [t, c] : a.entries()) {
    if (c <= 0) continue;
    int64_t bc = b.Count(t);
    int64_t keep = c - (bc > 0 ? bc : 0);
    if (keep > 0) out.Add(t, keep);
  }
  return out;
}

MultisetRelation IntersectOp(const MultisetRelation& a,
                             const MultisetRelation& b) {
  MultisetRelation out;
  for (const auto& [t, c] : a.entries()) {
    if (c <= 0) continue;
    int64_t bc = b.Count(t);
    int64_t keep = c < bc ? c : bc;
    if (keep > 0) out.Add(t, keep);
  }
  return out;
}

MultisetRelation DistinctOp(const MultisetRelation& rel) {
  return rel.Distinct();
}

Result<MultisetRelation> AggregateOp(const MultisetRelation& rel,
                                     const std::vector<size_t>& group_indexes,
                                     const std::vector<AggSpec>& aggs) {
  struct GroupState {
    std::vector<AggState> states;
  };
  // Deterministic group order via std::map keyed by group tuple.
  std::map<Tuple, GroupState> groups;

  std::vector<std::unique_ptr<AggregateFunction>> funcs;
  funcs.reserve(aggs.size());
  for (const auto& a : aggs) funcs.push_back(AggregateFunction::Make(a.kind));

  for (const auto& [t, c] : rel.entries()) {
    if (c < 0) {
      return Status::InvalidArgument(
          "AggregateOp requires a non-negative relation (got a delta); use "
          "the IVM aggregate maintainer for deltas");
    }
    Tuple key = t.Project(group_indexes);
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      it->second.states.resize(aggs.size());
      for (size_t i = 0; i < aggs.size(); ++i) {
        it->second.states[i] = funcs[i]->Identity();
      }
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      Value in;
      if (aggs[i].input == nullptr) {
        in = Value(static_cast<int64_t>(1));  // COUNT(*): count every row
      } else {
        CQ_ASSIGN_OR_RETURN(in, aggs[i].input->Eval(t));
      }
      // Bag semantics: each of the c duplicates contributes.
      AggState lifted = funcs[i]->Lift(in);
      for (int64_t k = 0; k < c; ++k) {
        it->second.states[i] = funcs[i]->Combine(it->second.states[i], lifted);
      }
    }
  }

  // SQL scalar aggregate: grouping by nothing over an empty input produces
  // one row of identity aggregates.
  if (groups.empty() && group_indexes.empty()) {
    GroupState g;
    g.states.resize(aggs.size());
    for (size_t i = 0; i < aggs.size(); ++i) g.states[i] = funcs[i]->Identity();
    groups.emplace(Tuple(), std::move(g));
  }

  MultisetRelation out;
  for (const auto& [key, g] : groups) {
    std::vector<Value> vals = key.values();
    for (size_t i = 0; i < aggs.size(); ++i) {
      vals.push_back(funcs[i]->Lower(g.states[i]));
    }
    out.Add(Tuple(std::move(vals)), 1);
  }
  return out;
}

}  // namespace cq

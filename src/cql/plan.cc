#include "cql/plan.h"

#include <algorithm>

namespace cq {

const char* RelOpKindToString(RelOpKind kind) {
  switch (kind) {
    case RelOpKind::kScan:
      return "Scan";
    case RelOpKind::kSelect:
      return "Select";
    case RelOpKind::kProject:
      return "Project";
    case RelOpKind::kJoin:
      return "HashJoin";
    case RelOpKind::kThetaJoin:
      return "ThetaJoin";
    case RelOpKind::kAggregate:
      return "Aggregate";
    case RelOpKind::kDistinct:
      return "Distinct";
    case RelOpKind::kUnion:
      return "Union";
    case RelOpKind::kExcept:
      return "Except";
    case RelOpKind::kIntersect:
      return "Intersect";
  }
  return "?";
}

RelOpPtr RelOp::Scan(size_t input_index, SchemaPtr schema) {
  auto op = RelOpPtr(new RelOp(RelOpKind::kScan));
  op->input_index_ = input_index;
  op->schema_ = std::move(schema);
  return op;
}

Result<RelOpPtr> RelOp::Select(RelOpPtr child, ExprPtr predicate) {
  if (child == nullptr || predicate == nullptr) {
    return Status::PlanError("Select requires a child and a predicate");
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kSelect));
  op->schema_ = child->schema_;
  op->children_ = {std::move(child)};
  op->predicate_ = std::move(predicate);
  return op;
}

Result<RelOpPtr> RelOp::Project(RelOpPtr child, std::vector<ExprPtr> exprs,
                                std::vector<Field> output_fields) {
  if (child == nullptr) return Status::PlanError("Project requires a child");
  if (exprs.size() != output_fields.size()) {
    return Status::PlanError("Project: expression/field count mismatch");
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kProject));
  op->schema_ = Schema::Make(std::move(output_fields));
  op->children_ = {std::move(child)};
  op->projections_ = std::move(exprs);
  return op;
}

Result<RelOpPtr> RelOp::Join(RelOpPtr left, RelOpPtr right,
                             std::vector<size_t> left_keys,
                             std::vector<size_t> right_keys,
                             ExprPtr residual) {
  if (left == nullptr || right == nullptr) {
    return Status::PlanError("Join requires two children");
  }
  if (left_keys.size() != right_keys.size()) {
    return Status::PlanError("Join: key column count mismatch");
  }
  for (size_t k : left_keys) {
    if (k >= left->schema()->num_fields()) {
      return Status::PlanError("Join: left key index out of range");
    }
  }
  for (size_t k : right_keys) {
    if (k >= right->schema()->num_fields()) {
      return Status::PlanError("Join: right key index out of range");
    }
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kJoin));
  op->schema_ = Schema::Concat(*left->schema(), *right->schema());
  op->children_ = {std::move(left), std::move(right)};
  op->left_keys_ = std::move(left_keys);
  op->right_keys_ = std::move(right_keys);
  op->predicate_ = std::move(residual);
  return op;
}

Result<RelOpPtr> RelOp::ThetaJoin(RelOpPtr left, RelOpPtr right,
                                  ExprPtr predicate) {
  if (left == nullptr || right == nullptr) {
    return Status::PlanError("ThetaJoin requires two children");
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kThetaJoin));
  op->schema_ = Schema::Concat(*left->schema(), *right->schema());
  op->children_ = {std::move(left), std::move(right)};
  op->predicate_ = std::move(predicate);
  return op;
}

Result<RelOpPtr> RelOp::Aggregate(RelOpPtr child,
                                  std::vector<size_t> group_indexes,
                                  std::vector<AggSpec> aggs) {
  if (child == nullptr) return Status::PlanError("Aggregate requires a child");
  for (size_t g : group_indexes) {
    if (g >= child->schema()->num_fields()) {
      return Status::PlanError("Aggregate: group index out of range");
    }
  }
  std::vector<Field> fields;
  for (size_t g : group_indexes) fields.push_back(child->schema()->field(g));
  for (const auto& a : aggs) {
    ValueType t = ValueType::kDouble;
    if (a.kind == AggregateKind::kCount) t = ValueType::kInt64;
    if (a.kind == AggregateKind::kMin || a.kind == AggregateKind::kMax) {
      // MIN/MAX preserve the input type; without full type derivation use
      // the input expression's type when it is a plain column.
      t = ValueType::kNull;
      if (a.input != nullptr && a.input->kind() == Expr::Kind::kColumn) {
        size_t idx = static_cast<const ColumnRef&>(*a.input).index();
        if (idx < child->schema()->num_fields()) {
          t = child->schema()->field(idx).type;
        }
      }
    }
    std::string name = a.output_name;
    if (name.empty()) {
      name = std::string(AggregateKindToString(a.kind)) + "(" +
             (a.input ? a.input->ToString() : "*") + ")";
    }
    fields.push_back({std::move(name), t});
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kAggregate));
  op->schema_ = Schema::Make(std::move(fields));
  op->children_ = {std::move(child)};
  op->group_indexes_ = std::move(group_indexes);
  op->aggs_ = std::move(aggs);
  return op;
}

Result<RelOpPtr> RelOp::Distinct(RelOpPtr child) {
  if (child == nullptr) return Status::PlanError("Distinct requires a child");
  auto op = RelOpPtr(new RelOp(RelOpKind::kDistinct));
  op->schema_ = child->schema_;
  op->children_ = {std::move(child)};
  return op;
}

Result<RelOpPtr> RelOp::Union(RelOpPtr left, RelOpPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::PlanError("Union requires two children");
  }
  if (left->schema()->num_fields() != right->schema()->num_fields()) {
    return Status::PlanError("Union children must have equal arity");
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kUnion));
  op->schema_ = left->schema_;
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

Result<RelOpPtr> RelOp::Except(RelOpPtr left, RelOpPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::PlanError("Except requires two children");
  }
  if (left->schema()->num_fields() != right->schema()->num_fields()) {
    return Status::PlanError("Except children must have equal arity");
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kExcept));
  op->schema_ = left->schema_;
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

Result<RelOpPtr> RelOp::Intersect(RelOpPtr left, RelOpPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::PlanError("Intersect requires two children");
  }
  if (left->schema()->num_fields() != right->schema()->num_fields()) {
    return Status::PlanError("Intersect children must have equal arity");
  }
  auto op = RelOpPtr(new RelOp(RelOpKind::kIntersect));
  op->schema_ = left->schema_;
  op->children_ = {std::move(left), std::move(right)};
  return op;
}

Result<MultisetRelation> RelOp::Eval(
    const std::vector<MultisetRelation>& inputs) const {
  switch (kind_) {
    case RelOpKind::kScan:
      if (input_index_ >= inputs.size()) {
        return Status::PlanError("Scan input slot " +
                                 std::to_string(input_index_) + " not bound");
      }
      return inputs[input_index_];
    case RelOpKind::kSelect: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation in, children_[0]->Eval(inputs));
      return SelectOp(in, *predicate_);
    }
    case RelOpKind::kProject: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation in, children_[0]->Eval(inputs));
      return ProjectOp(in, projections_);
    }
    case RelOpKind::kJoin: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation l, children_[0]->Eval(inputs));
      CQ_ASSIGN_OR_RETURN(MultisetRelation r, children_[1]->Eval(inputs));
      return HashJoinOp(l, r, left_keys_, right_keys_, predicate_.get());
    }
    case RelOpKind::kThetaJoin: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation l, children_[0]->Eval(inputs));
      CQ_ASSIGN_OR_RETURN(MultisetRelation r, children_[1]->Eval(inputs));
      return ThetaJoinOp(l, r, predicate_.get());
    }
    case RelOpKind::kAggregate: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation in, children_[0]->Eval(inputs));
      return AggregateOp(in, group_indexes_, aggs_);
    }
    case RelOpKind::kDistinct: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation in, children_[0]->Eval(inputs));
      return DistinctOp(in);
    }
    case RelOpKind::kUnion: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation l, children_[0]->Eval(inputs));
      CQ_ASSIGN_OR_RETURN(MultisetRelation r, children_[1]->Eval(inputs));
      return UnionOp(l, r);
    }
    case RelOpKind::kExcept: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation l, children_[0]->Eval(inputs));
      CQ_ASSIGN_OR_RETURN(MultisetRelation r, children_[1]->Eval(inputs));
      return ExceptOp(l, r);
    }
    case RelOpKind::kIntersect: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation l, children_[0]->Eval(inputs));
      CQ_ASSIGN_OR_RETURN(MultisetRelation r, children_[1]->Eval(inputs));
      return IntersectOp(l, r);
    }
  }
  return Status::Internal("unhandled RelOp kind");
}

bool RelOp::IsMonotonic() const {
  switch (kind_) {
    case RelOpKind::kAggregate:
    case RelOpKind::kExcept:
      return false;
    default:
      break;
  }
  for (const auto& c : children_) {
    if (!c->IsMonotonic()) return false;
  }
  return true;
}

bool RelOp::IsDeltaComputable() const {
  switch (kind_) {
    case RelOpKind::kScan:
    case RelOpKind::kSelect:
    case RelOpKind::kProject:
    case RelOpKind::kJoin:
    case RelOpKind::kThetaJoin:
    case RelOpKind::kUnion:
      break;
    default:
      return false;
  }
  for (const auto& c : children_) {
    if (!c->IsDeltaComputable()) return false;
  }
  return true;
}

size_t RelOp::TreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->TreeSize();
  return n;
}

void RelOp::CollectInputs(std::vector<size_t>* out) const {
  if (kind_ == RelOpKind::kScan) out->push_back(input_index_);
  for (const auto& c : children_) c->CollectInputs(out);
}

std::string RelOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + RelOpKindToString(kind_);
  switch (kind_) {
    case RelOpKind::kScan:
      out += "(#" + std::to_string(input_index_) + ")";
      break;
    case RelOpKind::kSelect:
      out += "(" + predicate_->ToString() + ")";
      break;
    case RelOpKind::kProject: {
      out += "(";
      for (size_t i = 0; i < projections_.size(); ++i) {
        if (i) out += ", ";
        out += projections_[i]->ToString();
      }
      out += ")";
      break;
    }
    case RelOpKind::kJoin: {
      out += "(keys=";
      for (size_t i = 0; i < left_keys_.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(left_keys_[i]) + "=" +
               std::to_string(right_keys_[i]);
      }
      if (predicate_) out += " residual=" + predicate_->ToString();
      out += ")";
      break;
    }
    case RelOpKind::kThetaJoin:
      if (predicate_) out += "(" + predicate_->ToString() + ")";
      break;
    case RelOpKind::kAggregate: {
      out += "(groups=[";
      for (size_t i = 0; i < group_indexes_.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(group_indexes_[i]);
      }
      out += "], aggs=[";
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (i) out += ",";
        out += AggregateKindToString(aggs_[i].kind);
      }
      out += "])";
      break;
    }
    default:
      break;
  }
  out += "\n";
  for (const auto& c : children_) out += c->ToString(indent + 1);
  return out;
}

RelOpPtr RelOp::WithChildren(std::vector<RelOpPtr> children) const {
  auto op = RelOpPtr(new RelOp(kind_));
  op->children_ = std::move(children);
  op->schema_ = schema_;
  op->input_index_ = input_index_;
  op->predicate_ = predicate_;
  op->projections_ = projections_;
  op->left_keys_ = left_keys_;
  op->right_keys_ = right_keys_;
  op->group_indexes_ = group_indexes_;
  op->aggs_ = aggs_;
  return op;
}

}  // namespace cq

#ifndef CQ_CQL_PROVENANCE_H_
#define CQ_CQL_PROVENANCE_H_

/// \file provenance.h
/// \brief Why-provenance for continuous queries (paper §7, "Streaming Data
/// Governance").
///
/// The survey flags provenance in streaming contexts as nascent, limited to
/// why/how-provenance within pipelines ([67], [71]). This module implements
/// *why-provenance* for the R2R plan algebra: every derived tuple carries a
/// set of witnesses, each witness being a set of base-tuple ids sufficient
/// to derive it. Rules follow the classical semiring-flavoured treatment:
///
///   Select / Scan:  witnesses pass through;
///   Project / Union / Distinct:  tuples that coincide merge their witness
///                   sets (alternative derivations);
///   Join / Intersect:  pairwise unions of left and right witnesses;
///   Aggregate:      one witness per group — the union of all contributors
///                   (every input row matters to an aggregate);
///   Except:         witnesses of the surviving left tuples.
///
/// Base-tuple ids are assigned per input slot by BaseProvenance(); streaming
/// engines would stamp ids at ingestion.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/status.h"
#include "cql/plan.h"
#include "relation/relation.h"

namespace cq {

/// \brief Globally unique base-tuple id: (input slot, sequence).
struct BaseTupleId {
  uint32_t slot = 0;
  uint64_t seq = 0;

  bool operator<(const BaseTupleId& other) const {
    if (slot != other.slot) return slot < other.slot;
    return seq < other.seq;
  }
  bool operator==(const BaseTupleId& other) const = default;
};

/// \brief One sufficient derivation: a set of base tuples.
using Witness = std::set<BaseTupleId>;

/// \brief Why-provenance: the alternative witnesses of a derived tuple.
using WhyProvenance = std::set<Witness>;

/// \brief A relation whose tuples are annotated with why-provenance.
/// (Set semantics: provenance-carrying evaluation tracks distinct tuples.)
class ProvenanceRelation {
 public:
  void Add(const Tuple& t, Witness witness) {
    entries_[t].insert(std::move(witness));
  }
  void AddAll(const Tuple& t, const WhyProvenance& prov) {
    entries_[t].insert(prov.begin(), prov.end());
  }

  bool Contains(const Tuple& t) const { return entries_.count(t) > 0; }
  const WhyProvenance* Find(const Tuple& t) const {
    auto it = entries_.find(t);
    return it == entries_.end() ? nullptr : &it->second;
  }

  const std::map<Tuple, WhyProvenance>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// \brief Drops annotations: the plain (set-semantics) relation.
  MultisetRelation ToRelation() const;

 private:
  std::map<Tuple, WhyProvenance> entries_;
};

/// \brief Annotates a base relation for input slot `slot`, assigning ids in
/// iteration order (deterministic: MultisetRelation iterates sorted).
ProvenanceRelation BaseProvenance(uint32_t slot, const MultisetRelation& rel);

/// \brief Evaluates the plan with why-provenance propagation.
///
/// The result's plain projection equals Distinct(plan->Eval(inputs)) — the
/// provenance evaluation is set-semantics (asserted by the test suite).
Result<ProvenanceRelation> EvalWithProvenance(
    const RelOp& plan, const std::vector<ProvenanceRelation>& inputs);

/// \brief True when removing the base tuples in `witness` from the inputs
/// removes `t` from the (set-semantics) query answer only if *every* witness
/// intersects the removal — convenience used by tests to validate witnesses.
/// Returns the set of base ids that appear in every witness (the "must
/// have" core; empty when alternatives exist).
Witness WitnessCore(const WhyProvenance& prov);

}  // namespace cq

#endif  // CQ_CQL_PROVENANCE_H_

#include "cql/snapshot.h"

#include <set>

namespace cq {

MultisetRelation LogicalStream::SnapshotAt(Timestamp tau) const {
  MultisetRelation out;
  for (const auto& e : elements_) {
    if (e.validity.Contains(tau)) out.Add(e.tuple, 1);
  }
  return out;
}

std::vector<Timestamp> LogicalStream::Endpoints() const {
  std::set<Timestamp> pts;
  for (const auto& e : elements_) {
    pts.insert(e.validity.start);
    pts.insert(e.validity.end);
  }
  return {pts.begin(), pts.end()};
}

Result<LogicalStream> SelectLS(const LogicalStream& s, const Expr& predicate) {
  LogicalStream out;
  for (const auto& e : s.elements()) {
    CQ_ASSIGN_OR_RETURN(Value v, predicate.Eval(e.tuple));
    if (v.is_bool() && v.bool_value()) out.Add(e.tuple, e.validity);
  }
  return out;
}

Result<LogicalStream> ProjectLS(const LogicalStream& s,
                                const std::vector<ExprPtr>& exprs) {
  LogicalStream out;
  for (const auto& e : s.elements()) {
    std::vector<Value> vals;
    vals.reserve(exprs.size());
    for (const auto& ex : exprs) {
      CQ_ASSIGN_OR_RETURN(Value v, ex->Eval(e.tuple));
      vals.push_back(std::move(v));
    }
    out.Add(Tuple(std::move(vals)), e.validity);
  }
  return out;
}

Result<LogicalStream> JoinLS(const LogicalStream& a, const LogicalStream& b,
                             const Expr* predicate) {
  LogicalStream out;
  for (const auto& ea : a.elements()) {
    for (const auto& eb : b.elements()) {
      TimeInterval v = ea.validity.Intersect(eb.validity);
      if (v.Empty()) continue;
      Tuple joined = Tuple::Concat(ea.tuple, eb.tuple);
      if (predicate != nullptr) {
        CQ_ASSIGN_OR_RETURN(Value p, predicate->Eval(joined));
        if (!(p.is_bool() && p.bool_value())) continue;
      }
      out.Add(std::move(joined), v);
    }
  }
  return out;
}

LogicalStream UnionLS(const LogicalStream& a, const LogicalStream& b) {
  LogicalStream out;
  for (const auto& e : a.elements()) out.Add(e.tuple, e.validity);
  for (const auto& e : b.elements()) out.Add(e.tuple, e.validity);
  return out;
}

LogicalStream WindowLS(const LogicalStream& s, Duration range) {
  LogicalStream out;
  for (const auto& e : s.elements()) {
    out.Add(e.tuple, TimeInterval{e.validity.start, e.validity.start + range});
  }
  return out;
}

Status CheckSnapshotReducibleUnary(
    const LogicalStream& input,
    const std::function<Result<LogicalStream>(const LogicalStream&)>& op_ls,
    const std::function<Result<MultisetRelation>(const MultisetRelation&)>&
        op_ms,
    const std::vector<Timestamp>& instants) {
  CQ_ASSIGN_OR_RETURN(LogicalStream transformed, op_ls(input));
  for (Timestamp tau : instants) {
    MultisetRelation lhs = transformed.SnapshotAt(tau);
    CQ_ASSIGN_OR_RETURN(MultisetRelation rhs, op_ms(input.SnapshotAt(tau)));
    if (!(lhs == rhs)) {
      return Status::Internal(
          "not snapshot-reducible at tau=" + std::to_string(tau) +
          ": snapshot(op(S)) = " + lhs.ToString() +
          " but op(snapshot(S)) = " + rhs.ToString());
    }
  }
  return Status::OK();
}

Status CheckSnapshotReducibleBinary(
    const LogicalStream& a, const LogicalStream& b,
    const std::function<Result<LogicalStream>(const LogicalStream&,
                                              const LogicalStream&)>& op_ls,
    const std::function<Result<MultisetRelation>(const MultisetRelation&,
                                                 const MultisetRelation&)>&
        op_ms,
    const std::vector<Timestamp>& instants) {
  CQ_ASSIGN_OR_RETURN(LogicalStream transformed, op_ls(a, b));
  for (Timestamp tau : instants) {
    MultisetRelation lhs = transformed.SnapshotAt(tau);
    CQ_ASSIGN_OR_RETURN(MultisetRelation rhs,
                        op_ms(a.SnapshotAt(tau), b.SnapshotAt(tau)));
    if (!(lhs == rhs)) {
      return Status::Internal(
          "not snapshot-reducible at tau=" + std::to_string(tau) +
          ": snapshot(op(S)) = " + lhs.ToString() +
          " but op(snapshot(S)) = " + rhs.ToString());
    }
  }
  return Status::OK();
}

}  // namespace cq

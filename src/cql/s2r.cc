#include "cql/s2r.h"

#include <algorithm>
#include <map>
#include <set>

namespace cq {

std::string S2RSpec::ToString() const {
  switch (kind) {
    case S2RKind::kRange: {
      std::string out = "[Range " + std::to_string(range);
      if (slide > 1) out += " Slide " + std::to_string(slide);
      return out + "]";
    }
    case S2RKind::kNow:
      return "[Now]";
    case S2RKind::kUnbounded:
      return "[Range Unbounded]";
    case S2RKind::kRows:
      return "[Rows " + std::to_string(rows) + "]";
    case S2RKind::kPartitionedRows: {
      std::string out = "[Partition By ";
      for (size_t i = 0; i < partition_keys.size(); ++i) {
        if (i) out += ",";
        out += "$" + std::to_string(partition_keys[i]);
      }
      return out + " Rows " + std::to_string(rows) + "]";
    }
  }
  return "[?]";
}

namespace {

Timestamp SlideAlignedTau(const S2RSpec& spec, Timestamp tau) {
  if (spec.slide <= 1) return tau;
  Timestamp rem = tau % spec.slide;
  if (rem < 0) rem += spec.slide;
  return tau - rem;
}

}  // namespace

Result<MultisetRelation> ApplyS2R(const BoundedStream& s, const S2RSpec& spec,
                                  Timestamp tau) {
  MultisetRelation out;
  switch (spec.kind) {
    case S2RKind::kRange: {
      if (spec.range < 0) {
        return Status::InvalidArgument("Range window length must be >= 0");
      }
      Timestamp upper = SlideAlignedTau(spec, tau);
      Timestamp lower = upper - spec.range;  // exclusive
      for (const auto& e : s) {
        if (!e.is_record()) continue;
        if (e.timestamp > lower && e.timestamp <= upper) out.Add(e.tuple, 1);
      }
      return out;
    }
    case S2RKind::kNow: {
      for (const auto& e : s) {
        if (e.is_record() && e.timestamp == tau) out.Add(e.tuple, 1);
      }
      return out;
    }
    case S2RKind::kUnbounded: {
      for (const auto& e : s) {
        if (e.is_record() && e.timestamp <= tau) out.Add(e.tuple, 1);
      }
      return out;
    }
    case S2RKind::kRows: {
      // Last n records with ts <= tau, by (timestamp, arrival) recency.
      std::vector<const StreamElement*> eligible;
      for (const auto& e : s) {
        if (e.is_record() && e.timestamp <= tau) eligible.push_back(&e);
      }
      std::stable_sort(eligible.begin(), eligible.end(),
                       [](const StreamElement* a, const StreamElement* b) {
                         return a->timestamp < b->timestamp;
                       });
      size_t start = eligible.size() > spec.rows ? eligible.size() - spec.rows
                                                 : 0;
      for (size_t i = start; i < eligible.size(); ++i) {
        out.Add(eligible[i]->tuple, 1);
      }
      return out;
    }
    case S2RKind::kPartitionedRows: {
      std::map<Tuple, std::vector<const StreamElement*>> parts;
      std::vector<const StreamElement*> eligible;
      for (const auto& e : s) {
        if (e.is_record() && e.timestamp <= tau) eligible.push_back(&e);
      }
      std::stable_sort(eligible.begin(), eligible.end(),
                       [](const StreamElement* a, const StreamElement* b) {
                         return a->timestamp < b->timestamp;
                       });
      for (const auto* e : eligible) {
        parts[e->tuple.Project(spec.partition_keys)].push_back(e);
      }
      for (const auto& [key, elems] : parts) {
        size_t start =
            elems.size() > spec.rows ? elems.size() - spec.rows : 0;
        for (size_t i = start; i < elems.size(); ++i) {
          out.Add(elems[i]->tuple, 1);
        }
      }
      return out;
    }
  }
  return Status::Internal("unhandled S2R kind");
}

Result<TimeInterval> TupleValidity(const S2RSpec& spec, Timestamp ts) {
  switch (spec.kind) {
    case S2RKind::kRange: {
      if (spec.slide <= 1) {
        // In window at tau iff ts > tau - w && ts <= tau
        // <=> tau in [ts, ts + w).
        return TimeInterval{ts, ts + spec.range};
      }
      // With slide s, in window at tau iff the aligned tau' satisfies the
      // same bound; the tuple is visible from the first grid point >= ts
      // until the last grid point < ts + w (plus the non-aligned instants
      // mapping to those grid points).
      Timestamp first_grid = ((ts + spec.slide - 1) / spec.slide) * spec.slide;
      Timestamp last_grid = ((ts + spec.range - 1) / spec.slide) * spec.slide;
      if (last_grid < first_grid) return TimeInterval{0, 0};  // never visible
      return TimeInterval{first_grid, last_grid + spec.slide};
    }
    case S2RKind::kNow:
      return TimeInterval{ts, ts + 1};
    case S2RKind::kUnbounded:
      return TimeInterval{ts, kMaxTimestamp};
    default:
      return Status::InvalidArgument(
          "tuple validity undefined for tuple-based windows");
  }
}

std::vector<Timestamp> ChangeInstants(const BoundedStream& s,
                                      const S2RSpec& spec, Timestamp horizon) {
  std::set<Timestamp> instants;
  for (const auto& e : s) {
    if (!e.is_record()) continue;
    if (e.timestamp <= horizon) instants.insert(e.timestamp);
    switch (spec.kind) {
      case S2RKind::kRange: {
        Timestamp expiry = e.timestamp + spec.range;
        if (spec.slide <= 1) {
          if (expiry <= horizon) instants.insert(expiry);
        } else {
          // Content changes only at slide grid points.
          Timestamp first_grid =
              ((e.timestamp + spec.slide - 1) / spec.slide) * spec.slide;
          for (Timestamp g = first_grid; g <= horizon; g += spec.slide) {
            instants.insert(g);
            if (g >= expiry) break;
          }
        }
        break;
      }
      case S2RKind::kNow:
        if (e.timestamp + 1 <= horizon) instants.insert(e.timestamp + 1);
        break;
      default:
        break;  // unbounded / rows: change only on arrivals
    }
  }
  return {instants.begin(), instants.end()};
}

}  // namespace cq

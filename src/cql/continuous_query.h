#ifndef CQ_CQL_CONTINUOUS_QUERY_H_
#define CQ_CQL_CONTINUOUS_QUERY_H_

/// \file continuous_query.h
/// \brief Composed continuous queries and their semantics (paper §2, §3.1).
///
/// A continuous query is an S2R layer (one window per input stream), an R2R
/// plan, and an optional R2S operator. Two result definitions from the
/// survey are implemented:
///
///  - CQL / Arasu et al. (Definition 2.3): the result at tau is obtained by
///    recursively applying the operators to the streams up to tau —
///    `ReferenceExecutor` realises this literally, re-evaluating the plan at
///    every instant. It is the engine's executable specification.
///  - Babcock/Sellis union semantics: the result at tau_i is the *union* of
///    one-time query results over successive stream contents. Equal to the
///    CQL result exactly for monotonic queries (Barbara et al.) —
///    `BabcockSellisResult` lets tests and benches exhibit both sides.

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "cql/plan.h"
#include "cql/r2s.h"
#include "cql/s2r.h"
#include "relation/relation.h"
#include "stream/stream.h"

namespace cq {

/// \brief A full continuous query: input windows, R2R plan, R2S output.
struct ContinuousQuery {
  /// One window spec per input slot (index-aligned with Scan nodes).
  std::vector<S2RSpec> input_windows;
  RelOpPtr plan;
  R2SKind output = R2SKind::kIStream;

  std::string ToString() const;
};

/// \brief Reference executor: Definition 2.3 made executable.
///
/// Evaluates the query at a set of instants by re-running the full plan over
/// the windowed inputs at each instant. O(ticks x history); exists as the
/// semantics oracle that every optimised evaluator is tested against, and as
/// the re-execution baseline of bench E1/F1.
class ReferenceExecutor {
 public:
  /// \brief Instants at which any input window can change, up to the largest
  /// record timestamp across inputs (plus window expirations).
  static std::vector<Timestamp> DefaultTicks(
      const ContinuousQuery& query,
      const std::vector<const BoundedStream*>& inputs);

  /// \brief Materialises the result time-varying relation (the R2R/S2R
  /// topmost case of CQL's result definition).
  static Result<TimeVaryingRelation> MaterializeRelation(
      const ContinuousQuery& query,
      const std::vector<const BoundedStream*>& inputs,
      const std::vector<Timestamp>& ticks);

  /// \brief Executes with the query's R2S operator, producing the output
  /// stream observed at `ticks` (the R2S topmost case).
  static Result<BoundedStream> Execute(
      const ContinuousQuery& query,
      const std::vector<const BoundedStream*>& inputs,
      const std::vector<Timestamp>& ticks);

  /// \brief The instantaneous result relation at a single instant.
  static Result<MultisetRelation> ResultAt(
      const ContinuousQuery& query,
      const std::vector<const BoundedStream*>& inputs, Timestamp tau);
};

/// \brief Babcock/Sellis continuous semantics: the union, over all ticks
/// tau <= tau_i, of the one-time query over the stream content accumulated
/// up to tau (set semantics). Ignores the query's window specs — the
/// formulation predates windows and reads whole stream prefixes.
Result<MultisetRelation> BabcockSellisResult(
    const RelOpPtr& plan, const std::vector<const BoundedStream*>& inputs,
    const std::vector<Timestamp>& ticks, Timestamp tau_i);

/// \brief Incremental delta executor (Barbara et al.'s rewriting, §3.2, and
/// the kernel of IVM, §5.1 — DBToaster-style delta processing).
///
/// On a batch of input deltas, propagates exact output deltas through the
/// plan with per-update cost proportional to the data the update touches:
///
///  - Select / Project / Union: linearity — apply the operator to the delta;
///  - Join (equi): bilinearity dJ = dL >< R + L' >< dR, realised with
///    maintained per-side hash indexes keyed by the join key, so each delta
///    tuple probes only its matching partners;
///  - ThetaJoin: bilinear expansion against the accumulated sides (no index
///    can help an arbitrary predicate);
///  - Aggregate: maintained per-group state — running count/sum for
///    COUNT/SUM/AVG (retraction by arithmetic), ordered value multisets for
///    MIN/MAX (retraction by multiset removal); emits -old_row / +new_row;
///  - Distinct / Except / Intersect: per-affected-tuple multiplicity logic
///    from the maintained child counts.
class IncrementalPlanExecutor {
 public:
  IncrementalPlanExecutor(RelOpPtr plan, size_t num_inputs);

  /// \brief Applies one batch of input deltas (slot-aligned); returns the
  /// exact delta of the plan's output.
  Result<MultisetRelation> ApplyDeltas(
      const std::vector<MultisetRelation>& input_deltas);

  /// \brief Accumulated output after all deltas applied so far.
  const MultisetRelation& current_output() const { return output_; }

  /// \brief Total distinct tuples cached across plan nodes (state size).
  size_t StateSize() const;

  /// \brief Serializes every piece of maintained state — accumulated
  /// output, node caches, join indexes, aggregation groups — as
  /// deterministic bytes. Node-keyed maps are keyed by the node's preorder
  /// index in the plan tree, so a structurally identical plan (e.g. the
  /// same SQL replanned after a restart) restores byte-for-byte.
  Result<std::string> SnapshotState() const;

  /// \brief Restores state captured by SnapshotState into this executor,
  /// which must have been constructed over a plan with the same tree shape
  /// (preorder node count is verified). Replaces all current state.
  Status RestoreState(std::string_view snapshot);

 private:
  /// Per-side hash index for equi-join nodes: join key -> matching tuples.
  struct JoinIndex {
    std::unordered_map<Tuple, std::map<Tuple, int64_t>> left;
    std::unordered_map<Tuple, std::map<Tuple, int64_t>> right;
  };

  /// Maintained state of one aggregation group.
  struct GroupState {
    int64_t rows = 0;  // sum of input-row multiplicities in the group
    /// Running state per aggregate (count/sum interpretation by kind).
    std::vector<AggState> running;
    /// Ordered value multisets for MIN/MAX aggregates (empty for others).
    std::vector<std::map<Value, int64_t>> ordered;
    bool has_row = false;  // an output row is currently materialised
    Tuple row;             // the materialised output row
  };
  struct AggIndex {
    std::map<Tuple, GroupState> groups;
  };

  Result<MultisetRelation> DeltaEval(
      const RelOp* op, const std::vector<MultisetRelation>& input_deltas);
  Result<MultisetRelation> DeltaJoin(const RelOp* op,
                                     const MultisetRelation& dl,
                                     const MultisetRelation& dr);
  Result<MultisetRelation> DeltaAggregate(const RelOp* op,
                                          const MultisetRelation& dc);
  Result<Tuple> GroupRow(const RelOp* op, const Tuple& key,
                         const GroupState& g) const;

  RelOpPtr plan_;
  size_t num_inputs_;
  MultisetRelation output_;
  // Node-keyed state; std::map keeps references stable across inserts.
  std::map<const RelOp*, MultisetRelation> cache_;
  std::map<const RelOp*, JoinIndex> join_indexes_;
  std::map<const RelOp*, AggIndex> agg_indexes_;
  /// Nodes whose accumulated output is actually consumed by a parent rule.
  std::set<const RelOp*> cached_nodes_;
};

}  // namespace cq

#endif  // CQ_CQL_CONTINUOUS_QUERY_H_

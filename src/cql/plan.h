#ifndef CQ_CQL_PLAN_H_
#define CQ_CQL_PLAN_H_

/// \file plan.h
/// \brief Logical plans for the R2R part of a continuous query.
///
/// A RelOp tree combines the R2R operators of r2r.h. Leaves are Scan nodes
/// referring to input slots (each slot is a windowed stream — the output of
/// an S2R operator — or a base relation). The same tree is produced by the
/// SQL frontend, consumed by the reference and incremental executors, and
/// rewritten by the optimiser (§4.2).

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "cql/expr.h"
#include "cql/r2r.h"
#include "relation/relation.h"
#include "types/schema.h"

namespace cq {

enum class RelOpKind {
  kScan,
  kSelect,
  kProject,
  kJoin,       // hash equi-join with optional residual predicate
  kThetaJoin,  // nested-loops join with arbitrary predicate
  kAggregate,
  kDistinct,
  kUnion,
  kExcept,
  kIntersect,
};

const char* RelOpKindToString(RelOpKind kind);

class RelOp;
using RelOpPtr = std::shared_ptr<RelOp>;

/// \brief A node of the logical plan (concrete, tagged by kind).
class RelOp {
 public:
  RelOpKind kind() const { return kind_; }
  const std::vector<RelOpPtr>& children() const { return children_; }
  const SchemaPtr& schema() const { return schema_; }

  // --- Factories (each validates and computes the output schema) ---

  /// \brief Leaf: reads input slot `input_index` with the given schema.
  static RelOpPtr Scan(size_t input_index, SchemaPtr schema);

  static Result<RelOpPtr> Select(RelOpPtr child, ExprPtr predicate);

  /// \brief Projection with explicit output column names and types.
  static Result<RelOpPtr> Project(RelOpPtr child, std::vector<ExprPtr> exprs,
                                  std::vector<Field> output_fields);

  /// \brief Hash equi-join; key indexes are positions into each child's
  /// schema; `residual` (may be null) is evaluated on concatenated tuples.
  static Result<RelOpPtr> Join(RelOpPtr left, RelOpPtr right,
                               std::vector<size_t> left_keys,
                               std::vector<size_t> right_keys,
                               ExprPtr residual = nullptr);

  /// \brief Nested-loops join with an arbitrary predicate over concatenated
  /// tuples (null predicate = cross product).
  static Result<RelOpPtr> ThetaJoin(RelOpPtr left, RelOpPtr right,
                                    ExprPtr predicate);

  static Result<RelOpPtr> Aggregate(RelOpPtr child,
                                    std::vector<size_t> group_indexes,
                                    std::vector<AggSpec> aggs);

  static Result<RelOpPtr> Distinct(RelOpPtr child);
  static Result<RelOpPtr> Union(RelOpPtr left, RelOpPtr right);
  static Result<RelOpPtr> Except(RelOpPtr left, RelOpPtr right);
  static Result<RelOpPtr> Intersect(RelOpPtr left, RelOpPtr right);

  // --- Evaluation ---

  /// \brief Evaluates the tree against instantaneous input relations
  /// (`inputs[i]` feeds Scan nodes with input_index == i).
  Result<MultisetRelation> Eval(
      const std::vector<MultisetRelation>& inputs) const;

  // --- Analysis ---

  /// \brief Barbara et al. (§3.2): true when the whole tree is monotonic —
  /// S1 ⊆ S2 implies Q(S1) ⊆ Q(S2). Select/Project/Join/Union/Distinct/
  /// Intersect preserve monotonicity; Except and Aggregate break it.
  bool IsMonotonic() const;

  /// \brief True when every operator in the tree is linear (select/project)
  /// or bilinear (join) or additive (union) in multiplicities — the
  /// precondition for exact delta propagation in IVM.
  bool IsDeltaComputable() const;

  /// \brief Number of nodes in the tree.
  size_t TreeSize() const;

  /// \brief Indexes of all Scan input slots referenced by the tree.
  void CollectInputs(std::vector<size_t>* out) const;

  std::string ToString(int indent = 0) const;

  // --- Per-kind accessors (valid only for the matching kind) ---
  size_t input_index() const { return input_index_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<ExprPtr>& projections() const { return projections_; }
  const std::vector<size_t>& left_keys() const { return left_keys_; }
  const std::vector<size_t>& right_keys() const { return right_keys_; }
  const std::vector<size_t>& group_indexes() const { return group_indexes_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  /// \brief Shallow copy with different children (for optimiser rewrites).
  RelOpPtr WithChildren(std::vector<RelOpPtr> children) const;

 private:
  explicit RelOp(RelOpKind kind) : kind_(kind) {}

  RelOpKind kind_;
  std::vector<RelOpPtr> children_;
  SchemaPtr schema_;

  size_t input_index_ = 0;
  ExprPtr predicate_;
  std::vector<ExprPtr> projections_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  std::vector<size_t> group_indexes_;
  std::vector<AggSpec> aggs_;
};

}  // namespace cq

#endif  // CQ_CQL_PLAN_H_

#ifndef CQ_CQL_S2R_H_
#define CQ_CQL_S2R_H_

/// \file s2r.h
/// \brief Stream-to-Relation operators (paper §3.1, CQL's S2R class).
///
/// S2R operators convert a stream into a time-varying relation by windowing:
/// time-based ([Range w], optionally [Slide s]), tuple-based ([Rows n]),
/// and partitioned ([Partition By k Rows n]) windows, plus the degenerate
/// [Now] and [Range Unbounded] forms.

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "relation/relation.h"
#include "stream/stream.h"

namespace cq {

/// \brief The window family of an S2R operator.
enum class S2RKind {
  kRange,            // [Range w] or [Range w Slide s]
  kNow,              // [Now]: tuples with timestamp == tau
  kUnbounded,        // [Range Unbounded]: all tuples up to tau
  kRows,             // [Rows n]: last n tuples by arrival
  kPartitionedRows,  // [Partition By cols Rows n]
};

/// \brief Specification of one S2R window operator.
struct S2RSpec {
  S2RKind kind = S2RKind::kUnbounded;
  Duration range = 0;  // kRange: window length w
  Duration slide = 0;  // kRange: 0 means slide == 1 tick (continuous slide)
  size_t rows = 0;     // kRows / kPartitionedRows: n
  std::vector<size_t> partition_keys;  // kPartitionedRows

  static S2RSpec Range(Duration w, Duration slide = 0) {
    S2RSpec s;
    s.kind = S2RKind::kRange;
    s.range = w;
    s.slide = slide;
    return s;
  }
  static S2RSpec Now() {
    S2RSpec s;
    s.kind = S2RKind::kNow;
    return s;
  }
  static S2RSpec Unbounded() {
    S2RSpec s;
    s.kind = S2RKind::kUnbounded;
    return s;
  }
  static S2RSpec Rows(size_t n) {
    S2RSpec s;
    s.kind = S2RKind::kRows;
    s.rows = n;
    return s;
  }
  static S2RSpec PartitionedRows(std::vector<size_t> keys, size_t n) {
    S2RSpec s;
    s.kind = S2RKind::kPartitionedRows;
    s.partition_keys = std::move(keys);
    s.rows = n;
    return s;
  }

  std::string ToString() const;
};

/// \brief Reference (denotational) evaluation: the instantaneous relation
/// W(S)(tau) produced by applying the window `spec` to the stream `s`,
/// observed at instant `tau`.
///
/// Range semantics: tuples with timestamp in (tau' - w, tau'] where tau' is
/// tau rounded down to the slide grid (tau' == tau when slide <= 1).
/// Rows semantics: the `n` most recent tuples with timestamp <= tau,
/// recency by (timestamp, arrival position).
Result<MultisetRelation> ApplyS2R(const BoundedStream& s, const S2RSpec& spec,
                                  Timestamp tau);

/// \brief The validity interval of a tuple with event timestamp `ts` under a
/// time-based window spec: the set of instants tau at which the tuple is in
/// the window. Used by incremental evaluators to schedule expirations.
/// Errors for tuple-based windows (whose validity depends on later input).
Result<TimeInterval> TupleValidity(const S2RSpec& spec, Timestamp ts);

/// \brief Instants at which W(S) can change content, restricted to
/// timestamps <= horizon: tuple entries and (for Range windows) expirations.
/// The reference continuous-query executor evaluates at exactly these
/// instants plus any explicitly requested ticks.
std::vector<Timestamp> ChangeInstants(const BoundedStream& s,
                                      const S2RSpec& spec, Timestamp horizon);

}  // namespace cq

#endif  // CQ_CQL_S2R_H_

#include "cql/continuous_query.h"

#include <algorithm>
#include <set>

#include "types/serde.h"

namespace cq {

std::string ContinuousQuery::ToString() const {
  std::string out = "ContinuousQuery{windows=[";
  for (size_t i = 0; i < input_windows.size(); ++i) {
    if (i) out += ", ";
    out += input_windows[i].ToString();
  }
  out += "], output=";
  out += R2SKindToString(output);
  out += "}\n";
  if (plan) out += plan->ToString(1);
  return out;
}

std::vector<Timestamp> ReferenceExecutor::DefaultTicks(
    const ContinuousQuery& query,
    const std::vector<const BoundedStream*>& inputs) {
  Timestamp horizon = kMinTimestamp;
  for (const auto* s : inputs) {
    horizon = std::max(horizon, s->MaxTimestamp());
  }
  std::set<Timestamp> ticks;
  for (size_t i = 0; i < inputs.size() && i < query.input_windows.size();
       ++i) {
    for (Timestamp t :
         ChangeInstants(*inputs[i], query.input_windows[i], horizon)) {
      ticks.insert(t);
    }
  }
  return {ticks.begin(), ticks.end()};
}

Result<MultisetRelation> ReferenceExecutor::ResultAt(
    const ContinuousQuery& query,
    const std::vector<const BoundedStream*>& inputs, Timestamp tau) {
  if (query.plan == nullptr) return Status::PlanError("query has no plan");
  if (inputs.size() != query.input_windows.size()) {
    return Status::PlanError("input stream count does not match window specs");
  }
  std::vector<MultisetRelation> windowed;
  windowed.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    CQ_ASSIGN_OR_RETURN(MultisetRelation w,
                        ApplyS2R(*inputs[i], query.input_windows[i], tau));
    windowed.push_back(std::move(w));
  }
  return query.plan->Eval(windowed);
}

Result<TimeVaryingRelation> ReferenceExecutor::MaterializeRelation(
    const ContinuousQuery& query,
    const std::vector<const BoundedStream*>& inputs,
    const std::vector<Timestamp>& ticks) {
  TimeVaryingRelation out;
  MultisetRelation previous;
  for (Timestamp tau : ticks) {
    CQ_ASSIGN_OR_RETURN(MultisetRelation current,
                        ResultAt(query, inputs, tau));
    out.ApplyDelta(tau, current.Minus(previous));
    previous = std::move(current);
  }
  return out;
}

Result<BoundedStream> ReferenceExecutor::Execute(
    const ContinuousQuery& query,
    const std::vector<const BoundedStream*>& inputs,
    const std::vector<Timestamp>& ticks) {
  BoundedStream out;
  MultisetRelation previous;
  for (Timestamp tau : ticks) {
    CQ_ASSIGN_OR_RETURN(MultisetRelation current,
                        ResultAt(query, inputs, tau));
    for (auto& e : R2SStep(previous, current, query.output, tau)) {
      out.Append(std::move(e));
    }
    previous = std::move(current);
  }
  return out;
}

Result<MultisetRelation> BabcockSellisResult(
    const RelOpPtr& plan, const std::vector<const BoundedStream*>& inputs,
    const std::vector<Timestamp>& ticks, Timestamp tau_i) {
  MultisetRelation acc;
  for (Timestamp tau : ticks) {
    if (tau > tau_i) break;
    std::vector<MultisetRelation> prefix;
    prefix.reserve(inputs.size());
    for (const auto* s : inputs) {
      MultisetRelation r;
      for (const auto& e : *s) {
        if (e.is_record() && e.timestamp <= tau) r.Add(e.tuple, 1);
      }
      prefix.push_back(std::move(r));
    }
    CQ_ASSIGN_OR_RETURN(MultisetRelation result, plan->Eval(prefix));
    // Set-union accumulation.
    acc = UnionOp(acc, result).Distinct();
  }
  return acc;
}

namespace {

/// Marks plan nodes whose accumulated output the delta rules actually read:
/// children of ThetaJoin (bilinear expansion), Distinct, Except, Intersect
/// (multiplicity lookups). Other nodes never materialise their output.
void MarkCachedNodes(const RelOp* op, std::set<const RelOp*>* cached) {
  switch (op->kind()) {
    case RelOpKind::kThetaJoin:
    case RelOpKind::kDistinct:
    case RelOpKind::kExcept:
    case RelOpKind::kIntersect:
      for (const auto& c : op->children()) cached->insert(c.get());
      break;
    default:
      break;
  }
  for (const auto& c : op->children()) MarkCachedNodes(c.get(), cached);
}

}  // namespace

IncrementalPlanExecutor::IncrementalPlanExecutor(RelOpPtr plan,
                                                 size_t num_inputs)
    : plan_(std::move(plan)), num_inputs_(num_inputs) {
  if (plan_ != nullptr) MarkCachedNodes(plan_.get(), &cached_nodes_);
}

Result<MultisetRelation> IncrementalPlanExecutor::ApplyDeltas(
    const std::vector<MultisetRelation>& input_deltas) {
  if (input_deltas.size() != num_inputs_) {
    return Status::InvalidArgument("delta batch arity mismatch");
  }
  CQ_ASSIGN_OR_RETURN(MultisetRelation delta,
                      DeltaEval(plan_.get(), input_deltas));
  output_.PlusInPlace(delta);
  return delta;
}

size_t IncrementalPlanExecutor::StateSize() const {
  size_t n = 0;
  for (const auto& [op, rel] : cache_) n += rel.NumDistinct();
  for (const auto& [op, idx] : agg_indexes_) n += idx.groups.size();
  return n;
}

Result<MultisetRelation> IncrementalPlanExecutor::DeltaJoin(
    const RelOp* op, const MultisetRelation& dl, const MultisetRelation& dr) {
  JoinIndex& index = join_indexes_[op];
  MultisetRelation delta;
  const Expr* residual = op->predicate().get();

  auto combine = [&](const Tuple& lt, int64_t lc, const Tuple& rt,
                     int64_t rc) -> Status {
    Tuple joined = Tuple::Concat(lt, rt);
    if (residual != nullptr) {
      CQ_ASSIGN_OR_RETURN(Value v, residual->Eval(joined));
      if (!(v.is_bool() && v.bool_value())) return Status::OK();
    }
    delta.Add(std::move(joined), lc * rc);
    return Status::OK();
  };

  // dL >< R_old: probe the right index before applying dR.
  for (const auto& [lt, lc] : dl.entries()) {
    auto it = index.right.find(lt.Project(op->left_keys()));
    if (it == index.right.end()) continue;
    for (const auto& [rt, rc] : it->second) {
      CQ_RETURN_NOT_OK(combine(lt, lc, rt, rc));
    }
  }
  // Fold dL into the left index (making it L_new).
  for (const auto& [lt, lc] : dl.entries()) {
    auto& bucket = index.left[lt.Project(op->left_keys())];
    bucket[lt] += lc;
    if (bucket[lt] == 0) bucket.erase(lt);
  }
  // L_new >< dR.
  for (const auto& [rt, rc] : dr.entries()) {
    auto it = index.left.find(rt.Project(op->right_keys()));
    if (it != index.left.end()) {
      for (const auto& [lt, lc] : it->second) {
        CQ_RETURN_NOT_OK(combine(lt, lc, rt, rc));
      }
    }
  }
  // Fold dR into the right index.
  for (const auto& [rt, rc] : dr.entries()) {
    auto& bucket = index.right[rt.Project(op->right_keys())];
    bucket[rt] += rc;
    if (bucket[rt] == 0) bucket.erase(rt);
  }
  return delta;
}

Result<Tuple> IncrementalPlanExecutor::GroupRow(const RelOp* op,
                                                const Tuple& key,
                                                const GroupState& g) const {
  std::vector<Value> vals = key.values();
  const auto& aggs = op->aggs();
  for (size_t i = 0; i < aggs.size(); ++i) {
    switch (aggs[i].kind) {
      case AggregateKind::kCount:
        vals.push_back(Value(g.running[i].count));
        break;
      case AggregateKind::kSum:
        vals.push_back(g.running[i].count == 0 ? Value::Null()
                                               : Value(g.running[i].sum));
        break;
      case AggregateKind::kAvg:
        vals.push_back(g.running[i].count == 0
                           ? Value::Null()
                           : Value(g.running[i].sum /
                                   static_cast<double>(g.running[i].count)));
        break;
      case AggregateKind::kMin: {
        Value out = Value::Null();
        for (const auto& [v, c] : g.ordered[i]) {
          if (c > 0) {
            out = v;
            break;
          }
        }
        vals.push_back(std::move(out));
        break;
      }
      case AggregateKind::kMax: {
        Value out = Value::Null();
        for (auto it = g.ordered[i].rbegin(); it != g.ordered[i].rend();
             ++it) {
          if (it->second > 0) {
            out = it->first;
            break;
          }
        }
        vals.push_back(std::move(out));
        break;
      }
    }
  }
  return Tuple(std::move(vals));
}

Result<MultisetRelation> IncrementalPlanExecutor::DeltaAggregate(
    const RelOp* op, const MultisetRelation& dc) {
  AggIndex& index = agg_indexes_[op];
  const auto& aggs = op->aggs();
  const bool global = op->group_indexes().empty();

  std::set<Tuple> touched;
  // The global (scalar) aggregate always has a row (identity on empty
  // input); materialise its group on the first batch so the identity row is
  // emitted even when this batch carries no data for it.
  if (global && index.groups.empty()) {
    GroupState g;
    g.running.resize(aggs.size());
    g.ordered.resize(aggs.size());
    index.groups.emplace(Tuple(), std::move(g));
    touched.insert(Tuple());
  }
  for (const auto& [t, c] : dc.entries()) {
    Tuple key = t.Project(op->group_indexes());
    auto [it, inserted] = index.groups.try_emplace(key);
    GroupState& g = it->second;
    if (inserted) {
      g.running.resize(aggs.size());
      g.ordered.resize(aggs.size());
    }
    g.rows += c;
    for (size_t i = 0; i < aggs.size(); ++i) {
      Value in(static_cast<int64_t>(1));
      if (aggs[i].input != nullptr) {
        CQ_ASSIGN_OR_RETURN(in, aggs[i].input->Eval(t));
      }
      if (in.is_null()) continue;  // NULLs contribute to no aggregate
      switch (aggs[i].kind) {
        case AggregateKind::kCount:
          g.running[i].count += c;
          break;
        case AggregateKind::kSum:
        case AggregateKind::kAvg:
          g.running[i].count += c;
          g.running[i].sum += static_cast<double>(c) * in.AsDouble();
          break;
        case AggregateKind::kMin:
        case AggregateKind::kMax: {
          auto& bucket = g.ordered[i];
          bucket[in] += c;
          if (bucket[in] == 0) bucket.erase(in);
          break;
        }
      }
    }
    touched.insert(std::move(key));
  }

  MultisetRelation delta;
  for (const Tuple& key : touched) {
    auto it = index.groups.find(key);
    GroupState& g = it->second;
    bool want_row = global || g.rows > 0;
    if (g.has_row) delta.Add(g.row, -1);
    if (want_row) {
      CQ_ASSIGN_OR_RETURN(Tuple row, GroupRow(op, key, g));
      delta.Add(row, 1);
      g.row = std::move(row);
      g.has_row = true;
    } else {
      index.groups.erase(it);
    }
  }
  return delta;
}

Result<MultisetRelation> IncrementalPlanExecutor::DeltaEval(
    const RelOp* op, const std::vector<MultisetRelation>& input_deltas) {
  MultisetRelation delta;
  switch (op->kind()) {
    case RelOpKind::kScan:
      delta = input_deltas[op->input_index()];
      break;
    case RelOpKind::kSelect: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation dc,
                          DeltaEval(op->children()[0].get(), input_deltas));
      CQ_ASSIGN_OR_RETURN(delta, SelectOp(dc, *op->predicate()));
      break;
    }
    case RelOpKind::kProject: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation dc,
                          DeltaEval(op->children()[0].get(), input_deltas));
      CQ_ASSIGN_OR_RETURN(delta, ProjectOp(dc, op->projections()));
      break;
    }
    case RelOpKind::kUnion: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation dl,
                          DeltaEval(op->children()[0].get(), input_deltas));
      CQ_ASSIGN_OR_RETURN(MultisetRelation dr,
                          DeltaEval(op->children()[1].get(), input_deltas));
      delta = dl.Plus(dr);
      break;
    }
    case RelOpKind::kJoin: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation dl,
                          DeltaEval(op->children()[0].get(), input_deltas));
      CQ_ASSIGN_OR_RETURN(MultisetRelation dr,
                          DeltaEval(op->children()[1].get(), input_deltas));
      CQ_ASSIGN_OR_RETURN(delta, DeltaJoin(op, dl, dr));
      break;
    }
    case RelOpKind::kThetaJoin: {
      // dJ = dL >< R_new - dL >< dR + L_new >< dR (all against maintained
      // accumulations; references into cache_ are stable, no copies).
      const RelOp* l = op->children()[0].get();
      const RelOp* r = op->children()[1].get();
      CQ_ASSIGN_OR_RETURN(MultisetRelation dl, DeltaEval(l, input_deltas));
      CQ_ASSIGN_OR_RETURN(MultisetRelation dr, DeltaEval(r, input_deltas));
      const MultisetRelation& l_new = cache_[l];
      const MultisetRelation& r_new = cache_[r];
      const Expr* pred = op->predicate().get();
      CQ_ASSIGN_OR_RETURN(MultisetRelation part1,
                          ThetaJoinOp(dl, r_new, pred));
      CQ_ASSIGN_OR_RETURN(MultisetRelation part2, ThetaJoinOp(dl, dr, pred));
      CQ_ASSIGN_OR_RETURN(MultisetRelation part3,
                          ThetaJoinOp(l_new, dr, pred));
      delta = part1.Minus(part2).Plus(part3);
      break;
    }
    case RelOpKind::kAggregate: {
      CQ_ASSIGN_OR_RETURN(MultisetRelation dc,
                          DeltaEval(op->children()[0].get(), input_deltas));
      CQ_ASSIGN_OR_RETURN(delta, DeltaAggregate(op, dc));
      break;
    }
    case RelOpKind::kDistinct: {
      const RelOp* child = op->children()[0].get();
      CQ_ASSIGN_OR_RETURN(MultisetRelation dc,
                          DeltaEval(child, input_deltas));
      const MultisetRelation& c_new = cache_[child];
      for (const auto& [t, c] : dc.entries()) {
        int64_t now = c_new.Count(t);
        int64_t before = now - c;
        int64_t out_now = now > 0 ? 1 : 0;
        int64_t out_before = before > 0 ? 1 : 0;
        delta.Add(t, out_now - out_before);
      }
      break;
    }
    case RelOpKind::kExcept:
    case RelOpKind::kIntersect: {
      const RelOp* l = op->children()[0].get();
      const RelOp* r = op->children()[1].get();
      CQ_ASSIGN_OR_RETURN(MultisetRelation dl, DeltaEval(l, input_deltas));
      CQ_ASSIGN_OR_RETURN(MultisetRelation dr, DeltaEval(r, input_deltas));
      const MultisetRelation& l_new = cache_[l];
      const MultisetRelation& r_new = cache_[r];
      auto clamp = [](int64_t x) { return x > 0 ? x : 0; };
      auto out_count = [&](int64_t lc, int64_t rc) {
        if (op->kind() == RelOpKind::kExcept) {
          return clamp(clamp(lc) - clamp(rc));
        }
        return std::min(clamp(lc), clamp(rc));
      };
      std::set<Tuple> affected;
      for (const auto& [t, c] : dl.entries()) affected.insert(t);
      for (const auto& [t, c] : dr.entries()) affected.insert(t);
      for (const Tuple& t : affected) {
        int64_t l_now = l_new.Count(t), r_now = r_new.Count(t);
        int64_t l_before = l_now - dl.Count(t);
        int64_t r_before = r_now - dr.Count(t);
        delta.Add(t, out_count(l_now, r_now) - out_count(l_before, r_before));
      }
      break;
    }
  }
  if (cached_nodes_.count(op)) {
    cache_[op].PlusInPlace(delta);
  }
  return delta;
}

namespace {

/// Preorder walk of the plan tree: the node-numbering contract between
/// SnapshotState and RestoreState. Structurally identical plans (same SQL
/// replanned after a restart) produce the same numbering even though the
/// RelOp pointers differ.
void CollectPreorder(const RelOp* op, std::vector<const RelOp*>* out) {
  if (op == nullptr) return;
  out->push_back(op);
  for (const auto& c : op->children()) CollectPreorder(c.get(), out);
}

void EncodeRelationState(const MultisetRelation& rel, std::string* out) {
  EncodeU32(static_cast<uint32_t>(rel.entries().size()), out);
  for (const auto& [t, c] : rel.entries()) {
    EncodeTuple(t, out);
    EncodeI64(c, out);
  }
}

Result<MultisetRelation> DecodeRelationState(std::string_view* in) {
  CQ_ASSIGN_OR_RETURN(uint32_t n, DecodeU32(in));
  MultisetRelation rel;
  for (uint32_t i = 0; i < n; ++i) {
    CQ_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(in));
    CQ_ASSIGN_OR_RETURN(int64_t c, DecodeI64(in));
    rel.Add(t, c);
  }
  return rel;
}

void EncodeJoinSide(
    const std::unordered_map<Tuple, std::map<Tuple, int64_t>>& side,
    std::string* out) {
  // Re-sort the hash keys so the bytes are deterministic.
  std::map<Tuple, const std::map<Tuple, int64_t>*> ordered;
  for (const auto& [key, bucket] : side) ordered.emplace(key, &bucket);
  EncodeU32(static_cast<uint32_t>(ordered.size()), out);
  for (const auto& [key, bucket] : ordered) {
    EncodeTuple(key, out);
    EncodeU32(static_cast<uint32_t>(bucket->size()), out);
    for (const auto& [t, c] : *bucket) {
      EncodeTuple(t, out);
      EncodeI64(c, out);
    }
  }
}

Status DecodeJoinSide(
    std::string_view* in,
    std::unordered_map<Tuple, std::map<Tuple, int64_t>>* side) {
  CQ_ASSIGN_OR_RETURN(uint32_t nkeys, DecodeU32(in));
  for (uint32_t i = 0; i < nkeys; ++i) {
    CQ_ASSIGN_OR_RETURN(Tuple key, DecodeTuple(in));
    CQ_ASSIGN_OR_RETURN(uint32_t nentries, DecodeU32(in));
    std::map<Tuple, int64_t>& bucket = (*side)[key];
    for (uint32_t j = 0; j < nentries; ++j) {
      CQ_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(in));
      CQ_ASSIGN_OR_RETURN(int64_t c, DecodeI64(in));
      bucket[t] = c;
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::string> IncrementalPlanExecutor::SnapshotState() const {
  std::vector<const RelOp*> nodes;
  CollectPreorder(plan_.get(), &nodes);
  std::map<const RelOp*, uint32_t> index;
  for (uint32_t i = 0; i < nodes.size(); ++i) index[nodes[i]] = i;
  auto index_of = [&](const RelOp* op) -> Result<uint32_t> {
    auto it = index.find(op);
    if (it == index.end()) {
      return Status::Internal("plan state keyed by a node outside the tree");
    }
    return it->second;
  };

  std::string out;
  EncodeU32(static_cast<uint32_t>(nodes.size()), &out);
  EncodeRelationState(output_, &out);

  EncodeU32(static_cast<uint32_t>(cache_.size()), &out);
  for (const auto& [op, rel] : cache_) {  // std::map: pointer-ordered but
    CQ_ASSIGN_OR_RETURN(uint32_t idx, index_of(op));
    EncodeU32(idx, &out);  // ...the preorder index makes the KEY stable;
    EncodeRelationState(rel, &out);
  }

  EncodeU32(static_cast<uint32_t>(join_indexes_.size()), &out);
  for (const auto& [op, ji] : join_indexes_) {
    CQ_ASSIGN_OR_RETURN(uint32_t idx, index_of(op));
    EncodeU32(idx, &out);
    EncodeJoinSide(ji.left, &out);
    EncodeJoinSide(ji.right, &out);
  }

  EncodeU32(static_cast<uint32_t>(agg_indexes_.size()), &out);
  for (const auto& [op, ai] : agg_indexes_) {
    CQ_ASSIGN_OR_RETURN(uint32_t idx, index_of(op));
    EncodeU32(idx, &out);
    EncodeU32(static_cast<uint32_t>(ai.groups.size()), &out);
    for (const auto& [key, g] : ai.groups) {
      EncodeTuple(key, &out);
      EncodeI64(g.rows, &out);
      EncodeU32(static_cast<uint32_t>(g.running.size()), &out);
      for (const AggState& a : g.running) {
        EncodeI64(a.count, &out);
        EncodeF64(a.sum, &out);
        EncodeValue(a.min, &out);
        EncodeValue(a.max, &out);
      }
      EncodeU32(static_cast<uint32_t>(g.ordered.size()), &out);
      for (const auto& multiset : g.ordered) {
        EncodeU32(static_cast<uint32_t>(multiset.size()), &out);
        for (const auto& [v, c] : multiset) {
          EncodeValue(v, &out);
          EncodeI64(c, &out);
        }
      }
      out.push_back(g.has_row ? 1 : 0);
      if (g.has_row) EncodeTuple(g.row, &out);
    }
  }
  return out;
}

Status IncrementalPlanExecutor::RestoreState(std::string_view snapshot) {
  std::vector<const RelOp*> nodes;
  CollectPreorder(plan_.get(), &nodes);

  std::string_view in = snapshot;
  CQ_ASSIGN_OR_RETURN(uint32_t num_nodes, DecodeU32(&in));
  if (num_nodes != nodes.size()) {
    return Status::InvalidArgument(
        "plan snapshot covers " + std::to_string(num_nodes) +
        " nodes but the live plan has " + std::to_string(nodes.size()) +
        " — plans are not structurally identical");
  }
  auto node_at = [&](uint32_t idx) -> Result<const RelOp*> {
    if (idx >= nodes.size()) {
      return Status::IOError("plan snapshot node index out of range");
    }
    return nodes[idx];
  };

  output_ = MultisetRelation();
  cache_.clear();
  join_indexes_.clear();
  agg_indexes_.clear();

  CQ_ASSIGN_OR_RETURN(output_, DecodeRelationState(&in));

  CQ_ASSIGN_OR_RETURN(uint32_t ncache, DecodeU32(&in));
  for (uint32_t i = 0; i < ncache; ++i) {
    CQ_ASSIGN_OR_RETURN(uint32_t idx, DecodeU32(&in));
    CQ_ASSIGN_OR_RETURN(const RelOp* op, node_at(idx));
    CQ_ASSIGN_OR_RETURN(cache_[op], DecodeRelationState(&in));
  }

  CQ_ASSIGN_OR_RETURN(uint32_t njoin, DecodeU32(&in));
  for (uint32_t i = 0; i < njoin; ++i) {
    CQ_ASSIGN_OR_RETURN(uint32_t idx, DecodeU32(&in));
    CQ_ASSIGN_OR_RETURN(const RelOp* op, node_at(idx));
    JoinIndex& ji = join_indexes_[op];
    CQ_RETURN_NOT_OK(DecodeJoinSide(&in, &ji.left));
    CQ_RETURN_NOT_OK(DecodeJoinSide(&in, &ji.right));
  }

  CQ_ASSIGN_OR_RETURN(uint32_t nagg, DecodeU32(&in));
  for (uint32_t i = 0; i < nagg; ++i) {
    CQ_ASSIGN_OR_RETURN(uint32_t idx, DecodeU32(&in));
    CQ_ASSIGN_OR_RETURN(const RelOp* op, node_at(idx));
    AggIndex& ai = agg_indexes_[op];
    CQ_ASSIGN_OR_RETURN(uint32_t ngroups, DecodeU32(&in));
    for (uint32_t gi = 0; gi < ngroups; ++gi) {
      CQ_ASSIGN_OR_RETURN(Tuple key, DecodeTuple(&in));
      GroupState& g = ai.groups[key];
      CQ_ASSIGN_OR_RETURN(g.rows, DecodeI64(&in));
      CQ_ASSIGN_OR_RETURN(uint32_t nrun, DecodeU32(&in));
      g.running.resize(nrun);
      for (AggState& a : g.running) {
        CQ_ASSIGN_OR_RETURN(a.count, DecodeI64(&in));
        CQ_ASSIGN_OR_RETURN(a.sum, DecodeF64(&in));
        CQ_ASSIGN_OR_RETURN(a.min, DecodeValue(&in));
        CQ_ASSIGN_OR_RETURN(a.max, DecodeValue(&in));
      }
      CQ_ASSIGN_OR_RETURN(uint32_t nord, DecodeU32(&in));
      g.ordered.resize(nord);
      for (auto& multiset : g.ordered) {
        CQ_ASSIGN_OR_RETURN(uint32_t n, DecodeU32(&in));
        for (uint32_t j = 0; j < n; ++j) {
          CQ_ASSIGN_OR_RETURN(Value v, DecodeValue(&in));
          CQ_ASSIGN_OR_RETURN(int64_t c, DecodeI64(&in));
          multiset[v] = c;
        }
      }
      if (in.empty()) return Status::IOError("plan snapshot truncated");
      g.has_row = in.front() != 0;
      in.remove_prefix(1);
      if (g.has_row) {
        CQ_ASSIGN_OR_RETURN(g.row, DecodeTuple(&in));
      }
    }
  }
  if (!in.empty()) {
    return Status::IOError("trailing bytes after plan snapshot");
  }
  return Status::OK();
}

}  // namespace cq

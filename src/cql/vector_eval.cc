#include "cql/vector_eval.h"

#include <string>
#include <string_view>
#include <utility>

namespace cq {

std::vector<ValueType> ColumnTypes(const std::vector<Column>& cols) {
  std::vector<ValueType> types;
  types.reserve(cols.size());
  for (const Column& c : cols) types.push_back(c.type());
  return types;
}

namespace {

bool IsNumericType(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

bool CmpToBool(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq:
      return c == 0;
    case BinaryOp::kNe:
      return c != 0;
    case BinaryOp::kLt:
      return c < 0;
    case BinaryOp::kLe:
      return c <= 0;
    case BinaryOp::kGt:
      return c > 0;
    case BinaryOp::kGe:
      return c >= 0;
    default:
      return false;  // unreachable: callers pass comparison ops only
  }
}

// --- accessors ----------------------------------------------------------
// Value getters and null testers the typed loops are instantiated over.
// Getters are only invoked on rows the null tester said are non-NULL, so a
// getter for an untyped (storage-less) column is never dereferenced.

struct NullsNone {
  bool operator()(size_t) const { return false; }
};
struct NullsAll {
  bool operator()(size_t) const { return true; }
};
struct NullsCol {
  const Column* c;
  bool operator()(size_t i) const { return c->IsNull(i); }
};

template <typename T>
struct GetConst {
  T v;
  T operator()(size_t) const { return v; }
};
struct GetI64 {
  const int64_t* d;
  int64_t operator()(size_t i) const { return d[i]; }
};
struct GetF64 {
  const double* d;
  double operator()(size_t i) const { return d[i]; }
};
struct GetI64AsF64 {
  const int64_t* d;
  double operator()(size_t i) const { return static_cast<double>(d[i]); }
};
struct GetBool {
  const uint8_t* d;
  bool operator()(size_t i) const { return d[i] != 0; }
};
struct GetStr {
  const Column* c;
  std::string_view operator()(size_t i) const { return c->string_at(i); }
};

// --- evaluator ----------------------------------------------------------

struct Operand {
  Column storage;               // owned result for computed sub-expressions
  const Column* col = nullptr;  // borrowed input column or &storage
  Value lit;                    // literal constant (when is_lit)
  bool is_lit = false;
  ValueType type = ValueType::kNull;
};

struct Evaluator {
  const std::vector<Column>& cols;
  size_t n;

  Column Eval(const Expr& e);
  Operand MakeOperand(const Expr& e);

  Column AllNull() const {
    Column out;
    for (size_t i = 0; i < n; ++i) out.AppendNull();
    return out;
  }

  // Continuation-style dispatch: picks the cheapest accessor pair for the
  // operand (constant / dense column / column with nulls) and invokes `f`
  // with it, so each loop body is compiled per accessor combination.
  template <typename F>
  void WithBool(const Operand& o, F&& f) const {
    if (o.type == ValueType::kNull) {
      f(GetConst<bool>{false}, NullsAll{});
    } else if (o.is_lit) {
      f(GetConst<bool>{o.lit.bool_value()}, NullsNone{});
    } else if (o.col->has_nulls()) {
      f(GetBool{o.col->bool_data()}, NullsCol{o.col});
    } else {
      f(GetBool{o.col->bool_data()}, NullsNone{});
    }
  }

  template <typename F>
  void WithI64(const Operand& o, F&& f) const {
    if (o.is_lit) {
      f(GetConst<int64_t>{o.lit.int64_value()}, NullsNone{});
    } else if (o.col->has_nulls()) {
      f(GetI64{o.col->int64_data()}, NullsCol{o.col});
    } else {
      f(GetI64{o.col->int64_data()}, NullsNone{});
    }
  }

  // Numeric operand widened to double (mixed int64/double arithmetic and
  // comparisons go through double, matching Value::AsDouble semantics).
  template <typename F>
  void WithF64(const Operand& o, F&& f) const {
    if (o.is_lit) {
      f(GetConst<double>{o.lit.AsDouble()}, NullsNone{});
    } else if (o.type == ValueType::kInt64) {
      if (o.col->has_nulls()) {
        f(GetI64AsF64{o.col->int64_data()}, NullsCol{o.col});
      } else {
        f(GetI64AsF64{o.col->int64_data()}, NullsNone{});
      }
    } else if (o.col->has_nulls()) {
      f(GetF64{o.col->double_data()}, NullsCol{o.col});
    } else {
      f(GetF64{o.col->double_data()}, NullsNone{});
    }
  }

  template <typename F>
  void WithStr(const Operand& o, F&& f) const {
    if (o.is_lit) {
      f(GetConst<std::string_view>{o.lit.string_value()}, NullsNone{});
    } else if (o.col->has_nulls()) {
      f(GetStr{o.col}, NullsCol{o.col});
    } else {
      f(GetStr{o.col}, NullsNone{});
    }
  }

  Column EvalBinary(const BinaryExpr& b);
  Column BoolLogic(const Operand& l, const Operand& r, bool is_and);
  Column Arith(const Operand& l, const Operand& r, BinaryOp op);
  Column Compare(const Operand& l, const Operand& r, BinaryOp op);
};

Operand Evaluator::MakeOperand(const Expr& e) {
  Operand o;
  switch (e.kind()) {
    case Expr::Kind::kColumn:
      o.col = &cols[static_cast<const ColumnRef&>(e).index()];
      o.type = o.col->type();
      return o;
    case Expr::Kind::kLiteral:
      o.lit = static_cast<const Literal&>(e).value();
      o.is_lit = true;
      o.type = o.lit.type();
      return o;
    default:
      o.storage = Eval(e);
      o.col = &o.storage;
      o.type = o.storage.type();
      return o;
  }
}

Column Evaluator::Eval(const Expr& e) {
  switch (e.kind()) {
    case Expr::Kind::kColumn:
      return cols[static_cast<const ColumnRef&>(e).index()];
    case Expr::Kind::kLiteral: {
      const Value& v = static_cast<const Literal&>(e).value();
      if (v.is_null()) return AllNull();
      Column out(v.type());
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        Status s = out.Append(v);
        (void)s;  // cannot fail: column typed from v
      }
      return out;
    }
    case Expr::Kind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(e));
    case Expr::Kind::kNot: {
      Operand o = MakeOperand(*static_cast<const NotExpr&>(e).inner());
      if (o.type == ValueType::kNull) return AllNull();
      Column out(ValueType::kBool);
      out.Reserve(n);
      WithBool(o, [&](auto g, auto isnull) {
        for (size_t i = 0; i < n; ++i) {
          if (isnull(i)) {
            out.AppendNull();
          } else {
            out.AppendBool(!g(i));
          }
        }
      });
      return out;
    }
    case Expr::Kind::kNeg: {
      Operand o = MakeOperand(*static_cast<const NegExpr&>(e).inner());
      if (o.type == ValueType::kNull) return AllNull();
      Column out(o.type);
      out.Reserve(n);
      if (o.type == ValueType::kInt64) {
        WithI64(o, [&](auto g, auto isnull) {
          for (size_t i = 0; i < n; ++i) {
            if (isnull(i)) {
              out.AppendNull();
            } else {
              out.AppendInt64(-g(i));
            }
          }
        });
      } else {
        WithF64(o, [&](auto g, auto isnull) {
          for (size_t i = 0; i < n; ++i) {
            if (isnull(i)) {
              out.AppendNull();
            } else {
              out.AppendDouble(-g(i));
            }
          }
        });
      }
      return out;
    }
    case Expr::Kind::kIsNull: {
      const auto& isnull_expr = static_cast<const IsNullExpr&>(e);
      Operand o = MakeOperand(*isnull_expr.inner());
      bool negated = isnull_expr.negated();
      Column out(ValueType::kBool);
      out.Reserve(n);
      if (o.type == ValueType::kNull) {
        for (size_t i = 0; i < n; ++i) out.AppendBool(!negated);
      } else if (o.is_lit) {
        for (size_t i = 0; i < n; ++i) out.AppendBool(negated);
      } else {
        for (size_t i = 0; i < n; ++i) {
          out.AppendBool(o.col->IsNull(i) != negated);
        }
      }
      return out;
    }
  }
  return AllNull();  // unreachable
}

Column Evaluator::EvalBinary(const BinaryExpr& b) {
  Operand l = MakeOperand(*b.left());
  Operand r = MakeOperand(*b.right());
  switch (b.op()) {
    case BinaryOp::kAnd:
      return BoolLogic(l, r, /*is_and=*/true);
    case BinaryOp::kOr:
      return BoolLogic(l, r, /*is_and=*/false);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
      return Arith(l, r, b.op());
    default:
      return Compare(l, r, b.op());
  }
}

Column Evaluator::BoolLogic(const Operand& l, const Operand& r, bool is_and) {
  if (l.type == ValueType::kNull && r.type == ValueType::kNull) {
    return AllNull();
  }
  Column out(ValueType::kBool);
  out.Reserve(n);
  WithBool(l, [&](auto lg, auto lnull) {
    WithBool(r, [&](auto rg, auto rnull) {
      for (size_t i = 0; i < n; ++i) {
        // Getters are guarded by the null tests (short-circuit &&), so
        // storage-less untyped operands are never dereferenced.
        bool ln = lnull(i);
        bool lv = !ln && lg(i);
        bool rn = rnull(i);
        bool rv = !rn && rg(i);
        // Mirrors the row path's evaluation order: a NULL left operand is
        // NULL even when the right operand would decide (`NULL AND false`
        // is NULL here, not false).
        bool null = is_and ? (ln || (lv && rn)) : (ln || (!lv && rn));
        if (null) {
          out.AppendNull();
        } else {
          out.AppendBool(is_and ? (lv && rv) : (lv || rv));
        }
      }
    });
  });
  return out;
}

Column Evaluator::Arith(const Operand& l, const Operand& r, BinaryOp op) {
  if (l.type == ValueType::kNull || r.type == ValueType::kNull) {
    return AllNull();
  }
  if (op == BinaryOp::kAdd && l.type == ValueType::kString) {
    Column out(ValueType::kString);
    out.Reserve(n);
    std::string tmp;
    WithStr(l, [&](auto lg, auto lnull) {
      WithStr(r, [&](auto rg, auto rnull) {
        for (size_t i = 0; i < n; ++i) {
          if (lnull(i) || rnull(i)) {
            out.AppendNull();
            continue;
          }
          std::string_view a = lg(i), b = rg(i);
          tmp.assign(a.data(), a.size());
          tmp.append(b.data(), b.size());
          out.AppendString(tmp);
        }
      });
    });
    return out;
  }
  if (l.type == ValueType::kInt64 && r.type == ValueType::kInt64) {
    Column out(ValueType::kInt64);
    out.Reserve(n);
    WithI64(l, [&](auto lg, auto lnull) {
      WithI64(r, [&](auto rg, auto rnull) {
        for (size_t i = 0; i < n; ++i) {
          if (lnull(i) || rnull(i)) {
            out.AppendNull();
            continue;
          }
          int64_t a = lg(i), b = rg(i);
          out.AppendInt64(op == BinaryOp::kAdd   ? a + b
                          : op == BinaryOp::kSub ? a - b
                                                 : a * b);
        }
      });
    });
    return out;
  }
  Column out(ValueType::kDouble);
  out.Reserve(n);
  WithF64(l, [&](auto lg, auto lnull) {
    WithF64(r, [&](auto rg, auto rnull) {
      for (size_t i = 0; i < n; ++i) {
        if (lnull(i) || rnull(i)) {
          out.AppendNull();
          continue;
        }
        double a = lg(i), b = rg(i);
        out.AppendDouble(op == BinaryOp::kAdd   ? a + b
                         : op == BinaryOp::kSub ? a - b
                                                : a * b);
      }
    });
  });
  return out;
}

Column Evaluator::Compare(const Operand& l, const Operand& r, BinaryOp op) {
  if (l.type == ValueType::kNull || r.type == ValueType::kNull) {
    return AllNull();
  }
  Column out(ValueType::kBool);
  out.Reserve(n);
  if (l.type == ValueType::kInt64 && r.type == ValueType::kInt64) {
    WithI64(l, [&](auto lg, auto lnull) {
      WithI64(r, [&](auto rg, auto rnull) {
        for (size_t i = 0; i < n; ++i) {
          if (lnull(i) || rnull(i)) {
            out.AppendNull();
            continue;
          }
          int64_t a = lg(i), b = rg(i);
          int c = a < b ? -1 : (a > b ? 1 : 0);
          out.AppendBool(CmpToBool(op, c));
        }
      });
    });
  } else if (IsNumericType(l.type) && IsNumericType(r.type)) {
    WithF64(l, [&](auto lg, auto lnull) {
      WithF64(r, [&](auto rg, auto rnull) {
        for (size_t i = 0; i < n; ++i) {
          if (lnull(i) || rnull(i)) {
            out.AppendNull();
            continue;
          }
          double a = lg(i), b = rg(i);
          int c = a < b ? -1 : (a > b ? 1 : 0);
          out.AppendBool(CmpToBool(op, c));
        }
      });
    });
  } else if (l.type == ValueType::kString) {
    WithStr(l, [&](auto lg, auto lnull) {
      WithStr(r, [&](auto rg, auto rnull) {
        for (size_t i = 0; i < n; ++i) {
          if (lnull(i) || rnull(i)) {
            out.AppendNull();
            continue;
          }
          int c = lg(i).compare(rg(i));
          out.AppendBool(CmpToBool(op, c < 0 ? -1 : (c > 0 ? 1 : 0)));
        }
      });
    });
  } else {  // kBool vs kBool (CanVectorize admits no other combination)
    WithBool(l, [&](auto lg, auto lnull) {
      WithBool(r, [&](auto rg, auto rnull) {
        for (size_t i = 0; i < n; ++i) {
          if (lnull(i) || rnull(i)) {
            out.AppendNull();
            continue;
          }
          int c = static_cast<int>(lg(i)) - static_cast<int>(rg(i));
          out.AppendBool(CmpToBool(op, c));
        }
      });
    });
  }
  return out;
}

}  // namespace

bool CanVectorize(const Expr& expr, const std::vector<ValueType>& col_types,
                  ValueType* out_type) {
  switch (expr.kind()) {
    case Expr::Kind::kColumn: {
      const auto& c = static_cast<const ColumnRef&>(expr);
      if (c.index() >= col_types.size()) return false;
      *out_type = col_types[c.index()];
      return true;
    }
    case Expr::Kind::kLiteral:
      *out_type = static_cast<const Literal&>(expr).value().type();
      return true;
    case Expr::Kind::kNot: {
      ValueType t;
      if (!CanVectorize(*static_cast<const NotExpr&>(expr).inner(), col_types,
                        &t)) {
        return false;
      }
      if (t != ValueType::kBool && t != ValueType::kNull) return false;
      *out_type = t;
      return true;
    }
    case Expr::Kind::kNeg: {
      ValueType t;
      if (!CanVectorize(*static_cast<const NegExpr&>(expr).inner(), col_types,
                        &t)) {
        return false;
      }
      if (t != ValueType::kNull && !IsNumericType(t)) return false;
      *out_type = t;
      return true;
    }
    case Expr::Kind::kIsNull: {
      ValueType t;
      if (!CanVectorize(*static_cast<const IsNullExpr&>(expr).inner(),
                        col_types, &t)) {
        return false;
      }
      *out_type = ValueType::kBool;
      return true;
    }
    case Expr::Kind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      ValueType lt, rt;
      if (!CanVectorize(*b.left(), col_types, &lt) ||
          !CanVectorize(*b.right(), col_types, &rt)) {
        return false;
      }
      switch (b.op()) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr: {
          bool l_ok = lt == ValueType::kBool || lt == ValueType::kNull;
          bool r_ok = rt == ValueType::kBool || rt == ValueType::kNull;
          if (!l_ok || !r_ok) return false;
          *out_type = (lt == ValueType::kNull && rt == ValueType::kNull)
                          ? ValueType::kNull
                          : ValueType::kBool;
          return true;
        }
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          if (lt == ValueType::kNull || rt == ValueType::kNull) {
            *out_type = ValueType::kNull;
            return true;
          }
          if (b.op() == BinaryOp::kAdd && lt == ValueType::kString &&
              rt == ValueType::kString) {
            *out_type = ValueType::kString;
            return true;
          }
          if (!IsNumericType(lt) || !IsNumericType(rt)) return false;
          *out_type = (lt == ValueType::kInt64 && rt == ValueType::kInt64)
                          ? ValueType::kInt64
                          : ValueType::kDouble;
          return true;
        }
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          // Division can error per row (divide by zero) — the row path owns
          // those semantics.
          return false;
        default: {  // comparisons
          if (lt == ValueType::kNull || rt == ValueType::kNull) {
            *out_type = ValueType::kNull;
            return true;
          }
          bool comparable =
              (IsNumericType(lt) && IsNumericType(rt)) || lt == rt;
          if (!comparable) return false;
          *out_type = ValueType::kBool;
          return true;
        }
      }
    }
  }
  return false;
}

Column EvalVector(const Expr& expr, const std::vector<Column>& cols,
                  size_t num_rows) {
  Evaluator ev{cols, num_rows};
  return ev.Eval(expr);
}

}  // namespace cq

#include "cql/expr.h"

namespace cq {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

bool IsPredicateOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return true;
    default:
      return false;
  }
}

Result<Value> BinaryExpr::Eval(const Tuple& tuple) const {
  // Short-circuit logical operators first.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    CQ_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple));
    if (l.is_null()) return Value::Null();
    if (!l.is_bool()) {
      return Status::TypeError("AND/OR operand must be BOOL, got " +
                               std::string(ValueTypeToString(l.type())));
    }
    if (op_ == BinaryOp::kAnd && !l.bool_value()) return Value(false);
    if (op_ == BinaryOp::kOr && l.bool_value()) return Value(true);
    CQ_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple));
    if (r.is_null()) return Value::Null();
    if (!r.is_bool()) {
      return Status::TypeError("AND/OR operand must be BOOL, got " +
                               std::string(ValueTypeToString(r.type())));
    }
    return Value(r.bool_value());
  }

  CQ_ASSIGN_OR_RETURN(Value l, left_->Eval(tuple));
  CQ_ASSIGN_OR_RETURN(Value r, right_->Eval(tuple));

  switch (op_) {
    case BinaryOp::kAdd:
      return Value::Add(l, r);
    case BinaryOp::kSub:
      return Value::Subtract(l, r);
    case BinaryOp::kMul:
      return Value::Multiply(l, r);
    case BinaryOp::kDiv:
      return Value::Divide(l, r);
    case BinaryOp::kMod:
      return Value::Modulo(l, r);
    default:
      break;
  }

  // Comparisons: SQL semantics — any NULL operand yields NULL.
  if (l.is_null() || r.is_null()) return Value::Null();
  int c = l.Compare(r);
  switch (op_) {
    case BinaryOp::kEq:
      return Value(c == 0);
    case BinaryOp::kNe:
      return Value(c != 0);
    case BinaryOp::kLt:
      return Value(c < 0);
    case BinaryOp::kLe:
      return Value(c <= 0);
    case BinaryOp::kGt:
      return Value(c > 0);
    case BinaryOp::kGe:
      return Value(c >= 0);
    default:
      return Status::Internal("unhandled binary operator");
  }
}

Result<Value> NotExpr::Eval(const Tuple& tuple) const {
  CQ_ASSIGN_OR_RETURN(Value v, inner_->Eval(tuple));
  if (v.is_null()) return Value::Null();
  if (!v.is_bool()) {
    return Status::TypeError("NOT operand must be BOOL");
  }
  return Value(!v.bool_value());
}

Result<Value> NegExpr::Eval(const Tuple& tuple) const {
  CQ_ASSIGN_OR_RETURN(Value v, inner_->Eval(tuple));
  if (v.is_null()) return Value::Null();
  if (v.is_int64()) return Value(-v.int64_value());
  if (v.is_double()) return Value(-v.double_value());
  return Status::TypeError("unary - operand must be numeric");
}

Result<Value> IsNullExpr::Eval(const Tuple& tuple) const {
  CQ_ASSIGN_OR_RETURN(Value v, inner_->Eval(tuple));
  bool is_null = v.is_null();
  return Value(negated_ ? !is_null : is_null);
}

ExprPtr Col(size_t index, std::string name) {
  if (name.empty()) name = "$" + std::to_string(index);
  return std::make_shared<ColumnRef>(index, std::move(name));
}
ExprPtr Lit(Value v) { return std::make_shared<Literal>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value(v)); }
ExprPtr Lit(double v) { return Lit(Value(v)); }
ExprPtr Lit(const char* v) { return Lit(Value(v)); }
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kEq, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kLt, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kGt, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return Bin(BinaryOp::kOr, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) { return std::make_shared<NotExpr>(std::move(e)); }

}  // namespace cq

#include "cep/pattern.h"

#include <algorithm>

namespace cq {

const char* ContiguityPolicyToString(ContiguityPolicy policy) {
  switch (policy) {
    case ContiguityPolicy::kStrictContiguity:
      return "strict-contiguity";
    case ContiguityPolicy::kSkipTillNext:
      return "skip-till-next";
    case ContiguityPolicy::kSkipTillAny:
      return "skip-till-any";
  }
  return "?";
}

PatternMatcher::PatternMatcher(CepPattern pattern)
    : pattern_(std::move(pattern)) {}

Result<std::vector<CepMatch>> PatternMatcher::Advance(const Tuple& event,
                                                      Timestamp ts) {
  std::vector<CepMatch> matches;
  if (pattern_.steps.empty()) return matches;

  Tuple key = event.Project(pattern_.key_indexes);
  std::vector<Run>& runs = runs_[key];

  auto step_matches = [&](size_t step) -> Result<bool> {
    const ExprPtr& pred = pattern_.steps[step].predicate;
    if (pred == nullptr) return true;
    CQ_ASSIGN_OR_RETURN(Value v, pred->Eval(event));
    return v.is_bool() && v.bool_value();
  };

  auto in_window = [&](const Run& run) {
    return pattern_.within <= 0 || ts - run.start <= pattern_.within;
  };

  std::vector<Run> next_runs;
  next_runs.reserve(runs.size() + 1);

  for (Run& run : runs) {
    if (!in_window(run)) continue;  // expired: drop
    CQ_ASSIGN_OR_RETURN(bool advance, step_matches(run.next_step));
    if (!advance) {
      switch (pattern_.policy) {
        case ContiguityPolicy::kStrictContiguity:
          continue;  // the run dies: the next event did not match
        case ContiguityPolicy::kSkipTillNext:
        case ContiguityPolicy::kSkipTillAny:
          next_runs.push_back(std::move(run));  // skip this event
          continue;
      }
    }
    // The event advances this run.
    Run advanced = run;
    advanced.events.push_back(event);
    advanced.next_step = run.next_step + 1;
    if (pattern_.policy == ContiguityPolicy::kSkipTillAny) {
      // Fork: the original run also survives, awaiting another candidate.
      next_runs.push_back(std::move(run));
    }
    if (advanced.next_step == pattern_.steps.size()) {
      CepMatch m;
      m.key = key;
      m.events = std::move(advanced.events);
      m.start = advanced.start;
      m.end = ts;
      matches.push_back(std::move(m));
    } else {
      next_runs.push_back(std::move(advanced));
    }
  }

  // The event may also begin a fresh run.
  CQ_ASSIGN_OR_RETURN(bool starts, step_matches(0));
  if (starts) {
    if (pattern_.steps.size() == 1) {
      CepMatch m;
      m.key = key;
      m.events = {event};
      m.start = ts;
      m.end = ts;
      matches.push_back(std::move(m));
    } else {
      next_runs.push_back(Run{1, {event}, ts});
    }
  }

  runs = std::move(next_runs);
  if (runs.empty()) runs_.erase(key);
  return matches;
}

void PatternMatcher::ExpireBefore(Timestamp cutoff) {
  if (pattern_.within <= 0) return;
  for (auto it = runs_.begin(); it != runs_.end();) {
    auto& runs = it->second;
    runs.erase(std::remove_if(runs.begin(), runs.end(),
                              [&](const Run& r) {
                                return r.start + pattern_.within < cutoff;
                              }),
               runs.end());
    if (runs.empty()) {
      it = runs_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t PatternMatcher::PartialRuns() const {
  size_t n = 0;
  for (const auto& [key, runs] : runs_) n += runs.size();
  return n;
}

Status CepOperator::ProcessElement(size_t, const StreamElement& element,
                                   const OperatorContext&, Collector* out) {
  CQ_ASSIGN_OR_RETURN(std::vector<CepMatch> found,
                      matcher_.Advance(element.tuple, element.timestamp));
  for (const CepMatch& m : found) {
    ++matches_;
    std::vector<Value> vals = m.key.values();
    vals.push_back(Value(m.start));
    vals.push_back(Value(m.end));
    out->Emit(StreamElement::Record(Tuple(std::move(vals)), m.end));
  }
  return Status::OK();
}

Status CepOperator::OnWatermark(Timestamp watermark, const OperatorContext&,
                                Collector*) {
  matcher_.ExpireBefore(watermark);
  return Status::OK();
}

}  // namespace cq

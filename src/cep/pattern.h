#ifndef CQ_CEP_PATTERN_H_
#define CQ_CEP_PATTERN_H_

/// \file pattern.h
/// \brief Complex event recognition over streams (paper §6, [37]).
///
/// The survey positions CER as "a form of continuous querying" realised on
/// top of streaming systems. This module implements the core: sequence
/// patterns SEQ(s1, s2, ..., sn) WITHIN w over keyed streams, evaluated by
/// an NFA whose partial matches ("runs") live in per-key state, under the
/// selection policies of the CER literature:
///
///  - kStrictContiguity: the very next event of the key must match the next
///    step, or the run dies;
///  - kSkipTillNext: non-matching events are skipped; a matching event
///    advances the run (no branching);
///  - kSkipTillAny: every matching event forks the run — all combinations
///    are found.
///
/// Runs expire when event time passes start + within (enforced on watermark
/// in the operator, or explicitly via ExpireBefore).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cql/expr.h"
#include "dataflow/operator.h"

namespace cq {

/// \brief One step of a sequence pattern.
struct CepStep {
  /// Step label (used in diagnostics and match rendering).
  std::string name;
  /// Predicate over the event tuple.
  ExprPtr predicate;
};

enum class ContiguityPolicy {
  kStrictContiguity,
  kSkipTillNext,
  kSkipTillAny,
};

const char* ContiguityPolicyToString(ContiguityPolicy policy);

/// \brief A sequence pattern: SEQ(steps...) WITHIN within, per key.
struct CepPattern {
  std::vector<CepStep> steps;
  Duration within = 0;  // 0 = unbounded
  /// Partition columns; empty = one global sequence.
  std::vector<size_t> key_indexes;
  ContiguityPolicy policy = ContiguityPolicy::kSkipTillNext;
};

/// \brief A completed match.
struct CepMatch {
  Tuple key;
  /// The matched event per step, in step order.
  std::vector<Tuple> events;
  Timestamp start = 0;  // timestamp of the first matched event
  Timestamp end = 0;    // timestamp of the last matched event
};

/// \brief The NFA runtime for one pattern (all keys).
class PatternMatcher {
 public:
  explicit PatternMatcher(CepPattern pattern);

  /// \brief Feeds one event (assumed key-ordered per key by event time);
  /// returns the matches it completes.
  Result<std::vector<CepMatch>> Advance(const Tuple& event, Timestamp ts);

  /// \brief Drops partial runs that can no longer complete (their window
  /// start + within < cutoff).
  void ExpireBefore(Timestamp cutoff);

  /// \brief Live partial runs across all keys.
  size_t PartialRuns() const;

  const CepPattern& pattern() const { return pattern_; }

 private:
  struct Run {
    size_t next_step;  // index of the step awaited
    std::vector<Tuple> events;
    Timestamp start;
  };

  CepPattern pattern_;
  std::map<Tuple, std::vector<Run>> runs_;  // key -> active runs
};

/// \brief Dataflow operator: recognises the pattern per key, emits one
/// record per match with schema (key columns..., start, end) at the match's
/// end timestamp, and prunes expired runs on watermarks.
class CepOperator : public Operator {
 public:
  CepOperator(std::string name, CepPattern pattern)
      : Operator(std::move(name)), matcher_(std::move(pattern)) {}

  Status ProcessElement(size_t port, const StreamElement& element,
                        const OperatorContext& ctx, Collector* out) override;
  Status OnWatermark(Timestamp watermark, const OperatorContext& ctx,
                     Collector* out) override;

  size_t StateSize() const override { return matcher_.PartialRuns(); }
  bool IsStateless() const override { return false; }
  uint64_t matches() const { return matches_; }

 private:
  PatternMatcher matcher_;
  uint64_t matches_ = 0;
};

}  // namespace cq

#endif  // CQ_CEP_PATTERN_H_

#ifndef CQ_STREAM_STREAM_H_
#define CQ_STREAM_STREAM_H_

/// \file stream.h
/// \brief Data streams per paper Definition 2.2.
///
/// A data stream S maps each instant tau in T to a finite subset of tuples;
/// operationally it is a potentially infinite sequence of elements (o, tau)
/// where o is a tuple and tau a timestamp. Streams also carry *punctuation*
/// (watermarks): assertions that no element with a smaller timestamp will
/// arrive, which is how event-time progress propagates (§4).

#include <algorithm>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace cq {

/// \brief Kind of element travelling on a stream.
enum class ElementKind : uint8_t {
  /// A data record (o, tau).
  kRecord,
  /// A low watermark: no further record will carry timestamp < `timestamp`.
  kWatermark,
  /// An epoch barrier (checkpoint alignment marker). Barriers travel
  /// in-band through channels so a snapshot taken at a barrier reflects
  /// exactly the pre-barrier prefix of the stream; they are consumed by the
  /// runtime (worker loops / barrier aligners) and never reach operators.
  kBarrier,
};

/// \brief One element of a data stream: a timestamped record or a watermark.
struct StreamElement {
  ElementKind kind = ElementKind::kRecord;
  Timestamp timestamp = 0;
  Tuple tuple;  // empty for watermarks

  static StreamElement Record(Tuple t, Timestamp ts) {
    return {ElementKind::kRecord, ts, std::move(t)};
  }
  static StreamElement Watermark(Timestamp ts) {
    return {ElementKind::kWatermark, ts, Tuple()};
  }
  /// \brief Checkpoint barrier for `epoch` (epoch rides in `timestamp`).
  static StreamElement Barrier(uint64_t epoch) {
    return {ElementKind::kBarrier, static_cast<Timestamp>(epoch), Tuple()};
  }
  /// \brief End-of-stream punctuation: a watermark at +infinity.
  static StreamElement EndOfStream() { return Watermark(kMaxTimestamp); }

  bool is_record() const { return kind == ElementKind::kRecord; }
  bool is_watermark() const { return kind == ElementKind::kWatermark; }
  bool is_barrier() const { return kind == ElementKind::kBarrier; }
  /// \brief The barrier's checkpoint epoch. Precondition: is_barrier().
  uint64_t barrier_epoch() const { return static_cast<uint64_t>(timestamp); }
  bool is_end_of_stream() const {
    return is_watermark() && timestamp == kMaxTimestamp;
  }

  std::string ToString() const;
};

/// \brief A finite, materialised prefix of a stream (testing, batch replay,
/// and the "stream up to tau" construction of Definition 2.3).
class BoundedStream {
 public:
  BoundedStream() = default;
  explicit BoundedStream(SchemaPtr schema) : schema_(std::move(schema)) {}

  const SchemaPtr& schema() const { return schema_; }
  void set_schema(SchemaPtr schema) { schema_ = std::move(schema); }

  void Append(Tuple t, Timestamp ts) {
    elements_.push_back(StreamElement::Record(std::move(t), ts));
  }
  void AppendWatermark(Timestamp ts) {
    elements_.push_back(StreamElement::Watermark(ts));
  }
  void Append(StreamElement e) { elements_.push_back(std::move(e)); }

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const StreamElement& at(size_t i) const { return elements_[i]; }
  const std::vector<StreamElement>& elements() const { return elements_; }

  auto begin() const { return elements_.begin(); }
  auto end() const { return elements_.end(); }

  /// \brief Number of data records (excludes punctuation).
  size_t num_records() const;

  /// \brief All records with timestamp <= tau — the "stream up to tau" of the
  /// CQL continuous-semantics definition (§3.1).
  BoundedStream UpTo(Timestamp tau) const;

  /// \brief True if record timestamps are non-decreasing (ordered /
  /// append-only stream assumption of Terry et al.).
  bool IsOrdered() const;

  /// \brief Stable sort of records by timestamp (record order preserved for
  /// equal timestamps); watermarks are dropped.
  BoundedStream Sorted() const;

  /// \brief Largest record timestamp, or kMinTimestamp when empty.
  Timestamp MaxTimestamp() const;

 private:
  SchemaPtr schema_;
  std::vector<StreamElement> elements_;
};

/// \brief Consumer-side interface: a pull-based reader over a stream.
class StreamReader {
 public:
  virtual ~StreamReader() = default;
  /// \brief Next element, or Status::Closed once exhausted.
  virtual Result<StreamElement> Next() = 0;
};

/// \brief Producer-side interface: a push-based sink for stream elements.
class StreamWriter {
 public:
  virtual ~StreamWriter() = default;
  virtual Status Write(StreamElement element) = 0;
};

/// \brief Reader over a materialised BoundedStream.
class BoundedStreamReader : public StreamReader {
 public:
  explicit BoundedStreamReader(const BoundedStream* stream)
      : stream_(stream) {}
  Result<StreamElement> Next() override {
    if (pos_ >= stream_->size()) return Status::Closed("end of stream");
    return stream_->at(pos_++);
  }

 private:
  const BoundedStream* stream_;
  size_t pos_ = 0;
};

/// \brief Writer that appends into a BoundedStream (collecting sink).
class CollectingWriter : public StreamWriter {
 public:
  explicit CollectingWriter(BoundedStream* out) : out_(out) {}
  Status Write(StreamElement element) override {
    out_->Append(std::move(element));
    return Status::OK();
  }

 private:
  BoundedStream* out_;
};

/// \brief Writer that invokes a callback per element (inline sink).
class CallbackWriter : public StreamWriter {
 public:
  using Callback = std::function<Status(const StreamElement&)>;
  explicit CallbackWriter(Callback cb) : cb_(std::move(cb)) {}
  Status Write(StreamElement element) override { return cb_(element); }

 private:
  Callback cb_;
};

}  // namespace cq

#endif  // CQ_STREAM_STREAM_H_

#include "stream/stream.h"

namespace cq {

std::string StreamElement::ToString() const {
  if (is_watermark()) {
    if (is_end_of_stream()) return "WM(+inf)";
    return "WM(" + std::to_string(timestamp) + ")";
  }
  if (is_barrier()) return "BARRIER(" + std::to_string(barrier_epoch()) + ")";
  return tuple.ToString() + "@" + std::to_string(timestamp);
}

size_t BoundedStream::num_records() const {
  size_t n = 0;
  for (const auto& e : elements_) n += e.is_record();
  return n;
}

BoundedStream BoundedStream::UpTo(Timestamp tau) const {
  BoundedStream out(schema_);
  for (const auto& e : elements_) {
    if (e.is_record() && e.timestamp <= tau) out.Append(e);
  }
  return out;
}

bool BoundedStream::IsOrdered() const {
  Timestamp last = kMinTimestamp;
  for (const auto& e : elements_) {
    if (!e.is_record()) continue;
    if (e.timestamp < last) return false;
    last = e.timestamp;
  }
  return true;
}

BoundedStream BoundedStream::Sorted() const {
  BoundedStream out(schema_);
  std::vector<StreamElement> records;
  records.reserve(elements_.size());
  for (const auto& e : elements_) {
    if (e.is_record()) records.push_back(e);
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const StreamElement& a, const StreamElement& b) {
                     return a.timestamp < b.timestamp;
                   });
  for (auto& e : records) out.Append(std::move(e));
  return out;
}

Timestamp BoundedStream::MaxTimestamp() const {
  Timestamp max = kMinTimestamp;
  for (const auto& e : elements_) {
    if (e.is_record() && e.timestamp > max) max = e.timestamp;
  }
  return max;
}

}  // namespace cq

#ifndef CQ_RELATION_RELATION_H_
#define CQ_RELATION_RELATION_H_

/// \file relation.h
/// \brief Instantaneous and time-varying relations (paper Definition 3.1).
///
/// CQL gives continuous queries their semantics through *time-varying
/// relations*: a mapping from each time instant to a finite bag of tuples.
/// We represent instantaneous relations as multisets with signed
/// multiplicities (Z-sets), which makes deltas first-class: an update is just
/// a relation whose multiplicities may be negative. This is the algebra that
/// underlies both the R2S operators (IStream/DStream are literally the
/// positive/negative parts of consecutive differences) and incremental view
/// maintenance (§5.1).

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "types/schema.h"
#include "types/tuple.h"

namespace cq {

/// \brief A multiset of tuples with signed multiplicities (a Z-set).
///
/// Multiplicity 0 entries are never stored. A MultisetRelation with all
/// multiplicities >= 0 is an ordinary bag (an instantaneous relation R(tau));
/// mixed signs represent a *delta*.
class MultisetRelation {
 public:
  MultisetRelation() = default;

  /// \brief Adds `count` copies of `t` (count may be negative).
  void Add(const Tuple& t, int64_t count = 1);

  /// \brief Multiplicity of `t` (0 when absent).
  int64_t Count(const Tuple& t) const;

  bool Contains(const Tuple& t) const { return Count(t) != 0; }

  /// \brief Number of distinct tuples with non-zero multiplicity.
  size_t NumDistinct() const { return entries_.size(); }

  /// \brief Sum of positive multiplicities (bag cardinality of the positive
  /// part).
  int64_t Cardinality() const;

  bool Empty() const { return entries_.empty(); }

  /// \brief Z-set addition: pointwise sum of multiplicities.
  MultisetRelation Plus(const MultisetRelation& other) const;

  /// \brief In-place Z-set addition: this += other, O(|other| log |this|).
  /// The workhorse of incremental accumulation (Plus() copies the receiver).
  void PlusInPlace(const MultisetRelation& other);

  /// \brief Z-set negation.
  MultisetRelation Negate() const;

  /// \brief this + other.Negate(); the delta taking `other` to `this`.
  MultisetRelation Minus(const MultisetRelation& other) const;

  /// \brief Tuples with positive multiplicity, multiplicities preserved.
  MultisetRelation PositivePart() const;

  /// \brief Tuples with negative multiplicity, multiplicities negated to be
  /// positive (i.e. "what was deleted", as a bag).
  MultisetRelation NegativePartAbs() const;

  /// \brief Set-semantics projection: every positive tuple at multiplicity 1.
  MultisetRelation Distinct() const;

  bool operator==(const MultisetRelation& other) const {
    return entries_ == other.entries_;
  }

  /// \brief Deterministic iteration order (sorted by tuple) — hashing the
  /// contents or printing them is reproducible.
  const std::map<Tuple, int64_t>& entries() const { return entries_; }

  /// \brief Materialises the positive part as a flat bag of tuples
  /// (each tuple repeated per its multiplicity), sorted.
  std::vector<Tuple> ToBag() const;

  std::string ToString() const;

 private:
  std::map<Tuple, int64_t> entries_;
};

/// \brief A time-varying relation: the full map tau -> R(tau), stored as
/// deltas keyed by the instants at which the relation changed.
///
/// `At(tau)` reconstructs the instantaneous relation by summing all deltas
/// with timestamp <= tau. This is the reference ("denotational") object that
/// operators are tested against; execution engines never materialise it.
class TimeVaryingRelation {
 public:
  TimeVaryingRelation() = default;
  explicit TimeVaryingRelation(SchemaPtr schema) : schema_(std::move(schema)) {}

  const SchemaPtr& schema() const { return schema_; }

  /// \brief Records that at instant `tau` the relation changed by `delta`.
  /// Multiple calls at the same instant accumulate.
  void ApplyDelta(Timestamp tau, const MultisetRelation& delta);

  /// \brief Inserts one tuple at instant tau.
  void Insert(Timestamp tau, const Tuple& t) {
    MultisetRelation d;
    d.Add(t, 1);
    ApplyDelta(tau, d);
  }

  /// \brief Deletes one tuple at instant tau.
  void Delete(Timestamp tau, const Tuple& t) {
    MultisetRelation d;
    d.Add(t, -1);
    ApplyDelta(tau, d);
  }

  /// \brief The instantaneous relation R(tau).
  MultisetRelation At(Timestamp tau) const;

  /// \brief The delta R(tau) - R(tau-) applied exactly at instant tau
  /// (empty if the relation did not change at tau).
  MultisetRelation DeltaAt(Timestamp tau) const;

  /// \brief All instants at which the relation changes, ascending.
  std::vector<Timestamp> ChangeInstants() const;

  bool Empty() const { return deltas_.empty(); }

 private:
  SchemaPtr schema_;
  std::map<Timestamp, MultisetRelation> deltas_;
};

}  // namespace cq

#endif  // CQ_RELATION_RELATION_H_

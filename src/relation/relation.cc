#include "relation/relation.h"

namespace cq {

void MultisetRelation::Add(const Tuple& t, int64_t count) {
  if (count == 0) return;
  auto it = entries_.find(t);
  if (it == entries_.end()) {
    entries_.emplace(t, count);
    return;
  }
  it->second += count;
  if (it->second == 0) entries_.erase(it);
}

int64_t MultisetRelation::Count(const Tuple& t) const {
  auto it = entries_.find(t);
  return it == entries_.end() ? 0 : it->second;
}

int64_t MultisetRelation::Cardinality() const {
  int64_t n = 0;
  for (const auto& [t, c] : entries_) {
    if (c > 0) n += c;
  }
  return n;
}

MultisetRelation MultisetRelation::Plus(const MultisetRelation& other) const {
  MultisetRelation out = *this;
  out.PlusInPlace(other);
  return out;
}

void MultisetRelation::PlusInPlace(const MultisetRelation& other) {
  for (const auto& [t, c] : other.entries_) Add(t, c);
}

MultisetRelation MultisetRelation::Negate() const {
  MultisetRelation out;
  for (const auto& [t, c] : entries_) out.entries_.emplace(t, -c);
  return out;
}

MultisetRelation MultisetRelation::Minus(const MultisetRelation& other) const {
  MultisetRelation out = *this;
  for (const auto& [t, c] : other.entries_) out.Add(t, -c);
  return out;
}

MultisetRelation MultisetRelation::PositivePart() const {
  MultisetRelation out;
  for (const auto& [t, c] : entries_) {
    if (c > 0) out.entries_.emplace(t, c);
  }
  return out;
}

MultisetRelation MultisetRelation::NegativePartAbs() const {
  MultisetRelation out;
  for (const auto& [t, c] : entries_) {
    if (c < 0) out.entries_.emplace(t, -c);
  }
  return out;
}

MultisetRelation MultisetRelation::Distinct() const {
  MultisetRelation out;
  for (const auto& [t, c] : entries_) {
    if (c > 0) out.entries_.emplace(t, 1);
  }
  return out;
}

std::vector<Tuple> MultisetRelation::ToBag() const {
  std::vector<Tuple> out;
  for (const auto& [t, c] : entries_) {
    for (int64_t i = 0; i < c; ++i) out.push_back(t);
  }
  return out;
}

std::string MultisetRelation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [t, c] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
    if (c != 1) out += " x" + std::to_string(c);
  }
  out += "}";
  return out;
}

void TimeVaryingRelation::ApplyDelta(Timestamp tau,
                                     const MultisetRelation& delta) {
  if (delta.Empty()) return;
  auto it = deltas_.find(tau);
  if (it == deltas_.end()) {
    deltas_.emplace(tau, delta);
  } else {
    it->second = it->second.Plus(delta);
    if (it->second.Empty()) deltas_.erase(it);
  }
}

MultisetRelation TimeVaryingRelation::At(Timestamp tau) const {
  MultisetRelation out;
  for (const auto& [t, d] : deltas_) {
    if (t > tau) break;
    out = out.Plus(d);
  }
  return out;
}

MultisetRelation TimeVaryingRelation::DeltaAt(Timestamp tau) const {
  auto it = deltas_.find(tau);
  return it == deltas_.end() ? MultisetRelation() : it->second;
}

std::vector<Timestamp> TimeVaryingRelation::ChangeInstants() const {
  std::vector<Timestamp> out;
  out.reserve(deltas_.size());
  for (const auto& [t, d] : deltas_) out.push_back(t);
  return out;
}

}  // namespace cq

/// \file crash_recovery.cpp
/// \brief Crash recovery walkthrough: epoch checkpoints, fault injection,
/// and effectively-once output (§5 fault tolerance).
///
/// The scenario: a keyed parallel pipeline consumes a broker topic through
/// fenced epoch sinks, checkpointing every other poll. Mid-run a fault is
/// injected — by default the offset commit fails; override the site with
/// CQ_FAULT="<point>:<after>:fail" (e.g.
/// "snapshot.pre_manifest_rename:1:fail") — and the run aborts exactly
/// where a crash would. A fresh pipeline then recovers from the on-disk
/// manifest: operator state is restored, the source rewinds to the
/// checkpointed offsets, the lost window replays, and the publish fence
/// drops duplicate epoch output. The demo verifies the published records
/// equal an uninterrupted run's, byte for byte.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dataflow/operators.h"
#include "dataflow/parallel.h"
#include "ft/coordinator.h"
#include "ft/fault.h"
#include "ft/fence.h"
#include "ft/recovery.h"
#include "ft/snapshot_store.h"
#include "queue/broker.h"
#include "runtime/driver.h"

using namespace cq;
namespace fs = std::filesystem;

namespace {

constexpr int kMessages = 200;
constexpr size_t kParallelism = 2;

void FillBroker(Broker* broker) {
  (void)broker->CreateTopic("tx", 2);
  for (int i = 0; i < kMessages; ++i) {
    Tuple t({Value(int64_t(i % 7)), Value(int64_t(i))});
    std::string key = t[0].ToString();
    (void)broker->Produce("tx", std::move(key), std::move(t), Timestamp(i));
  }
}

/// Per-worker pipeline: pass-through into a fenced epoch sink. The sinks
/// stage their buffers into the checkpoint image; the coordinator publishes
/// from the durable image, so nobody needs the raw sink pointers.
ParallelPipeline::Factory MakeFactory(ft::DurableOutputLog* log) {
  return [log](size_t index) -> Result<WorkerPipeline> {
    WorkerPipeline p;
    p.output = std::make_unique<BoundedStream>();
    auto g = std::make_unique<DataflowGraph>();
    p.source = g->AddNode(std::make_unique<PassThroughOperator>("src"));
    NodeId sink_id = g->AddNode(
        std::make_unique<ft::EpochSinkOperator>("sink", log, index));
    CQ_RETURN_NOT_OK(g->Connect(p.source, sink_id));
    p.executor = std::make_unique<PipelineExecutor>(std::move(g));
    return p;
  };
}

/// One run attempt: recover whatever is durable, then stream the topic with
/// a checkpoint every other poll. Returns an error where a crash would
/// land; everything up to the last durable epoch survives on disk.
Status RunOnce(Broker* broker, const std::string& snap_dir,
               const std::string& out_dir) {
  ft::DurableOutputLog log(out_dir);
  CQ_RETURN_NOT_OK(log.Init());
  ft::SnapshotStore store(snap_dir);
  CQ_RETURN_NOT_OK(store.Init());

  ParallelPipeline pipeline(kParallelism, MakeFactory(&log),
                            ProjectKeyFn({0}));
  BrokerSourceDriver driver(broker, "tx", "demo");

  ft::CheckpointCoordinator coord(&pipeline, &store);
  coord.SetOffsetsProvider([&driver] { return driver.Offsets(); });
  coord.SetCommitFn([&driver](const std::map<std::string, int64_t>& o) {
    return driver.CommitThrough(o);
  });
  coord.SetWatermarkFn([&driver] { return driver.CurrentWatermark(); });
  coord.SetOutputLog(&log);

  CQ_RETURN_NOT_OK(pipeline.Start());

  // Recovery (a no-op when the store is empty): restore the newest durable
  // epoch, rewind the source, and republish the restored epoch's staged
  // output from the same image — the fence makes that idempotent.
  ft::RecoveryManager recovery(&store);
  recovery.SetOutputLog(&log);
  Result<ft::RecoveryReport> report = recovery.Recover(
      &pipeline,
      [&driver](const std::map<std::string, int64_t>& o) {
        return driver.SeekTo(o);
      },
      [&driver] { return driver.EndOffsets(); });
  CQ_RETURN_NOT_OK(report.status());
  if (report->restored) {
    std::printf("  recovered: epoch %llu, watermark %lld, replaying %lld "
                "records\n",
                static_cast<unsigned long long>(report->epoch),
                static_cast<long long>(report->watermark),
                static_cast<long long>(report->records_to_replay));
    coord.ResumeFromEpoch(report->epoch);
  }

  int polls = 0;
  while (true) {
    Result<StreamBatch> batch = driver.PollBatch(16);
    CQ_RETURN_NOT_OK(batch.status());
    if (batch->num_records() == 0) break;
    for (const auto& e : batch->elements()) {
      if (e.is_record()) {
        CQ_RETURN_NOT_OK(pipeline.Send(e.tuple, e.timestamp));
      } else if (e.is_watermark()) {
        CQ_RETURN_NOT_OK(pipeline.BroadcastWatermark(e.timestamp));
      }
    }
    if (++polls % 2 == 0) {
      Result<uint64_t> epoch = coord.TriggerCheckpoint();
      CQ_RETURN_NOT_OK(epoch.status());
      std::printf("  checkpoint: epoch %llu durable\n",
                  static_cast<unsigned long long>(*epoch));
    }
  }
  CQ_RETURN_NOT_OK(coord.TriggerCheckpoint().status());  // fence the tail
  return pipeline.Finish().status();
}

std::multiset<std::string> Published(const std::string& out_dir) {
  ft::DurableOutputLog log(out_dir);
  Result<std::vector<std::string>> records = log.ReadAll();
  if (!records.ok()) return {};
  return {records->begin(), records->end()};
}

std::string Scratch(const std::string& tag) {
  fs::path dir = fs::temp_directory_path() / ("cq_crash_recovery_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

}  // namespace

int main() {
  // Reference: an uninterrupted run.
  std::printf("== reference run (no faults) ==\n");
  Broker broker_a;
  FillBroker(&broker_a);
  std::string snap_a = Scratch("ref_snap");
  std::string out_a = Scratch("ref_out");
  Status st = RunOnce(&broker_a, snap_a, out_a);
  if (!st.ok()) {
    std::fprintf(stderr, "reference run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Faulty run: arm from CQ_FAULT, or default to an offset-commit failure
  // on the 2nd checkpoint.
  ft::FaultInjector& injector = ft::FaultInjector::Global();
  if (std::getenv("CQ_FAULT") != nullptr) {
    injector.ArmFromEnv();
    std::printf("\n== faulty run (CQ_FAULT=%s) ==\n", std::getenv("CQ_FAULT"));
  } else {
    injector.Arm(ft::faultpoint::kCommitOffsets, /*after=*/1,
                 ft::FaultKind::kFail);
    std::printf("\n== faulty run (source.commit_offsets on 2nd checkpoint) "
                "==\n");
  }
  Broker broker_b;
  FillBroker(&broker_b);
  std::string snap_b = Scratch("crash_snap");
  std::string out_b = Scratch("crash_out");
  int attempts = 0;
  for (; attempts < 10; ++attempts) {
    st = RunOnce(&broker_b, snap_b, out_b);
    if (st.ok()) break;
    std::printf("  crashed: %s\n", st.ToString().c_str());
    injector.Reset();  // the "restarted process" runs clean
    std::printf("== restart %d: recovering from %s ==\n", attempts + 1,
                snap_b.c_str());
  }
  if (!st.ok()) {
    std::fprintf(stderr, "pipeline never completed\n");
    return 1;
  }

  // Effectively-once: the published output must match the reference exactly
  // — no loss from the crash, no duplicates from the replay.
  std::multiset<std::string> ref = Published(out_a);
  std::multiset<std::string> recovered = Published(out_b);
  std::printf("\nreference published %zu records; recovered run published "
              "%zu\n",
              ref.size(), recovered.size());
  if (ref != recovered || ref.empty()) {
    std::fprintf(stderr, "MISMATCH: recovered output differs from "
                         "uninterrupted run\n");
    return 1;
  }
  std::printf("effectively-once verified: outputs identical after %d "
              "crash(es)\n",
              attempts);
  fs::remove_all(snap_a);
  fs::remove_all(out_a);
  fs::remove_all(snap_b);
  fs::remove_all(out_b);
  return 0;
}

/// \file network_security_rpq.cpp
/// \brief Continuous graph querying for network security (paper §5.2).
///
/// The survey motivates streaming graphs with network-security monitoring:
/// connection events form a streaming property graph, and threats are
/// navigational patterns — e.g. a host that reaches a sensitive server
/// through any chain of lateral movements after a suspicious login.
///
/// This example ingests a synthetic connection-event stream and evaluates
/// the continuous RPQ
///     suspiciousLogin / lateralMove* / accessesSecret
/// incrementally: every new event reports exactly the (attacker, asset)
/// pairs it completes, with per-edge latency independent of history size.

#include <cstdio>

#include "graph/streaming_rpq.h"
#include "workload/generators.h"

using namespace cq;

int main() {
  LabelRegistry registry;
  Result<RpqAutomaton> dfa = RpqAutomaton::Compile(
      "suspiciousLogin/lateralMove*/accessesSecret", &registry);
  if (!dfa.ok()) {
    std::fprintf(stderr, "%s\n", dfa.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled RPQ automaton:\n%s\n",
              dfa->ToString(registry).c_str());

  LabelId login = *registry.Lookup("suspiciousLogin");
  LabelId lateral = *registry.Lookup("lateralMove");
  LabelId secret = *registry.Lookup("accessesSecret");

  // Synthetic event stream over 40 hosts: mostly lateral movement, a few
  // suspicious logins and secret accesses.
  std::vector<StreamingEdge> events =
      MakeGraphStream(/*num_edges=*/600, /*num_vertices=*/40,
                      {lateral, lateral, lateral, login, secret},
                      /*step=*/1, /*seed=*/2024);

  IncrementalRpq continuous(&*dfa);
  size_t total_alerts = 0;
  for (const auto& event : events) {
    std::vector<RpqResult> derived = continuous.AddEdge(event);
    for (const auto& hit : derived) {
      ++total_alerts;
      if (total_alerts <= 12) {
        std::printf(
            "  t=%-4lld ALERT attacker host %lld reaches asset %lld "
            "(event %lld -%s-> %lld completed the path)\n",
            static_cast<long long>(hit.ts),
            static_cast<long long>(hit.src),
            static_cast<long long>(hit.dst),
            static_cast<long long>(event.src),
            registry.Name(event.label).c_str(),
            static_cast<long long>(event.dst));
      }
    }
  }
  if (total_alerts > 12) {
    std::printf("  ... %zu further alerts suppressed\n", total_alerts - 12);
  }

  std::printf(
      "\ningested %zu events; %zu (attacker, asset) pairs derived; "
      "product-graph state: %zu entries\n",
      events.size(), continuous.Results().size(), continuous.StateSize());

  // Cross-check against full snapshot re-evaluation (what a non-incremental
  // engine would recompute after every event).
  SnapshotRpq snapshot(&*dfa);
  for (const auto& event : events) snapshot.AddEdge(event);
  bool consistent = snapshot.Evaluate() == continuous.Results();
  std::printf("snapshot re-evaluation agrees: %s\n",
              consistent ? "yes" : "NO (bug!)");

  // Simple-path semantics (§5.2: different query semantics for navigational
  // queries): how much smaller is the answer when vertices cannot repeat?
  SimplePathRpq simple(&*dfa, /*max_depth=*/6);
  for (const auto& event : events) simple.AddEdge(event);
  auto simple_results = simple.Evaluate();
  std::printf(
      "simple-path semantics (depth<=6): %zu pairs (vs %zu arbitrary), "
      "%llu DFS expansions\n",
      simple_results.size(), continuous.Results().size(),
      static_cast<unsigned long long>(simple.last_expansions()));
  return consistent ? 0 : 1;
}

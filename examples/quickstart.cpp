/// \file quickstart.cpp
/// \brief Quickstart: run the paper's Listing 1 continuous query end to end.
///
/// Registers the Person / RoomObservation streams, parses the CQL text,
/// optimises the plan, and executes it under continuous semantics
/// (Definition 2.3), printing each emitted result. Demonstrates the
/// SQL-first path of a streaming database (§5.1).

#include <cstdio>

#include "sql/optimizer.h"
#include "sql/planner.h"
#include "workload/generators.h"

using namespace cq;  // examples favour brevity

int main() {
  // 1. Register stream schemas in the catalog.
  Catalog catalog;
  Status st = catalog.RegisterStream(
      "Person", Schema::Make({{"id", ValueType::kInt64},
                              {"name", ValueType::kString}}));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  st = catalog.RegisterStream(
      "RoomObservation", Schema::Make({{"id", ValueType::kInt64},
                                       {"room", ValueType::kString}}));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 2. The continuous query from the paper's Listing 1 (time unit: ticks).
  const char* sql =
      "Select count(P.ID) "
      "From Person P, RoomObservation O [Range 15] "
      "Where P.id = O.id "
      "EMIT ISTREAM";
  std::printf("query:\n  %s\n\n", sql);

  Result<PlannedQuery> planned = PlanSql(sql, catalog);
  if (!planned.ok()) {
    std::fprintf(stderr, "plan error: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }

  // 3. Optimise: the cross product + WHERE becomes a hash equi-join.
  OptimizerStats stats;
  Result<RelOpPtr> optimized =
      OptimizePlan(planned->query.plan, OptimizerOptions{}, &stats);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimiser error: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  ContinuousQuery query = planned->query;
  query.plan = *optimized;
  std::printf("optimised plan (%zu equi-joins extracted):\n%s\n",
              stats.equi_joins_extracted, query.plan->ToString(1).c_str());

  // 4. Generate the workload: 5 persons, 40 room observations.
  RoomWorkload w = MakeRoomWorkload(/*num_persons=*/5,
                                    /*num_observations=*/40,
                                    /*num_rooms=*/3, /*skew=*/0.8,
                                    /*max_disorder=*/0, /*seed=*/42);
  std::vector<const BoundedStream*> inputs{&w.persons, &w.observations};

  // 5. Execute continuously: the query is issued once and produces results
  //    at every instant the windows change, until the input is exhausted.
  std::vector<Timestamp> ticks = ReferenceExecutor::DefaultTicks(query, inputs);
  Result<BoundedStream> out = ReferenceExecutor::Execute(query, inputs, ticks);
  if (!out.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 out.status().ToString().c_str());
    return 1;
  }

  std::printf("IStream output (count changes as observations enter/leave the"
              " 15-tick window):\n");
  for (const auto& e : *out) {
    if (!e.is_record()) continue;
    std::printf("  t=%3lld  count=%s\n",
                static_cast<long long>(e.timestamp),
                e.tuple[0].ToString().c_str());
  }
  std::printf("\n%zu result records emitted over %zu ticks\n",
              out->num_records(), ticks.size());
  return 0;
}

/// \file metrics_demo.cpp
/// \brief Observability demo: a running pipeline exposing live metrics.
///
/// Builds a source -> filter -> windowed-count -> sink dataflow, attaches a
/// MetricsRegistry, streams an out-of-order workload through it (including
/// records late enough to be dropped), and prints the resulting metrics in
/// both exposition formats: the Prometheus text format and the JSON dump.
/// The final line is machine-greppable (`METRICS_JSON {...}`) so CI can
/// assert that DumpMetrics() output parses as JSON.

#include <cstdio>
#include <random>

#include "dataflow/executor.h"
#include "dataflow/operators.h"
#include "dataflow/window_operator.h"

using namespace cq;  // examples favour brevity

int main() {
  // 1. Build the graph: src -> filter(v > 5) -> tumbling count(10) -> sink.
  auto g = std::make_unique<DataflowGraph>();
  NodeId src = g->AddNode(std::make_unique<PassThroughOperator>("src"));
  NodeId filter = g->AddNode(std::make_unique<FilterOperator>(
      "filter", Gt(Col(1), Lit(int64_t{5}))));
  WindowedAggregateConfig cfg;
  cfg.assigner = std::make_shared<TumblingWindowAssigner>(10);
  cfg.key_indexes = {0};
  cfg.aggs.push_back({AggregateKind::kCount, nullptr, "cnt"});
  NodeId window = g->AddNode(
      std::make_unique<WindowedAggregateOperator>("window", std::move(cfg)));
  BoundedStream out;
  NodeId sink = g->AddNode(std::make_unique<CollectSinkOperator>("sink", &out));
  if (!g->Connect(src, filter).ok() || !g->Connect(filter, window).ok() ||
      !g->Connect(window, sink).ok()) {
    std::fprintf(stderr, "graph wiring failed\n");
    return 1;
  }

  // 2. Attach the metrics registry BEFORE pushing data: every node gets
  //    records_in/out + watermark counters, a processing-latency histogram,
  //    and event-time-lag / state gauges.
  PipelineExecutor exec(std::move(g));
  MetricsRegistry registry;
  exec.AttachMetrics(&registry);

  // 3. Stream a slightly out-of-order workload with periodic watermarks
  //    trailing 5 ticks behind the emission front, plus a final straggler
  //    that arrives too late and is dropped (late_records_dropped).
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> jitter(0, 3);
  std::uniform_int_distribution<int64_t> val(0, 9);
  for (int i = 0; i < 200; ++i) {
    Timestamp ts = static_cast<Timestamp>(i) - jitter(rng);
    if (ts < 0) ts = 0;
    Tuple t({Value(int64_t{i % 4}), Value(val(rng))});
    if (!exec.PushRecord(src, std::move(t), ts).ok()) return 1;
    if (i % 20 == 19 && !exec.PushWatermark(src, i - 5).ok()) return 1;
  }
  // A record 50 ticks behind the watermark: dropped and counted.
  (void)exec.PushRecord(src, Tuple({Value(int64_t{0}), Value(int64_t{9})}),
                        100);
  std::printf("pipeline emitted %zu window panes\n\n", out.num_records());

  // 4. Prometheus-style text exposition.
  std::printf("---- MetricsRegistry::ToText() ----\n%s\n",
              registry.ToText().c_str());

  // 5. JSON dump (refreshes state gauges first). The METRICS_JSON line is
  //    what scripts/check_tier1.sh parses.
  std::string json = exec.DumpMetrics(MetricsFormat::kJson);
  std::printf("---- PipelineExecutor::DumpMetrics() ----\n");
  std::printf("METRICS_JSON %s\n", json.c_str());
  return 0;
}

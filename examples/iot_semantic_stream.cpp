/// \file iot_semantic_stream.cpp
/// \brief RDF Stream Processing over IoT sensor data (paper §5.2, the
/// Stream Reasoning lineage: RSP-QL / RSP4J).
///
/// Heterogeneous sensors publish observations as RDF triples; a continuous
/// BGP query joins observations with static sensor metadata inside a
/// sliding window — "It's a streaming world" [33] in ~60 lines. The BGP is
/// compiled onto the relational CQL engine (see src/rdf), so windows,
/// continuous semantics, and R2S operators all behave exactly as for
/// relational streams.

#include <cstdio>

#include "rdf/rdf.h"

using namespace cq;

int main() {
  // The RDF stream: sensor observations plus (streamed) metadata asserts.
  RdfStream stream;
  auto obs = [&](const char* sensor, const char* value, Timestamp ts) {
    stream.Append({RdfTerm::Iri(sensor), RdfTerm::Iri("hasReading"),
                   RdfTerm::Literal(value)},
                  ts);
  };
  auto in_room = [&](const char* sensor, const char* room, Timestamp ts) {
    stream.Append({RdfTerm::Iri(sensor), RdfTerm::Iri("locatedIn"),
                   RdfTerm::Iri(room)},
                  ts);
  };

  // Deployment metadata arrives first (ts 0).
  in_room("sensor/t1", "room/kitchen", 0);
  in_room("sensor/t2", "room/lab", 0);
  in_room("sensor/t3", "room/lab", 0);

  // Observations over time.
  obs("sensor/t1", "21.5", 10);
  obs("sensor/t2", "19.0", 12);
  obs("sensor/t3", "48.5", 14);  // suspicious reading in the lab
  obs("sensor/t2", "19.2", 20);
  obs("sensor/t1", "21.6", 25);
  obs("sensor/t3", "49.1", 26);

  // Continuous query, RSP-QL shape:
  //   SELECT ?room ?sensor ?value
  //   FROM NAMED WINDOW [RANGE 15] ON :stream
  //   WHERE { ?sensor :hasReading ?value . ?sensor :locatedIn ?room }
  RspQuery query;
  query.window = S2RSpec::Unbounded();  // metadata must stay visible
  query.pattern.push_back({PatternTerm::Var("?sensor"),
                           PatternTerm::Const(RdfTerm::Iri("hasReading")),
                           PatternTerm::Var("?value")});
  query.pattern.push_back({PatternTerm::Var("?sensor"),
                           PatternTerm::Const(RdfTerm::Iri("locatedIn")),
                           PatternTerm::Var("?room")});
  query.projection = {"?room", "?sensor", "?value"};
  query.output = R2SKind::kIStream;

  Result<CompiledRspQuery> compiled = CompileRspQuery(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s\n", compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled BGP onto the relational engine:\n%s\n",
              compiled->query.plan->ToString(1).c_str());

  Result<std::vector<std::pair<RdfBinding, Timestamp>>> answers =
      ExecuteRspQuery(query, stream);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }

  std::printf("continuous answers (IStream of new bindings):\n");
  for (const auto& [binding, ts] : *answers) {
    std::printf("  t=%-3lld %s reads %s in %s\n",
                static_cast<long long>(ts),
                binding.at("?sensor").ToString().c_str(),
                binding.at("?value").ToString().c_str(),
                binding.at("?room").ToString().c_str());
  }

  // A second standing query watching only the lab.
  RspQuery lab_query = query;
  lab_query.pattern[1].object =
      PatternTerm::Const(RdfTerm::Iri("room/lab"));
  lab_query.projection = {"?sensor", "?value"};
  Result<std::vector<std::pair<RdfBinding, Timestamp>>> lab =
      ExecuteRspQuery(lab_query, stream);
  if (!lab.ok()) {
    std::fprintf(stderr, "%s\n", lab.status().ToString().c_str());
    return 1;
  }
  std::printf("\nlab-only standing query produced %zu readings\n",
              lab->size());
  return 0;
}

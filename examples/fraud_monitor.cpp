/// \file fraud_monitor.cpp
/// \brief Fraud monitoring over a transaction stream — the paper's
/// Listing 2 scenario, at two abstraction levels.
///
/// Level 1: the functional DSL (stream-table duality, §4.1.2) — filter
/// large transactions, count per account in session-like windows.
/// Level 2: the dataflow runtime (§4.1.1) — the same logic as an operator
/// pipeline with watermarks, out-of-order input, and an alert sink.

#include <cstdio>

#include "dataflow/operators.h"
#include "dataflow/executor.h"
#include "dataflow/source.h"
#include "dataflow/window_operator.h"
#include "duality/kstream.h"
#include "workload/generators.h"

using namespace cq;

int main() {
  // Synthetic transaction log: (tid, account, amount), Zipf account skew,
  // timestamps out of order by up to 4 ticks.
  TransactionWorkload w = MakeTransactionWorkload(
      /*num_transactions=*/2000, /*num_accounts=*/50, /*skew=*/1.1,
      /*max_amount=*/1000.0, /*max_disorder=*/4, /*seed=*/7);

  // ---- Level 1: the functional DSL (Listing 2 style) ----
  //   transactions.filter(t -> t.amount > 800)
  //               .groupBy(account)
  //               .count()
  std::printf("== functional DSL ==\n");
  KStream transactions = KStream::From(w.transactions);
  KStream suspicious = transactions.Filter(Gt(Col(2), Lit(800.0)));
  Result<KTable> per_account = suspicious.GroupBy({1}).Count();
  if (!per_account.ok()) {
    std::fprintf(stderr, "%s\n", per_account.status().ToString().c_str());
    return 1;
  }
  // Accounts with repeated large transactions (count >= 3).
  KTable flagged = per_account->Filter([](const Tuple&, const Tuple& v) {
    return v[0] >= Value(int64_t{3});
  });
  std::printf("%zu large transactions; %zu accounts flagged (>=3):\n",
              suspicious.size(), flagged.size());
  for (const auto& [account, count] : flagged.Materialized()) {
    std::printf("  account %s: %s large transactions\n",
                account[0].ToString().c_str(), count[0].ToString().c_str());
  }

  // ---- Level 2: the dataflow runtime with event-time windows ----
  // Per-account SUM(amount) over 100-tick tumbling windows; alert when a
  // window's total exceeds a threshold. Handles the disorder via a
  // bounded-out-of-orderness watermark.
  std::printf("\n== dataflow runtime ==\n");
  WindowedAggregateConfig cfg;
  cfg.assigner = std::make_shared<TumblingWindowAssigner>(100);
  cfg.key_indexes = {1};
  cfg.aggs.push_back({AggregateKind::kSum, Col(2), "total"});
  cfg.aggs.push_back({AggregateKind::kCount, nullptr, "n"});
  cfg.allowed_lateness = 2;

  auto graph = std::make_unique<DataflowGraph>();
  NodeId src = graph->AddNode(std::make_unique<PassThroughOperator>("tx"));
  NodeId win = graph->AddNode(
      std::make_unique<WindowedAggregateOperator>("window-sum", cfg));
  // Alert filter on the window output: (account, start, end, total, n).
  NodeId alert = graph->AddNode(std::make_unique<FilterOperator>(
      "alert", Gt(Col(3), Lit(4000.0))));
  size_t alerts = 0;
  NodeId sink = graph->AddNode(std::make_unique<CallbackSinkOperator>(
      "print", [&alerts](const StreamElement& e) {
        ++alerts;
        std::printf(
            "  ALERT account=%s window=[%s,%s) total=%s from %s txs\n",
            e.tuple[0].ToString().c_str(), e.tuple[1].ToString().c_str(),
            e.tuple[2].ToString().c_str(), e.tuple[3].ToString().c_str(),
            e.tuple[4].ToString().c_str());
        return Status::OK();
      }));
  Status st = graph->Connect(src, win);
  if (st.ok()) st = graph->Connect(win, alert);
  if (st.ok()) st = graph->Connect(alert, sink);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Publish the transaction log to a broker topic keyed by account, then
  // drive the pipeline through the runtime's broker source: batched polls,
  // committed offsets, and per-partition watermark derivation replace the
  // hand-rolled per-element push + watermark loop.
  Broker broker;
  st = broker.CreateTopic("txns", /*partitions=*/2);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  size_t produced = 0;
  for (const auto& e : w.transactions) {
    if (!e.is_record()) continue;
    auto produce = broker.Produce("txns", e.tuple[1].ToString(), e.tuple,
                                  e.timestamp);
    if (!produce.ok()) {
      std::fprintf(stderr, "%s\n", produce.status().ToString().c_str());
      return 1;
    }
    ++produced;
  }

  PipelineExecutor exec(std::move(graph));
  BrokerSource source(&broker, "txns", "fraud-monitor",
                      /*max_out_of_orderness=*/4);
  st = source.Drain(&exec, src);
  // Close the final partial window past its allowed lateness.
  if (st.ok()) {
    st = exec.PushWatermark(src, w.transactions.MaxTimestamp() + 200);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%zu alerts over %zu transactions\n", alerts, produced);
  return 0;
}

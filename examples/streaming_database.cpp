/// \file streaming_database.cpp
/// \brief A Materialize-style streaming database session (paper §5.1).
///
/// Demonstrates in-database stream processing: SQL-defined continuous views
/// over a live table, maintained under three strategies (eager IVM, lazy
/// re-execution, Winter et al. split maintenance), plus a push-based
/// subscription (InvaliDB style) that streams result changes to a client.

#include <cstdio>

#include "ivm/view.h"
#include "sql/planner.h"
#include "workload/generators.h"

using namespace cq;

int main() {
  // CREATE STREAM orders (oid, customer, amount).
  Catalog catalog;
  Status st = catalog.RegisterStream(
      "orders", Schema::Make({{"oid", ValueType::kInt64},
                              {"customer", ValueType::kInt64},
                              {"amount", ValueType::kDouble}}));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // CREATE MATERIALIZED VIEW big_spenders AS ...
  const char* view_sql =
      "SELECT customer, SUM(amount) AS total, COUNT(*) AS orders "
      "FROM orders GROUP BY customer HAVING SUM(amount) > 2000";
  std::printf("CREATE MATERIALIZED VIEW big_spenders AS\n  %s;\n\n", view_sql);
  Result<PlannedQuery> planned = PlanSql(view_sql, catalog);
  if (!planned.ok()) {
    std::fprintf(stderr, "%s\n", planned.status().ToString().c_str());
    return 1;
  }

  // Maintain the same view under all three §5.1 strategies.
  EagerView eager(planned->query.plan, 1);
  LazyView lazy(planned->query.plan, 1);
  SplitView split(planned->query.plan, 1);

  // SUBSCRIBE TO big_spenders: clients get result deltas pushed.
  PushView subscription(planned->query.plan, 1);
  subscription.Subscribe([](const MultisetRelation& delta) {
    for (const auto& [row, mult] : delta.entries()) {
      std::printf("  push> %s %s\n", mult > 0 ? "+" : "-",
                  row.ToString().c_str());
    }
  });

  // Ingest a workload of orders.
  TransactionWorkload w = MakeTransactionWorkload(
      /*num_transactions=*/500, /*num_accounts=*/12, /*skew=*/0.9,
      /*max_amount=*/400.0, /*max_disorder=*/0, /*seed=*/5);
  std::printf("ingesting %zu orders (push notifications as the view"
              " changes):\n", w.transactions.num_records());
  size_t i = 0;
  for (const auto& e : w.transactions) {
    if (!e.is_record()) continue;
    for (MaterializedView* v :
         std::initializer_list<MaterializedView*>{&eager, &lazy, &split}) {
      st = v->Insert(0, e.tuple);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    st = subscription.Insert(0, e.tuple);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    // An analyst queries the view occasionally — the split strategy folds
    // its pending deltas here, lazily amortising maintenance.
    if (++i % 100 == 0) {
      Result<MultisetRelation> r = split.Query();
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf("  [after %4zu orders] big_spenders has %zu rows "
                  "(split view folded %s)\n",
                  i, r->NumDistinct(), "pending deltas");
    }
  }

  // Final consistency check across strategies.
  MultisetRelation r_eager = *eager.Query();
  MultisetRelation r_lazy = *lazy.Query();
  MultisetRelation r_split = *split.Query();
  bool consistent = r_eager == r_lazy && r_lazy == r_split;

  std::printf("\nSELECT * FROM big_spenders;  (%zu rows)\n",
              r_eager.NumDistinct());
  for (const auto& [row, mult] : r_eager.entries()) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  std::printf("\nmaintenance strategies agree: %s\n",
              consistent ? "yes" : "NO (bug!)");
  std::printf("state sizes  eager=%zu  lazy=%zu  split=%zu tuples\n",
              eager.StateSize(), lazy.StateSize(), split.StateSize());
  return consistent ? 0 : 1;
}

/// \file query_server.cpp
/// \brief The survey's Fig. 1 as a process: a long-running continuous-query
/// server that accepts SQL registrations at runtime and pushes results back.
///
/// Two modes:
///
///   query_server                 in-process demo: registers two queries that
///                                share a prefix, streams trades through the
///                                shared graph, prints pushed results and the
///                                sharing metrics.
///
///     --checkpoint-dir DIR       make the demo durable: fence each query's
///                                output through an idempotent output log in
///                                DIR/out and take a barrier checkpoint of
///                                the whole service (query registry + window
///                                and plan state) into DIR/snap before exit.
///     --recover                  with --checkpoint-dir: instead of
///                                registering queries, restore the service
///                                from the latest checkpoint in DIR — the
///                                registry replays through the SQL frontend,
///                                node state comes back by fingerprint — then
///                                stream a second batch of trades whose
///                                results prove the windows survived.
///     --shards N                 run the demo on a ShardedQueryService of N
///                                replicas: `trades` partitions by `sym`,
///                                records route by key hash, subscriptions
///                                merge across replicas. Checkpoint/recover
///                                work the same (the image gains a shard
///                                dimension and must restore at the same N).
///
///   query_server --serve PORT    TCP server speaking a length-prefixed text
///                                protocol (uint32 big-endian frame length +
///                                payload). One command per frame:
///
///     STREAM <name> <col:type,...>   register an input stream
///                                    (types: int64, double, string, bool)
///     REGISTER <sql>                 -> OK id=<qid>
///     DROP <qid>                     -> OK
///     SUBSCRIBE <qid>                -> OK sub=<sid>
///     POLL <sid>                     -> one DATA frame per queued record,
///                                       then OK n=<count>
///     PUSH <name> <ts> <v1,v2,...>   -> OK      (CSV row per stream schema)
///     WATERMARK <name> <ts>          -> OK
///     STATS                          -> OK + service counters
///     QUIT                           -> OK, closes the connection
///
///   Either mode accepts `--http PORT` (0 = ephemeral), which starts an
///   embedded observability endpoint on 127.0.0.1:
///
///     GET /metrics          Prometheus text exposition of every counter,
///                           gauge and histogram in the service registry
///     GET /queries          JSON list of registered queries (id, state,
///                           sql, node sharing, subscription count)
///     GET /traces           JSON dump of recently sampled trace spans
///     GET /flightrecorder   JSON dump of the global flight-recorder ring
///
///   Errors come back as a single "ERR <status>" frame; the connection
///   survives them. Try it with a few lines of Python:
///
///     import socket, struct
///     def send(s, m): s.sendall(struct.pack(">I", len(m)) + m.encode())
///     def recv(s):
///         n = struct.unpack(">I", s.recv(4))[0]; return s.recv(n).decode()
///     s = socket.create_connection(("127.0.0.1", 7878))
///     send(s, "STREAM trades sym:string,price:int64,qty:int64"); print(recv(s))
///     send(s, "REGISTER SELECT sym FROM trades [Range 100] WHERE price > 10")
///     print(recv(s))

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "ft/coordinator.h"
#include "ft/fence.h"
#include "ft/recovery.h"
#include "ft/snapshot_store.h"
#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/trace.h"
#include "service/service.h"
#include "shard/sharded_service.h"

namespace cq {
namespace {

// --- Shared: building the service -----------------------------------------

std::unique_ptr<QueryService> MakeService(MetricsRegistry* registry,
                                          TraceRecorder* tracer) {
  ServiceConfig config;
  config.metrics = registry;
  config.tracer = tracer;
  config.trace_sample_every = 1;
  return std::make_unique<QueryService>(Catalog{}, config);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string QueriesJson(QueryService* svc) {
  std::string out = "[";
  bool first = true;
  for (const auto& info : svc->ListQueries()) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(info.id) + ",\"state\":\"" +
           QueryStateToString(info.state) + "\",\"sql\":\"" +
           JsonEscape(info.sql) + "\",\"nodes_total\":" +
           std::to_string(info.nodes_total) + ",\"nodes_reused\":" +
           std::to_string(info.nodes_reused) + ",\"subscriptions\":" +
           std::to_string(info.num_subscriptions) + "}";
  }
  return out + "]";
}

/// Registers the four observability routes and starts the listener.
/// `http_port` < 0 means "no endpoint": returns OK without starting.
Status StartHttp(HttpEndpoint* http, int http_port, MetricsRegistry* registry,
                 TraceRecorder* tracer, QueryService* svc) {
  if (http_port < 0) return Status::OK();
  http->AddHandler("/metrics", "text/plain; version=0.0.4", [registry] {
    return registry->Dump(MetricsFormat::kText);
  });
  http->AddHandler("/queries", "application/json",
                   [svc] { return QueriesJson(svc); });
  http->AddHandler("/traces", "application/json",
                   [tracer] { return tracer->ToJson(); });
  http->AddHandler("/flightrecorder", "application/json",
                   [] { return FlightRecorder::Global().ToJson(); });
  Status st = http->Start(static_cast<uint16_t>(http_port));
  if (st.ok()) {
    std::printf("observability endpoint on http://127.0.0.1:%u "
                "(/metrics /queries /traces /flightrecorder)\n",
                http->port());
  }
  return st;
}

// --- Demo mode -------------------------------------------------------------

int RunDemo(const std::string& checkpoint_dir, bool recover, int http_port) {
  MetricsRegistry registry;
  TraceRecorder tracer;
  auto svc = MakeService(&registry, &tracer);
  HttpEndpoint http;
  Status http_st = StartHttp(&http, http_port, &registry, &tracer, svc.get());
  if (!http_st.ok()) {
    std::fprintf(stderr, "http: %s\n", http_st.ToString().c_str());
    return 1;
  }
  Timestamp ts = 0;

  // Durability rig (only with --checkpoint-dir): fenced output log + snapshot
  // store + barrier-checkpoint coordinator around the same service object.
  std::unique_ptr<ft::DurableOutputLog> log;
  std::unique_ptr<ft::SnapshotStore> store;
  std::unique_ptr<ft::CheckpointCoordinator> coord;
  if (!checkpoint_dir.empty()) {
    log = std::make_unique<ft::DurableOutputLog>(checkpoint_dir + "/out");
    store = std::make_unique<ft::SnapshotStore>(checkpoint_dir + "/snap");
    Status st = log->Init();
    if (st.ok()) st = store->Init();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint dir: %s\n", st.ToString().c_str());
      return 1;
    }
    svc->SetDurableOutputLog(log.get());
    coord = std::make_unique<ft::CheckpointCoordinator>(svc.get(), store.get());
    coord->SetOutputLog(log.get());
    coord->SetWatermarkFn([&ts] { return ts; });
    svc->SetBarrierHandler(coord->Handler(svc->BarrierFanIn()));
  }

  if (recover) {
    if (store == nullptr) {
      std::fprintf(stderr, "--recover requires --checkpoint-dir\n");
      return 2;
    }
    // Restore the whole service — registered queries, shared graph, window
    // and aggregation state — from the newest durable epoch, republishing
    // any staged output the dead process never got to publish.
    ft::RecoveryManager recovery(store.get());
    recovery.SetOutputLog(log.get());
    auto report = recovery.Recover(svc.get(), nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "recover: %s\n", report.status().ToString().c_str());
      return 1;
    }
    if (!report->restored) {
      std::fprintf(stderr, "recover: no checkpoint found in %s\n",
                   checkpoint_dir.c_str());
      return 1;
    }
    coord->ResumeFromEpoch(report->epoch);
    ts = report->watermark > 0 ? report->watermark : 0;
    std::printf("recovered %zu queries at epoch %llu (watermark %lld)\n",
                svc->NumActiveQueries(),
                static_cast<unsigned long long>(report->epoch),
                static_cast<long long>(report->watermark));
  } else {
    Status st = svc->RegisterStream(
        "trades", Schema::Make({{"sym", ValueType::kString},
                                {"price", ValueType::kInt64},
                                {"qty", ValueType::kInt64}}));
    if (!st.ok()) {
      std::fprintf(stderr, "RegisterStream: %s\n", st.ToString().c_str());
      return 1;
    }

    // Both queries share the source -> filter -> window prefix; they diverge
    // only in their residual plans, so the graph holds one copy of the
    // prefix.
    auto big = svc->RegisterQuery(
        "SELECT sym, price FROM trades [Range 100] WHERE price > 10");
    auto volume = svc->RegisterQuery(
        "SELECT sym, SUM(qty) AS total FROM trades [Range 100] "
        "WHERE price > 10 GROUP BY sym");
    if (!big.ok() || !volume.ok()) {
      std::fprintf(stderr, "RegisterQuery failed\n");
      return 1;
    }
  }

  std::vector<std::pair<QueryId, SubscriptionPtr>> subs;
  for (const auto& info : svc->ListQueries()) {
    auto sub = svc->Subscribe(info.id);
    if (sub.ok()) subs.emplace_back(info.id, *sub);
  }

  std::printf("%s 2 queries, %zu live operators (unshared would need %zu)\n",
              recover ? "recovered" : "registered", svc->NumOperators(),
              size_t{10});
  for (const auto& info : svc->ListQueries()) {
    std::printf("  query %llu: %zu nodes, %zu reused — %s\n",
                static_cast<unsigned long long>(info.id), info.nodes_total,
                info.nodes_reused, info.sql.c_str());
  }

  struct Row {
    const char* sym;
    int64_t price, qty;
  };
  // The recovered run streams a second act: its aggregate totals include the
  // first act's rows, still resident in the restored [Range 100] windows.
  const Row first_act[] = {{"ACME", 12, 100}, {"ACME", 8, 50},
                           {"GLOBEX", 40, 10}, {"ACME", 15, 30},
                           {"GLOBEX", 9, 99},  {"GLOBEX", 41, 5}};
  const Row second_act[] = {{"ACME", 20, 7}, {"GLOBEX", 44, 3},
                            {"ACME", 13, 11}};
  for (const Row& r : recover ? std::vector<Row>(std::begin(second_act),
                                                 std::end(second_act))
                              : std::vector<Row>(std::begin(first_act),
                                                 std::end(first_act))) {
    ++ts;
    (void)svc->PushRecord("trades",
                          Tuple{Value(r.sym), Value(r.price), Value(r.qty)}, ts);
    (void)svc->PushWatermark("trades", ts);
  }

  for (const auto& [qid, sub] : subs) {
    std::printf("query %llu output:\n", static_cast<unsigned long long>(qid));
    StreamBatch batch;
    while (sub->TryPoll(&batch)) {
      for (const auto& e : batch) {
        if (e.is_record()) {
          std::printf("  t=%lld %s\n", static_cast<long long>(e.timestamp),
                      e.tuple.ToString().c_str());
        }
      }
    }
  }

  if (coord != nullptr) {
    auto epoch = coord->TriggerBarrierCheckpoint(svc.get());
    Status st = epoch.ok() ? coord->WaitForEpoch(*epoch) : epoch.status();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    ft::DurableOutputLog reader(checkpoint_dir + "/out");
    auto published = reader.ReadAll();
    std::printf(
        "checkpointed epoch %llu; %zu fenced records published to %s/out\n",
        static_cast<unsigned long long>(*epoch),
        published.ok() ? published->size() : size_t{0},
        checkpoint_dir.c_str());
  }

  std::printf("METRICS_JSON %s\n",
              svc->DumpMetrics(MetricsFormat::kJson).c_str());
  return 0;
}

// --- Sharded demo mode -----------------------------------------------------

/// The demo of RunDemo scaled out across `nshards` service replicas:
/// `trades` partitions by `sym` (column 0), both queries decompose by that
/// key, and each subscription merges every replica's feed. Durability uses
/// the same snapshot store + barrier coordinator rig; the image carries the
/// shard count and only restores at the same N (pipeline-level N->M
/// re-shard is the re-scaling path).
int RunShardedDemo(size_t nshards, const std::string& checkpoint_dir,
                   bool recover, int http_port) {
  MetricsRegistry registry;
  TraceRecorder tracer;
  ServiceConfig config;
  config.metrics = &registry;
  config.tracer = &tracer;
  config.trace_sample_every = 1;
  shard::ShardedQueryService svc(nshards, config);
  HttpEndpoint http;
  Status http_st =
      StartHttp(&http, http_port, &registry, &tracer, svc.replica(0));
  if (!http_st.ok()) {
    std::fprintf(stderr, "http: %s\n", http_st.ToString().c_str());
    return 1;
  }
  Timestamp ts = 0;

  // Streams register on both the fresh and the recover path: restore
  // validates the catalog's shard keys against the image's meta slot.
  Status st = svc.RegisterStream(
      "trades", Schema::Make({{"sym", ValueType::kString},
                              {"price", ValueType::kInt64},
                              {"qty", ValueType::kInt64}}),
      {0});
  if (!st.ok()) {
    std::fprintf(stderr, "RegisterStream: %s\n", st.ToString().c_str());
    return 1;
  }

  std::unique_ptr<ft::SnapshotStore> store;
  std::unique_ptr<ft::CheckpointCoordinator> coord;
  if (!checkpoint_dir.empty()) {
    store = std::make_unique<ft::SnapshotStore>(checkpoint_dir + "/snap");
    Status init = store->Init();
    if (!init.ok()) {
      std::fprintf(stderr, "checkpoint dir: %s\n", init.ToString().c_str());
      return 1;
    }
    coord = std::make_unique<ft::CheckpointCoordinator>(&svc, store.get());
    coord->SetWatermarkFn([&ts] { return ts; });
    svc.SetBarrierHandler(coord->Handler(svc.BarrierFanIn()));
  }

  if (recover) {
    if (store == nullptr) {
      std::fprintf(stderr, "--recover requires --checkpoint-dir\n");
      return 2;
    }
    ft::RecoveryManager recovery(store.get());
    auto report = recovery.Recover(&svc, nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "recover: %s\n", report.status().ToString().c_str());
      return 1;
    }
    if (!report->restored) {
      std::fprintf(stderr, "recover: no checkpoint found in %s\n",
                   checkpoint_dir.c_str());
      return 1;
    }
    coord->ResumeFromEpoch(report->epoch);
    ts = report->watermark > 0 ? report->watermark : 0;
    std::printf("recovered %zu queries at epoch %llu (watermark %lld, "
                "%zu shards)\n",
                svc.NumActiveQueries(),
                static_cast<unsigned long long>(report->epoch),
                static_cast<long long>(report->watermark), nshards);
  } else {
    auto big = svc.RegisterQuery(
        "SELECT sym, price FROM trades [Range 100] WHERE price > 10");
    auto volume = svc.RegisterQuery(
        "SELECT sym, SUM(qty) AS total FROM trades [Range 100] "
        "WHERE price > 10 GROUP BY sym");
    if (!big.ok() || !volume.ok()) {
      std::fprintf(stderr, "RegisterQuery failed\n");
      return 1;
    }
  }

  std::vector<std::pair<QueryId, shard::ShardedSubscriptionPtr>> subs;
  for (const auto& info : svc.replica(0)->ListQueries()) {
    auto sub = svc.Subscribe(info.id);
    if (sub.ok()) subs.emplace_back(info.id, *sub);
  }

  std::printf("%s 2 queries on %zu shards (%zu operators per replica)\n",
              recover ? "recovered" : "registered", nshards,
              svc.replica(0)->NumOperators());

  struct Row {
    const char* sym;
    int64_t price, qty;
  };
  const Row first_act[] = {{"ACME", 12, 100}, {"ACME", 8, 50},
                           {"GLOBEX", 40, 10}, {"ACME", 15, 30},
                           {"GLOBEX", 9, 99},  {"GLOBEX", 41, 5}};
  const Row second_act[] = {{"ACME", 20, 7}, {"GLOBEX", 44, 3},
                            {"ACME", 13, 11}};
  for (const Row& r : recover ? std::vector<Row>(std::begin(second_act),
                                                 std::end(second_act))
                              : std::vector<Row>(std::begin(first_act),
                                                 std::end(first_act))) {
    ++ts;
    (void)svc.PushRecord("trades",
                         Tuple{Value(r.sym), Value(r.price), Value(r.qty)}, ts);
    (void)svc.PushWatermark("trades", ts);
  }

  for (const auto& [qid, sub] : subs) {
    std::printf("query %llu output:\n", static_cast<unsigned long long>(qid));
    StreamBatch batch;
    while (sub->TryPoll(&batch)) {
      for (const auto& e : batch) {
        if (e.is_record()) {
          std::printf("  t=%lld %s\n", static_cast<long long>(e.timestamp),
                      e.tuple.ToString().c_str());
        }
      }
    }
  }

  if (coord != nullptr) {
    auto epoch = coord->TriggerBarrierCheckpoint(&svc);
    Status ckpt = epoch.ok() ? coord->WaitForEpoch(*epoch) : epoch.status();
    if (!ckpt.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", ckpt.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed epoch %llu (%zu shard slots)\n",
                static_cast<unsigned long long>(*epoch), nshards);
  }

  uint64_t routed = 0;
  for (size_t s = 0; s < nshards; ++s) {
    std::printf("shard %zu routed %llu records\n", s,
                static_cast<unsigned long long>(svc.records_routed(s)));
    routed += svc.records_routed(s);
  }
  std::printf("METRICS_JSON %s\n",
              registry.ToJson().c_str());
  return routed > 0 || recover ? 0 : 1;
}

// --- Serve mode ------------------------------------------------------------

/// Reads exactly `len` bytes; false on EOF / error.
bool ReadFull(int fd, void* buf, size_t len) {
  auto* p = static_cast<char*>(buf);
  while (len > 0) {
    ssize_t n = read(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool ReadFrame(int fd, std::string* out) {
  uint32_t be = 0;
  if (!ReadFull(fd, &be, sizeof(be))) return false;
  uint32_t len = ntohl(be);
  if (len > (1u << 20)) return false;  // 1 MiB frame cap
  out->resize(len);
  return len == 0 || ReadFull(fd, out->data(), len);
}

bool WriteFrame(int fd, const std::string& payload) {
  uint32_t be = htonl(static_cast<uint32_t>(payload.size()));
  std::string wire(reinterpret_cast<const char*>(&be), sizeof(be));
  wire += payload;
  const char* p = wire.data();
  size_t len = wire.size();
  while (len > 0) {
    ssize_t n = write(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

Result<SchemaPtr> ParseSchema(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& part : SplitCsv(spec)) {
    size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad column spec '" + part +
                                     "' (want name:type)");
    }
    std::string name = part.substr(0, colon);
    std::string type = part.substr(colon + 1);
    if (type == "int64") {
      fields.push_back({name, ValueType::kInt64});
    } else if (type == "double") {
      fields.push_back({name, ValueType::kDouble});
    } else if (type == "string") {
      fields.push_back({name, ValueType::kString});
    } else if (type == "bool") {
      fields.push_back({name, ValueType::kBool});
    } else {
      return Status::InvalidArgument("unknown type '" + type + "'");
    }
  }
  return Schema::Make(std::move(fields));
}

Result<Tuple> ParseRow(const std::string& csv, const Schema& schema) {
  std::vector<std::string> fields = SplitCsv(csv);
  if (fields.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(fields.size()) + " fields, schema wants " +
        std::to_string(schema.num_fields()));
  }
  std::vector<Value> values;
  values.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    switch (schema.field(i).type) {
      case ValueType::kInt64:
        values.emplace_back(static_cast<int64_t>(std::stoll(f)));
        break;
      case ValueType::kDouble:
        values.emplace_back(std::stod(f));
        break;
      case ValueType::kBool:
        values.emplace_back(f == "true" || f == "1");
        break;
      default:
        values.emplace_back(f);
        break;
    }
  }
  return Tuple(std::move(values));
}

/// One connected client's view of the service.
class ClientSession {
 public:
  explicit ClientSession(QueryService* svc) : svc_(svc) {}

  /// Handles one command frame; responses go out through `reply`. Returns
  /// false when the client asked to quit.
  bool Handle(const std::string& line, int fd) {
    size_t space = line.find(' ');
    std::string cmd = line.substr(0, space);
    std::string rest =
        space == std::string::npos ? "" : line.substr(space + 1);
    if (cmd == "QUIT") {
      (void)WriteFrame(fd, "OK bye");
      return false;
    }
    std::string reply = Dispatch(cmd, rest, fd);
    (void)WriteFrame(fd, reply);
    return true;
  }

 private:
  std::string Dispatch(const std::string& cmd, const std::string& rest,
                       int fd) {
    if (cmd == "STREAM") {
      size_t space = rest.find(' ');
      if (space == std::string::npos) return "ERR want: STREAM name cols";
      auto schema = ParseSchema(rest.substr(space + 1));
      if (!schema.ok()) return "ERR " + schema.status().ToString();
      Status st = svc_->RegisterStream(rest.substr(0, space), *schema);
      return st.ok() ? "OK" : "ERR " + st.ToString();
    }
    if (cmd == "REGISTER") {
      auto id = svc_->RegisterQuery(rest);
      if (!id.ok()) return "ERR " + id.status().ToString();
      return "OK id=" + std::to_string(*id);
    }
    if (cmd == "DROP") {
      Status st = svc_->DropQuery(std::stoull(rest));
      return st.ok() ? "OK" : "ERR " + st.ToString();
    }
    if (cmd == "SUBSCRIBE") {
      auto sub = svc_->Subscribe(std::stoull(rest));
      if (!sub.ok()) return "ERR " + sub.status().ToString();
      uint64_t sid = next_sub_handle_++;
      subs_[sid] = *sub;
      return "OK sub=" + std::to_string(sid);
    }
    if (cmd == "POLL") {
      auto it = subs_.find(std::stoull(rest));
      if (it == subs_.end()) return "ERR no such subscription";
      size_t n = 0;
      StreamBatch batch;
      while (it->second->TryPoll(&batch)) {
        for (const auto& e : batch) {
          if (!e.is_record()) continue;
          (void)WriteFrame(fd, "DATA t=" +
                                   std::to_string(e.timestamp) + " " +
                                   e.tuple.ToString());
          ++n;
        }
      }
      std::string tail = "OK n=" + std::to_string(n);
      if (it->second->closed() && it->second->depth() == 0) {
        tail += " closed";
        subs_.erase(it);
      }
      return tail;
    }
    if (cmd == "PUSH") {
      size_t s1 = rest.find(' ');
      size_t s2 = rest.find(' ', s1 + 1);
      if (s1 == std::string::npos || s2 == std::string::npos) {
        return "ERR want: PUSH stream ts v1,v2,...";
      }
      std::string stream = rest.substr(0, s1);
      Timestamp ts = std::stoll(rest.substr(s1 + 1, s2 - s1 - 1));
      auto schema = svc_->catalog().GetStream(stream);
      if (!schema.ok()) return "ERR " + schema.status().ToString();
      auto tuple = ParseRow(rest.substr(s2 + 1), **schema);
      if (!tuple.ok()) return "ERR " + tuple.status().ToString();
      Status st = svc_->PushRecord(stream, *tuple, ts);
      return st.ok() ? "OK" : "ERR " + st.ToString();
    }
    if (cmd == "WATERMARK") {
      size_t s1 = rest.find(' ');
      if (s1 == std::string::npos) return "ERR want: WATERMARK stream ts";
      Status st = svc_->PushWatermark(rest.substr(0, s1),
                                      std::stoll(rest.substr(s1 + 1)));
      return st.ok() ? "OK" : "ERR " + st.ToString();
    }
    if (cmd == "STATS") {
      std::string out = "OK operators=" + std::to_string(svc_->NumOperators()) +
                        " active_queries=" +
                        std::to_string(svc_->NumActiveQueries());
      for (const auto& info : svc_->ListQueries()) {
        out += "\nquery " + std::to_string(info.id) + " state=" +
               QueryStateToString(info.state) + " nodes=" +
               std::to_string(info.nodes_total) + " reused=" +
               std::to_string(info.nodes_reused) + " sql=" + info.sql;
      }
      return out;
    }
    return "ERR unknown command '" + cmd + "'";
  }

  QueryService* svc_;
  std::map<uint64_t, SubscriptionPtr> subs_;
  uint64_t next_sub_handle_ = 1;
};

int RunServer(uint16_t port, int http_port) {
  MetricsRegistry registry;
  TraceRecorder tracer;
  auto svc = MakeService(&registry, &tracer);
  HttpEndpoint http;
  Status http_st = StartHttp(&http, http_port, &registry, &tracer, svc.get());
  if (!http_st.ok()) {
    std::fprintf(stderr, "http: %s\n", http_st.ToString().c_str());
    return 1;
  }

  int listener = socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  int one = 1;
  setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      listen(listener, 8) < 0) {
    std::perror("bind/listen");
    close(listener);
    return 1;
  }
  std::printf("query_server listening on 127.0.0.1:%u\n", port);

  // Clients are served one at a time; the service itself outlives every
  // connection, so queries registered by one client keep running (and stay
  // shareable) after it disconnects.
  while (true) {
    int fd = accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    std::printf("client connected\n");
    ClientSession session(svc.get());
    std::string line;
    while (ReadFrame(fd, &line)) {
      if (!session.Handle(line, fd)) break;
    }
    close(fd);
    std::printf("client disconnected (%zu operators stay live)\n",
                svc->NumOperators());
  }
}

}  // namespace
}  // namespace cq

int main(int argc, char** argv) {
  bool serve = false;
  uint16_t serve_port = 7878;
  int http_port = -1;  // -1 = no observability endpoint
  std::string checkpoint_dir;
  bool recover = false;
  size_t shards = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        serve_port = static_cast<uint16_t>(std::stoi(argv[++i]));
      }
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_port = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      int n = std::stoi(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--shards wants a positive count\n");
        return 2;
      }
      shards = static_cast<size_t>(n);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--serve [port]] [--http PORT] [--shards N] "
                   "[--checkpoint-dir DIR [--recover]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (serve && shards > 1) {
    std::fprintf(stderr, "--shards applies to the demo mode only\n");
    return 2;
  }
  if (serve) return cq::RunServer(serve_port, http_port);
  if (shards > 1) {
    return cq::RunShardedDemo(shards, checkpoint_dir, recover, http_port);
  }
  return cq::RunDemo(checkpoint_dir, recover, http_port);
}

/// \file query_server.cpp
/// \brief The survey's Fig. 1 as a process: a long-running continuous-query
/// server that accepts SQL registrations at runtime and pushes results back.
///
/// Two modes:
///
///   query_server                 in-process demo: registers two queries that
///                                share a prefix, streams trades through the
///                                shared graph, prints pushed results and the
///                                sharing metrics.
///
///     --checkpoint-dir DIR       make the demo durable: fence each query's
///                                output through an idempotent output log in
///                                DIR/out and take a barrier checkpoint of
///                                the whole service (query registry + window
///                                and plan state) into DIR/snap before exit.
///     --recover                  with --checkpoint-dir: instead of
///                                registering queries, restore the service
///                                from the latest checkpoint in DIR — the
///                                registry replays through the SQL frontend,
///                                node state comes back by fingerprint — then
///                                stream a second batch of trades whose
///                                results prove the windows survived.
///     --shards N                 run on a ShardedQueryService of N replicas:
///                                `trades` partitions by `sym`, records route
///                                by key hash, subscriptions merge across
///                                replicas.
///
///   query_server --serve PORT    async TCP server on one epoll loop
///                                (net::Server): every client, subscriber
///                                feed and observability scrape multiplexes
///                                through the same thread. The protocol is
///                                length-prefixed text (uint32 big-endian
///                                frame length + payload), one command per
///                                frame:
///
///     TENANT <name>                  bind the connection to a tenant
///     STREAM <name> <col:type,...> [key=<col,...>]
///                                    register an input stream (types:
///                                    int64, double, string, bool); the key
///                                    names shard columns (--shards only)
///     REGISTER <sql>                 -> OK id=<qid>  (tenant quota applies)
///     DROP <qid>                     -> OK
///     SUBSCRIBE <qid>                -> OK sub=<sid>       (pull mode)
///     POLL <sid>                     -> one DATA frame per queued record,
///                                       then OK n=<count>
///     LISTEN <qid>                   -> OK sub=<sid> push  (push mode:
///                                       "DATA <sid> t=.. <tuple>" frames
///                                       arrive unpolled; "CLOSED <sid>"
///                                       when the query drops)
///     PUSH <name> <ts> <v1,v2,...>   -> OK   (CSV row per stream schema)
///     WATERMARK <name> <ts>          -> OK
///     STATS                          -> OK + service counters
///     QUIT                           -> OK, closes the connection
///
///     Serve-mode flags:
///       --shards N             front a ShardedQueryService (records route
///                              by each stream's key= columns)
///       --checkpoint-dir DIR   durable serve: fence query output through
///                              DIR/out and checkpoint into DIR/snap on
///                              graceful drain
///       --recover              restore the service from DIR before
///                              listening (unsharded serve only: a sharded
///                              image validates against streams that would
///                              have to be re-registered first)
///       --tenant-quota NAME:MAXQ:MAXBYTES:BPS[:BURST]
///                              per-tenant admission quota: query count,
///                              state bytes, egress bytes/sec (token-bucket
///                              rate), optional burst. 0 = unlimited; NAME
///                              "*" sets the default quota. Repeatable.
///       --optimizer-rules SPEC plan-optimizer kill switches (any mode, not
///                              just serve): "all" (default), "none", or a
///                              comma list of rule toggles such as
///                              "all,-fuse" / "pushdown,reorder"
///
///     The same port answers HTTP GETs (/metrics /queries /traces
///     /flightrecorder) from the same loop. SIGTERM drains gracefully:
///     stop accepting, flush every subscriber feed, checkpoint (publishing
///     staged fence frames), close, exit 0.
///
///   Either mode accepts `--http PORT` (0 = ephemeral), which starts the
///   embedded thread-based observability endpoint on 127.0.0.1 with the same
///   four routes.
///
///   Errors come back as a single "ERR <status>" frame; the connection
///   survives them. Try it with a few lines of Python:
///
///     import socket, struct
///     def send(s, m): s.sendall(struct.pack(">I", len(m)) + m.encode())
///     def recv(s):
///         n = struct.unpack(">I", s.recv(4))[0]; return s.recv(n).decode()
///     s = socket.create_connection(("127.0.0.1", 7878))
///     send(s, "STREAM trades sym:string,price:int64,qty:int64"); print(recv(s))
///     send(s, "REGISTER SELECT sym FROM trades [Range 100] WHERE price > 10")
///     print(recv(s))

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "ft/coordinator.h"
#include "ft/fence.h"
#include "ft/recovery.h"
#include "ft/snapshot_store.h"
#include "net/backend.h"
#include "net/quotas.h"
#include "net/server.h"
#include "obs/flight_recorder.h"
#include "obs/http.h"
#include "obs/trace.h"
#include "service/service.h"
#include "shard/sharded_service.h"
#include "sql/optimizer.h"

namespace cq {
namespace {

// --- Shared: building the service -----------------------------------------

// Set from --optimizer-rules (e.g. "none", "all,-fuse", "pushdown"); the
// default enables every rule. Applied to every service this binary builds.
OptimizerOptions g_optimizer;

std::unique_ptr<QueryService> MakeService(MetricsRegistry* registry,
                                          TraceRecorder* tracer) {
  ServiceConfig config;
  config.metrics = registry;
  config.tracer = tracer;
  config.trace_sample_every = 1;
  config.optimizer = g_optimizer;
  return std::make_unique<QueryService>(Catalog{}, config);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string QueriesJson(const std::vector<QueryInfo>& queries) {
  std::string out = "[";
  bool first = true;
  for (const auto& info : queries) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(info.id) + ",\"state\":\"" +
           QueryStateToString(info.state) + "\",\"sql\":\"" +
           JsonEscape(info.sql) + "\",\"nodes_total\":" +
           std::to_string(info.nodes_total) + ",\"nodes_reused\":" +
           std::to_string(info.nodes_reused) + ",\"subscriptions\":" +
           std::to_string(info.num_subscriptions) + "}";
  }
  return out + "]";
}

/// Registers the four observability routes and starts the listener.
/// `http_port` < 0 means "no endpoint": returns OK without starting.
Status StartHttp(HttpEndpoint* http, int http_port, MetricsRegistry* registry,
                 TraceRecorder* tracer,
                 std::function<std::string()> queries_json) {
  if (http_port < 0) return Status::OK();
  http->AddHandler("/metrics", "text/plain; version=0.0.4", [registry] {
    return registry->Dump(MetricsFormat::kText);
  });
  http->AddHandler("/queries", "application/json", std::move(queries_json));
  http->AddHandler("/traces", "application/json",
                   [tracer] { return tracer->ToJson(); });
  http->AddHandler("/flightrecorder", "application/json",
                   [] { return FlightRecorder::Global().ToJson(); });
  Status st = http->Start(static_cast<uint16_t>(http_port));
  if (st.ok()) {
    std::printf("observability endpoint on http://127.0.0.1:%u "
                "(/metrics /queries /traces /flightrecorder)\n",
                http->port());
  }
  return st;
}

// --- Demo mode -------------------------------------------------------------

int RunDemo(const std::string& checkpoint_dir, bool recover, int http_port) {
  MetricsRegistry registry;
  TraceRecorder tracer;
  auto svc = MakeService(&registry, &tracer);
  HttpEndpoint http;
  QueryService* svc_raw = svc.get();
  Status http_st =
      StartHttp(&http, http_port, &registry, &tracer,
                [svc_raw] { return QueriesJson(svc_raw->ListQueries()); });
  if (!http_st.ok()) {
    std::fprintf(stderr, "http: %s\n", http_st.ToString().c_str());
    return 1;
  }
  Timestamp ts = 0;

  // Durability rig (only with --checkpoint-dir): fenced output log + snapshot
  // store + barrier-checkpoint coordinator around the same service object.
  std::unique_ptr<ft::DurableOutputLog> log;
  std::unique_ptr<ft::SnapshotStore> store;
  std::unique_ptr<ft::CheckpointCoordinator> coord;
  if (!checkpoint_dir.empty()) {
    log = std::make_unique<ft::DurableOutputLog>(checkpoint_dir + "/out");
    store = std::make_unique<ft::SnapshotStore>(checkpoint_dir + "/snap");
    Status st = log->Init();
    if (st.ok()) st = store->Init();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint dir: %s\n", st.ToString().c_str());
      return 1;
    }
    svc->SetDurableOutputLog(log.get());
    coord = std::make_unique<ft::CheckpointCoordinator>(svc.get(), store.get());
    coord->SetOutputLog(log.get());
    coord->SetWatermarkFn([&ts] { return ts; });
    svc->SetBarrierHandler(coord->Handler(svc->BarrierFanIn()));
  }

  if (recover) {
    if (store == nullptr) {
      std::fprintf(stderr, "--recover requires --checkpoint-dir\n");
      return 2;
    }
    // Restore the whole service — registered queries, shared graph, window
    // and aggregation state — from the newest durable epoch, republishing
    // any staged output the dead process never got to publish.
    ft::RecoveryManager recovery(store.get());
    recovery.SetOutputLog(log.get());
    auto report = recovery.Recover(svc.get(), nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "recover: %s\n", report.status().ToString().c_str());
      return 1;
    }
    if (!report->restored) {
      std::fprintf(stderr, "recover: no checkpoint found in %s\n",
                   checkpoint_dir.c_str());
      return 1;
    }
    coord->ResumeFromEpoch(report->epoch);
    ts = report->watermark > 0 ? report->watermark : 0;
    std::printf("recovered %zu queries at epoch %llu (watermark %lld)\n",
                svc->NumActiveQueries(),
                static_cast<unsigned long long>(report->epoch),
                static_cast<long long>(report->watermark));
  } else {
    Status st = svc->RegisterStream(
        "trades", Schema::Make({{"sym", ValueType::kString},
                                {"price", ValueType::kInt64},
                                {"qty", ValueType::kInt64}}));
    if (!st.ok()) {
      std::fprintf(stderr, "RegisterStream: %s\n", st.ToString().c_str());
      return 1;
    }

    // Both queries share the source -> filter -> window prefix; they diverge
    // only in their residual plans, so the graph holds one copy of the
    // prefix.
    auto big = svc->RegisterQuery(
        "SELECT sym, price FROM trades [Range 100] WHERE price > 10");
    auto volume = svc->RegisterQuery(
        "SELECT sym, SUM(qty) AS total FROM trades [Range 100] "
        "WHERE price > 10 GROUP BY sym");
    if (!big.ok() || !volume.ok()) {
      std::fprintf(stderr, "RegisterQuery failed\n");
      return 1;
    }
  }

  std::vector<std::pair<QueryId, SubscriptionPtr>> subs;
  for (const auto& info : svc->ListQueries()) {
    auto sub = svc->Subscribe(info.id);
    if (sub.ok()) subs.emplace_back(info.id, *sub);
  }

  std::printf("%s 2 queries, %zu live operators (unshared would need %zu)\n",
              recover ? "recovered" : "registered", svc->NumOperators(),
              size_t{10});
  for (const auto& info : svc->ListQueries()) {
    std::printf("  query %llu: %zu nodes, %zu reused — %s\n",
                static_cast<unsigned long long>(info.id), info.nodes_total,
                info.nodes_reused, info.sql.c_str());
  }

  struct Row {
    const char* sym;
    int64_t price, qty;
  };
  // The recovered run streams a second act: its aggregate totals include the
  // first act's rows, still resident in the restored [Range 100] windows.
  const Row first_act[] = {{"ACME", 12, 100}, {"ACME", 8, 50},
                           {"GLOBEX", 40, 10}, {"ACME", 15, 30},
                           {"GLOBEX", 9, 99},  {"GLOBEX", 41, 5}};
  const Row second_act[] = {{"ACME", 20, 7}, {"GLOBEX", 44, 3},
                            {"ACME", 13, 11}};
  for (const Row& r : recover ? std::vector<Row>(std::begin(second_act),
                                                 std::end(second_act))
                              : std::vector<Row>(std::begin(first_act),
                                                 std::end(first_act))) {
    ++ts;
    (void)svc->PushRecord("trades",
                          Tuple{Value(r.sym), Value(r.price), Value(r.qty)}, ts);
    (void)svc->PushWatermark("trades", ts);
  }

  for (const auto& [qid, sub] : subs) {
    std::printf("query %llu output:\n", static_cast<unsigned long long>(qid));
    StreamBatch batch;
    while (sub->TryPoll(&batch)) {
      for (const auto& e : batch) {
        if (e.is_record()) {
          std::printf("  t=%lld %s\n", static_cast<long long>(e.timestamp),
                      e.tuple.ToString().c_str());
        }
      }
    }
  }

  if (coord != nullptr) {
    auto epoch = coord->TriggerBarrierCheckpoint(svc.get());
    Status st = epoch.ok() ? coord->WaitForEpoch(*epoch) : epoch.status();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
      return 1;
    }
    ft::DurableOutputLog reader(checkpoint_dir + "/out");
    auto published = reader.ReadAll();
    std::printf(
        "checkpointed epoch %llu; %zu fenced records published to %s/out\n",
        static_cast<unsigned long long>(*epoch),
        published.ok() ? published->size() : size_t{0},
        checkpoint_dir.c_str());
  }

  std::printf("METRICS_JSON %s\n",
              svc->DumpMetrics(MetricsFormat::kJson).c_str());
  return 0;
}

// --- Sharded demo mode -----------------------------------------------------

/// The demo of RunDemo scaled out across `nshards` service replicas:
/// `trades` partitions by `sym` (column 0), both queries decompose by that
/// key, and each subscription merges every replica's feed. Durability uses
/// the same snapshot store + barrier coordinator rig; the image carries the
/// shard count and only restores at the same N (pipeline-level N->M
/// re-shard is the re-scaling path).
int RunShardedDemo(size_t nshards, const std::string& checkpoint_dir,
                   bool recover, int http_port) {
  MetricsRegistry registry;
  TraceRecorder tracer;
  ServiceConfig config;
  config.metrics = &registry;
  config.tracer = &tracer;
  config.trace_sample_every = 1;
  config.optimizer = g_optimizer;
  shard::ShardedQueryService svc(nshards, config);
  HttpEndpoint http;
  QueryService* replica0 = svc.replica(0);
  Status http_st =
      StartHttp(&http, http_port, &registry, &tracer,
                [replica0] { return QueriesJson(replica0->ListQueries()); });
  if (!http_st.ok()) {
    std::fprintf(stderr, "http: %s\n", http_st.ToString().c_str());
    return 1;
  }
  Timestamp ts = 0;

  // Streams register on both the fresh and the recover path: restore
  // validates the catalog's shard keys against the image's meta slot.
  Status st = svc.RegisterStream(
      "trades", Schema::Make({{"sym", ValueType::kString},
                              {"price", ValueType::kInt64},
                              {"qty", ValueType::kInt64}}),
      {0});
  if (!st.ok()) {
    std::fprintf(stderr, "RegisterStream: %s\n", st.ToString().c_str());
    return 1;
  }

  std::unique_ptr<ft::SnapshotStore> store;
  std::unique_ptr<ft::CheckpointCoordinator> coord;
  if (!checkpoint_dir.empty()) {
    store = std::make_unique<ft::SnapshotStore>(checkpoint_dir + "/snap");
    Status init = store->Init();
    if (!init.ok()) {
      std::fprintf(stderr, "checkpoint dir: %s\n", init.ToString().c_str());
      return 1;
    }
    coord = std::make_unique<ft::CheckpointCoordinator>(&svc, store.get());
    coord->SetWatermarkFn([&ts] { return ts; });
    svc.SetBarrierHandler(coord->Handler(svc.BarrierFanIn()));
  }

  if (recover) {
    if (store == nullptr) {
      std::fprintf(stderr, "--recover requires --checkpoint-dir\n");
      return 2;
    }
    ft::RecoveryManager recovery(store.get());
    auto report = recovery.Recover(&svc, nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "recover: %s\n", report.status().ToString().c_str());
      return 1;
    }
    if (!report->restored) {
      std::fprintf(stderr, "recover: no checkpoint found in %s\n",
                   checkpoint_dir.c_str());
      return 1;
    }
    coord->ResumeFromEpoch(report->epoch);
    ts = report->watermark > 0 ? report->watermark : 0;
    std::printf("recovered %zu queries at epoch %llu (watermark %lld, "
                "%zu shards)\n",
                svc.NumActiveQueries(),
                static_cast<unsigned long long>(report->epoch),
                static_cast<long long>(report->watermark), nshards);
  } else {
    auto big = svc.RegisterQuery(
        "SELECT sym, price FROM trades [Range 100] WHERE price > 10");
    auto volume = svc.RegisterQuery(
        "SELECT sym, SUM(qty) AS total FROM trades [Range 100] "
        "WHERE price > 10 GROUP BY sym");
    if (!big.ok() || !volume.ok()) {
      std::fprintf(stderr, "RegisterQuery failed\n");
      return 1;
    }
  }

  std::vector<std::pair<QueryId, shard::ShardedSubscriptionPtr>> subs;
  for (const auto& info : svc.replica(0)->ListQueries()) {
    auto sub = svc.Subscribe(info.id);
    if (sub.ok()) subs.emplace_back(info.id, *sub);
  }

  std::printf("%s 2 queries on %zu shards (%zu operators per replica)\n",
              recover ? "recovered" : "registered", nshards,
              svc.replica(0)->NumOperators());

  struct Row {
    const char* sym;
    int64_t price, qty;
  };
  const Row first_act[] = {{"ACME", 12, 100}, {"ACME", 8, 50},
                           {"GLOBEX", 40, 10}, {"ACME", 15, 30},
                           {"GLOBEX", 9, 99},  {"GLOBEX", 41, 5}};
  const Row second_act[] = {{"ACME", 20, 7}, {"GLOBEX", 44, 3},
                            {"ACME", 13, 11}};
  for (const Row& r : recover ? std::vector<Row>(std::begin(second_act),
                                                 std::end(second_act))
                              : std::vector<Row>(std::begin(first_act),
                                                 std::end(first_act))) {
    ++ts;
    (void)svc.PushRecord("trades",
                         Tuple{Value(r.sym), Value(r.price), Value(r.qty)}, ts);
    (void)svc.PushWatermark("trades", ts);
  }

  for (const auto& [qid, sub] : subs) {
    std::printf("query %llu output:\n", static_cast<unsigned long long>(qid));
    StreamBatch batch;
    while (sub->TryPoll(&batch)) {
      for (const auto& e : batch) {
        if (e.is_record()) {
          std::printf("  t=%lld %s\n", static_cast<long long>(e.timestamp),
                      e.tuple.ToString().c_str());
        }
      }
    }
  }

  if (coord != nullptr) {
    auto epoch = coord->TriggerBarrierCheckpoint(&svc);
    Status ckpt = epoch.ok() ? coord->WaitForEpoch(*epoch) : epoch.status();
    if (!ckpt.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", ckpt.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed epoch %llu (%zu shard slots)\n",
                static_cast<unsigned long long>(*epoch), nshards);
  }

  uint64_t routed = 0;
  for (size_t s = 0; s < nshards; ++s) {
    std::printf("shard %zu routed %llu records\n", s,
                static_cast<unsigned long long>(svc.records_routed(s)));
    routed += svc.records_routed(s);
  }
  std::printf("METRICS_JSON %s\n",
              registry.ToJson().c_str());
  return routed > 0 || recover ? 0 : 1;
}

// --- Serve mode (async epoll front door) -----------------------------------

net::Server* g_server = nullptr;

/// SIGTERM/SIGINT: one async-signal-safe eventfd write; the loop thread
/// runs the graceful drain.
void HandleSignal(int) {
  if (g_server != nullptr) g_server->ShutdownAsync();
}

struct ServeOptions {
  uint16_t port = 7878;
  int http_port = -1;
  size_t shards = 1;
  std::string checkpoint_dir;
  bool recover = false;
  /// name -> quota ("*" = default quota).
  std::vector<std::pair<std::string, net::TenantQuota>> quotas;
};

int RunServer(const ServeOptions& opts) {
  MetricsRegistry registry;
  TraceRecorder tracer;
  ServiceConfig config;
  config.metrics = &registry;
  config.tracer = &tracer;
  config.trace_sample_every = 1;
  config.optimizer = g_optimizer;

  // Backend: one QueryService, or N replicas behind the same protocol.
  std::unique_ptr<QueryService> local;
  std::unique_ptr<shard::ShardedQueryService> sharded;
  std::unique_ptr<net::ServiceBackend> backend;
  ft::Checkpointable* checkpointable = nullptr;
  ft::BarrierInjectable* barrier_target = nullptr;
  if (opts.shards > 1) {
    sharded = std::make_unique<shard::ShardedQueryService>(opts.shards, config);
    backend = std::make_unique<net::ShardedBackend>(sharded.get());
    checkpointable = sharded.get();
    barrier_target = sharded.get();
  } else {
    local = std::make_unique<QueryService>(Catalog{}, config);
    backend = std::make_unique<net::LocalBackend>(local.get());
    checkpointable = local.get();
    barrier_target = local.get();
  }

  // Durability rig: same shape as the demo, but the checkpoint runs inside
  // the graceful drain (SIGTERM) instead of at end-of-script.
  std::unique_ptr<ft::DurableOutputLog> log;
  std::unique_ptr<ft::SnapshotStore> store;
  std::unique_ptr<ft::CheckpointCoordinator> coord;
  if (!opts.checkpoint_dir.empty()) {
    store = std::make_unique<ft::SnapshotStore>(opts.checkpoint_dir + "/snap");
    Status st = store->Init();
    if (st.ok() && local != nullptr) {
      // Output fencing is per service; the sharded path checkpoints state
      // only (its demo rig does the same).
      log = std::make_unique<ft::DurableOutputLog>(opts.checkpoint_dir +
                                                   "/out");
      st = log->Init();
      if (st.ok()) local->SetDurableOutputLog(log.get());
    }
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint dir: %s\n", st.ToString().c_str());
      return 1;
    }
    coord =
        std::make_unique<ft::CheckpointCoordinator>(checkpointable, store.get());
    if (log != nullptr) coord->SetOutputLog(log.get());
    coord->SetWatermarkFn([] { return Timestamp{0}; });
    if (local != nullptr) {
      local->SetBarrierHandler(coord->Handler(local->BarrierFanIn()));
    } else {
      sharded->SetBarrierHandler(coord->Handler(sharded->BarrierFanIn()));
    }
  }

  if (opts.recover) {
    if (store == nullptr) {
      std::fprintf(stderr, "--recover requires --checkpoint-dir\n");
      return 2;
    }
    if (local == nullptr) {
      std::fprintf(stderr,
                   "--recover --shards is unsupported in serve mode: a "
                   "sharded image validates against streams that must be "
                   "registered (with their shard keys) before restore\n");
      return 2;
    }
    ft::RecoveryManager recovery(store.get());
    recovery.SetOutputLog(log.get());
    auto report = recovery.Recover(local.get(), nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "recover: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (report->restored) {
      coord->ResumeFromEpoch(report->epoch);
      std::printf("recovered %zu queries at epoch %llu\n",
                  local->NumActiveQueries(),
                  static_cast<unsigned long long>(report->epoch));
    } else {
      std::printf("no checkpoint in %s; starting fresh\n",
                  opts.checkpoint_dir.c_str());
    }
  }

  net::TenantQuotas quotas(&registry);
  for (const auto& [name, quota] : opts.quotas) {
    if (name == "*") {
      quotas.SetDefaultQuota(quota);
    } else {
      quotas.SetQuota(name, quota);
    }
  }

  net::ServerConfig sconf;
  sconf.port = opts.port;
  sconf.quotas = &quotas;
  sconf.metrics = &registry;
  net::Server server(backend.get(), sconf);

  // The observability routes ride the same loop and port as the protocol.
  net::ServiceBackend* backend_raw = backend.get();
  server.AddHttpRoute("/metrics", "text/plain; version=0.0.4", [&registry] {
    return registry.Dump(MetricsFormat::kText);
  });
  server.AddHttpRoute("/queries", "application/json", [backend_raw] {
    return QueriesJson(backend_raw->ListQueries());
  });
  server.AddHttpRoute("/traces", "application/json",
                      [&tracer] { return tracer.ToJson(); });
  server.AddHttpRoute("/flightrecorder", "application/json",
                      [] { return FlightRecorder::Global().ToJson(); });

  Status st = server.Init();
  if (!st.ok()) {
    std::fprintf(stderr, "server: %s\n", st.ToString().c_str());
    return 1;
  }

  // Legacy separate observability endpoint (--http): same routes, own
  // thread and port.
  HttpEndpoint http;
  Status http_st =
      StartHttp(&http, opts.http_port, &registry, &tracer, [backend_raw] {
        return QueriesJson(backend_raw->ListQueries());
      });
  if (!http_st.ok()) {
    std::fprintf(stderr, "http: %s\n", http_st.ToString().c_str());
    return 1;
  }

  if (coord != nullptr) {
    // Graceful drain, after subscriber flush and before close: barrier
    // checkpoint the service, publishing every staged fence frame through
    // the idempotent output log.
    ft::CheckpointCoordinator* coord_raw = coord.get();
    server.SetDrainHook([coord_raw, barrier_target] {
      auto epoch = coord_raw->TriggerBarrierCheckpoint(barrier_target);
      CQ_RETURN_NOT_OK(epoch.status());
      CQ_RETURN_NOT_OK(coord_raw->WaitForEpoch(*epoch));
      std::printf("drain checkpoint: epoch %llu durable\n",
                  static_cast<unsigned long long>(*epoch));
      return Status::OK();
    });
  }

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  std::printf("query_server listening on 127.0.0.1:%u (%zu shard%s, epoll "
              "front door; SIGTERM drains gracefully)\n",
              server.port(), opts.shards, opts.shards == 1 ? "" : "s");
  std::fflush(stdout);
  server.Run();
  g_server = nullptr;

  std::printf("drained: %zu quer%s still registered at shutdown\n",
              backend->NumActiveQueries(),
              backend->NumActiveQueries() == 1 ? "y" : "ies");
  return 0;
}

/// Parses NAME:MAXQ:MAXBYTES:BPS[:BURST] ("*" as NAME = default quota).
bool ParseTenantQuotaFlag(const std::string& spec,
                          std::pair<std::string, net::TenantQuota>* out) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : spec) {
    if (c == ':') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  if (parts.size() < 4 || parts.size() > 5 || parts[0].empty()) return false;
  try {
    out->first = parts[0];
    out->second.max_queries = std::stoull(parts[1]);
    out->second.max_state_bytes = std::stoull(parts[2]);
    out->second.egress_bytes_per_sec = std::stoull(parts[3]);
    out->second.egress_burst_bytes =
        parts.size() == 5 ? std::stoull(parts[4]) : 0;
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace
}  // namespace cq

int main(int argc, char** argv) {
  bool serve = false;
  cq::ServeOptions opts;
  std::string checkpoint_dir;
  bool recover = false;
  size_t shards = 1;
  int http_port = -1;  // -1 = no separate observability endpoint
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        opts.port = static_cast<uint16_t>(std::stoi(argv[++i]));
      }
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      http_port = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0 && i + 1 < argc) {
      checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      int n = std::stoi(argv[++i]);
      if (n < 1) {
        std::fprintf(stderr, "--shards wants a positive count\n");
        return 2;
      }
      shards = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--tenant-quota") == 0 && i + 1 < argc) {
      std::pair<std::string, cq::net::TenantQuota> quota;
      if (!cq::ParseTenantQuotaFlag(argv[++i], &quota)) {
        std::fprintf(stderr,
                     "--tenant-quota wants NAME:MAXQ:MAXBYTES:BPS[:BURST]\n");
        return 2;
      }
      opts.quotas.push_back(std::move(quota));
    } else if (std::strcmp(argv[i], "--optimizer-rules") == 0 && i + 1 < argc) {
      auto o = cq::OptimizerOptionsFromSpec(argv[++i]);
      if (!o.ok()) {
        std::fprintf(stderr, "--optimizer-rules: %s\n",
                     o.status().ToString().c_str());
        return 2;
      }
      cq::g_optimizer = *o;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--serve [port]] [--http PORT] [--shards N] "
                   "[--checkpoint-dir DIR [--recover]] "
                   "[--optimizer-rules SPEC] "
                   "[--tenant-quota NAME:MAXQ:MAXBYTES:BPS[:BURST]]...\n",
                   argv[0]);
      return 2;
    }
  }
  if (!serve && !opts.quotas.empty()) {
    std::fprintf(stderr, "--tenant-quota applies to serve mode only\n");
    return 2;
  }
  if (serve) {
    opts.http_port = http_port;
    opts.shards = shards;
    opts.checkpoint_dir = checkpoint_dir;
    opts.recover = recover;
    return cq::RunServer(opts);
  }
  if (shards > 1) {
    return cq::RunShardedDemo(shards, checkpoint_dir, recover, http_port);
  }
  return cq::RunDemo(checkpoint_dir, recover, http_port);
}
